//! Binary wire codec.
//!
//! DIET rode CORBA's CDR marshalling; we define our own compact framing so
//! the TCP transport is self-contained. Every message is
//! `[u32 length][u8 tag][payload]`; values and profiles use a tag-prefixed
//! recursive encoding. All integers are little-endian.

use crate::dag::{
    DagEventRec, DagInput, DagNodeOutcome, DagNodeSpec, DagNodeState, DagOutcome, WorkflowSpec,
};
use crate::data::{DietValue, Persistence};
use crate::error::DietError;
use crate::jobserver::{CampaignSummary, TaskEventRec, TaskPayload, TaskState, TaskStatusRec};
use crate::monitor::Estimate;
use crate::profile::Profile;
use bytes::{Buf, BufMut, ByteStr, Bytes, BytesMut};
use obs::{intern_name, Labels, MetricSnapshot, SpanRecord, TraceCtx};

/// Identity of the process a telemetry batch came from — the LogCentral
/// "component name" analogue. The collector keys its per-source health
/// table on `(role, label, pid)`; `site` groups components for the
/// topology snapshot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessSource {
    /// Component kind: "ma", "la", "sed", "client", "collector".
    pub role: String,
    /// Component label, e.g. a SeD's `lyon/0` or an agent's site name.
    pub label: String,
    /// OS process id, distinguishing restarts of the same label.
    pub pid: u32,
    /// Deployment site this component belongs to (empty if none).
    pub site: String,
}

/// Control messages exchanged between client, agents and SeDs.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → MA: where can `service` run? (the "finding" phase).
    /// `ctx` joins the MA-side spans to the client's trace; `exclude`
    /// carries the labels a retrying client has just seen fail, so the
    /// hierarchy skips them when collecting estimates.
    Submit {
        service: String,
        request_id: u64,
        ctx: TraceCtx,
        exclude: Vec<String>,
    },
    /// MA → client: chosen server (label) or failure.
    SubmitReply {
        request_id: u64,
        server: Option<String>,
    },
    /// Agent → child agent: carry a submit one hop down the tree (or
    /// MA → MA federation when the local tree has no matching service).
    /// The child answers with an [`Message::EstimateBatch`] aggregating
    /// its whole subtree. `ttl` bounds further forwarding: an agent
    /// receiving `ttl == 0` consults only its own tree — forwarding loops
    /// between federated MAs die after one hop.
    Forward {
        request_id: u64,
        ctx: TraceCtx,
        service: String,
        exclude: Vec<String>,
        ttl: u8,
    },
    /// Child agent → parent: every estimate its subtree produced for the
    /// forwarded request (empty = nothing matches / everything excluded).
    EstimateBatch {
        request_id: u64,
        estimates: Vec<Estimate>,
    },
    /// Client → SeD: run this profile. `ctx` carries the trace context
    /// (16 bytes in the frame header, after the request id) so SeD-side
    /// spans join the client's trace; `ctx.trace_id == 0` disables tracing.
    Call {
        request_id: u64,
        ctx: TraceCtx,
        profile: Profile,
    },
    /// SeD → client: the completed profile (OUT args filled) or error
    /// status, plus the server-measured queue-wait and solve durations
    /// (seconds) so the client can decompose latency Figure-5 style.
    CallReply {
        request_id: u64,
        queue_wait: f64,
        solve: f64,
        result: Result<Profile, String>,
    },
    /// Liveness probe.
    Ping,
    Pong,
    /// Orderly shutdown of a worker.
    Shutdown,
    /// Ask a SeD for its Prometheus-style metrics dump (LogService analog).
    DumpMetrics,
    /// Reply to [`Message::DumpMetrics`]: text exposition of the registry.
    MetricsReply {
        text: String,
    },
    /// SeD ← SeD/client: fetch the value stored under `id` (DAGDA pull).
    /// `request_id` correlates the reply on a multiplexed connection.
    GetData {
        request_id: u64,
        id: String,
    },
    /// Reply to [`Message::GetData`] / ack for [`Message::PutData`]: the
    /// stored value with its persistence mode, or an error string. Echoes
    /// the requester's correlation id.
    DataReply {
        request_id: u64,
        id: String,
        result: Result<(DietValue, Persistence), String>,
    },
    /// Client → SeD: seed the server's store with `value` under `id` (the
    /// `store_data` entry point). Acked with a [`Message::DataReply`].
    PutData {
        request_id: u64,
        id: String,
        mode: Persistence,
        value: DietValue,
    },
    /// Server → client: admission rejected — the accept queue or the SeD's
    /// admission limit is full. `request_id == 0` means the connection
    /// itself was refused (no frame was read); nonzero echoes the rejected
    /// request so a multiplexed caller can back off and retry elsewhere.
    Busy {
        request_id: u64,
    },
    /// Any component → collector: a batch of completed spans drained from
    /// the sender's ring. Correlated (acked with [`Message::PushAck`]) so a
    /// flusher can confirm delivery over a shared mux connection. Span ids
    /// are process-unique only within `source`; the collector stitches
    /// across processes by `trace_id`.
    PushSpans {
        request_id: u64,
        source: ProcessSource,
        spans: Vec<SpanRecord>,
    },
    /// Any component → collector: metric *deltas* since the sender's last
    /// flush (counters/histograms ship increments, gauges ship the current
    /// value — see `obs::Registry::delta_since`). Acked with
    /// [`Message::PushAck`].
    PushMetricDeltas {
        request_id: u64,
        source: ProcessSource,
        deltas: Vec<(String, Labels, MetricSnapshot)>,
    },
    /// Collector → component: delivery ack for a push batch.
    PushAck {
        request_id: u64,
    },
    /// Correlated [`Message::DumpMetrics`]: carries a request id so it can
    /// ride a shared `MuxConn` like `Call` does, plus a selector — `""` or
    /// `"prometheus"` for the metrics text, `"chrome"` for the Chrome trace
    /// JSON, `"topology"` for the collector's plaintext hierarchy/health
    /// snapshot.
    DumpMetricsRid {
        request_id: u64,
        what: String,
    },
    /// Reply to [`Message::DumpMetricsRid`], echoing its correlation id.
    MetricsReplyRid {
        request_id: u64,
        text: String,
    },
    /// Client → MA: admit a workflow DAG for engine-side scheduling. `ctx`
    /// carries the workflow trace id every node span stitches under.
    SubmitDag {
        request_id: u64,
        ctx: TraceCtx,
        spec: WorkflowSpec,
    },
    /// MA → client: submission ack — the engine-assigned dag id, or a
    /// rejection string (validation failure, no engine at this MA, or an
    /// unknown dag id on a later [`Message::DagStatus`] poll).
    DagReply {
        request_id: u64,
        result: Result<u64, String>,
    },
    /// Client → MA: poll a dag's progress. `since` is the last event
    /// sequence number already seen (0 for everything).
    DagStatus {
        request_id: u64,
        dag_id: u64,
        since: u64,
    },
    /// MA → client: reply to [`Message::DagStatus`] — the events after the
    /// poll cursor plus, once the dag finished, its outcome. Only ever sent
    /// as a correlated reply (a shared mux would drop an unsolicited push).
    DagEvent {
        request_id: u64,
        dag_id: u64,
        events: Vec<DagEventRec>,
        outcome: Option<DagOutcome>,
    },
    /// Client → jobserver: create (or idempotently re-attach to) the
    /// campaign called `campaign`, seeding it with `tasks`. A name that
    /// already exists returns the existing campaign untouched, so a
    /// client that died mid-submit can simply resubmit.
    SubmitTasks {
        request_id: u64,
        campaign: String,
        tasks: Vec<TaskPayload>,
    },
    /// Jobserver → client: the campaign id and per-campaign task ids, or
    /// a rejection string.
    SubmitTasksReply {
        request_id: u64,
        result: Result<(u64, Vec<u64>), String>,
    },
    /// Client → jobserver: point-in-time status of one task.
    TaskStatus {
        request_id: u64,
        campaign_id: u64,
        task_id: u64,
    },
    /// Jobserver → client: reply to [`Message::TaskStatus`].
    TaskStatusReply {
        request_id: u64,
        result: Result<TaskStatusRec, String>,
    },
    /// Client → jobserver: look up a campaign by name (late-joining or
    /// reconnecting clients).
    AttachCampaign {
        request_id: u64,
        campaign: String,
    },
    /// Jobserver → client: the campaign's summary, or an unknown-name
    /// rejection.
    AttachReply {
        request_id: u64,
        result: Result<CampaignSummary, String>,
    },
    /// Client → jobserver: poll the progress feed; `cursor` is the last
    /// event sequence number already seen (0 for everything retained).
    CampaignProgress {
        request_id: u64,
        campaign_id: u64,
        cursor: u64,
    },
    /// Jobserver → client: summary plus the events after the cursor.
    ProgressReply {
        request_id: u64,
        result: Result<(CampaignSummary, Vec<TaskEventRec>), String>,
    },
}

const TAG_NULL: u8 = 0;
const TAG_I32: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_CHAR: u8 = 4;
const TAG_VF64: u8 = 5;
const TAG_VI32: u8 = 6;
const TAG_STR: u8 = 7;
const TAG_FILE: u8 = 8;
const TAG_DATAREF: u8 = 9;

const MSG_SUBMIT: u8 = 10;
const MSG_SUBMIT_REPLY: u8 = 11;
const MSG_CALL: u8 = 12;
const MSG_CALL_REPLY: u8 = 13;
const MSG_PING: u8 = 14;
const MSG_PONG: u8 = 15;
const MSG_SHUTDOWN: u8 = 16;
const MSG_DUMP_METRICS: u8 = 17;
const MSG_METRICS_REPLY: u8 = 18;
const MSG_GET_DATA: u8 = 19;
const MSG_DATA_REPLY: u8 = 20;
const MSG_PUT_DATA: u8 = 21;
const MSG_BUSY: u8 = 22;
const MSG_FORWARD: u8 = 23;
const MSG_ESTIMATE_BATCH: u8 = 24;
const MSG_PUSH_SPANS: u8 = 25;
const MSG_PUSH_METRIC_DELTAS: u8 = 26;
const MSG_PUSH_ACK: u8 = 27;
const MSG_DUMP_METRICS_RID: u8 = 28;
const MSG_METRICS_REPLY_RID: u8 = 29;
const MSG_SUBMIT_DAG: u8 = 30;
const MSG_DAG_REPLY: u8 = 31;
const MSG_DAG_STATUS: u8 = 32;
const MSG_DAG_EVENT: u8 = 33;
const MSG_SUBMIT_TASKS: u8 = 34;
const MSG_SUBMIT_TASKS_REPLY: u8 = 35;
const MSG_TASK_STATUS: u8 = 36;
const MSG_TASK_STATUS_REPLY: u8 = 37;
const MSG_ATTACH_CAMPAIGN: u8 = 38;
const MSG_ATTACH_REPLY: u8 = 39;
const MSG_CAMPAIGN_PROGRESS: u8 = 40;
const MSG_PROGRESS_REPLY: u8 = 41;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, DietError> {
    // One copy (slice -> String); validation happens on the borrowed slice
    // so no throwaway Vec is built for the error path.
    Ok(get_bytestr(buf)?.as_str().to_owned())
}

/// Zero-copy string decode: the returned [`ByteStr`] is an O(1) slice of
/// the frame's backing buffer, UTF-8 validated exactly once here.
fn get_bytestr(buf: &mut Bytes) -> Result<ByteStr, DietError> {
    if buf.remaining() < 4 {
        return Err(DietError::Codec("truncated string length".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(DietError::Codec("truncated string body".into()));
    }
    let raw = buf.copy_to_bytes(n);
    ByteStr::from_utf8(raw).map_err(|e| DietError::Codec(format!("utf8: {e}")))
}

fn put_value(buf: &mut BytesMut, v: &DietValue) {
    match v {
        DietValue::Null => buf.put_u8(TAG_NULL),
        DietValue::ScalarI32(x) => {
            buf.put_u8(TAG_I32);
            buf.put_i32_le(*x);
        }
        DietValue::ScalarI64(x) => {
            buf.put_u8(TAG_I64);
            buf.put_i64_le(*x);
        }
        DietValue::ScalarF64(x) => {
            buf.put_u8(TAG_F64);
            buf.put_f64_le(*x);
        }
        DietValue::ScalarChar(x) => {
            buf.put_u8(TAG_CHAR);
            buf.put_u8(*x);
        }
        DietValue::VectorF64(xs) => {
            buf.put_u8(TAG_VF64);
            buf.put_u32_le(xs.len() as u32);
            for x in xs.iter() {
                buf.put_f64_le(*x);
            }
        }
        DietValue::VectorI32(xs) => {
            buf.put_u8(TAG_VI32);
            buf.put_u32_le(xs.len() as u32);
            for x in xs.iter() {
                buf.put_i32_le(*x);
            }
        }
        DietValue::Str(s) => {
            buf.put_u8(TAG_STR);
            put_str(buf, s);
        }
        DietValue::File { name, data } => {
            buf.put_u8(TAG_FILE);
            put_str(buf, name);
            buf.put_u32_le(data.len() as u32);
            buf.put_slice(data);
        }
        DietValue::DataRef { id } => {
            buf.put_u8(TAG_DATAREF);
            put_str(buf, id);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<DietValue, DietError> {
    if buf.remaining() < 1 {
        return Err(DietError::Codec("truncated value tag".into()));
    }
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(DietError::Codec("truncated value body".into()))
        } else {
            Ok(())
        }
    };
    match buf.get_u8() {
        TAG_NULL => Ok(DietValue::Null),
        TAG_I32 => {
            need(buf, 4)?;
            Ok(DietValue::ScalarI32(buf.get_i32_le()))
        }
        TAG_I64 => {
            need(buf, 8)?;
            Ok(DietValue::ScalarI64(buf.get_i64_le()))
        }
        TAG_F64 => {
            need(buf, 8)?;
            Ok(DietValue::ScalarF64(buf.get_f64_le()))
        }
        TAG_CHAR => {
            need(buf, 1)?;
            Ok(DietValue::ScalarChar(buf.get_u8()))
        }
        TAG_VF64 => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n * 8)?;
            Ok(DietValue::VectorF64(
                (0..n).map(|_| buf.get_f64_le()).collect(),
            ))
        }
        TAG_VI32 => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n * 4)?;
            Ok(DietValue::VectorI32(
                (0..n).map(|_| buf.get_i32_le()).collect(),
            ))
        }
        // Zero-copy: the string payload stays a slice of the frame buffer.
        TAG_STR => Ok(DietValue::Str(get_bytestr(buf)?)),
        TAG_FILE => {
            let name = get_str(buf)?;
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n)?;
            Ok(DietValue::File {
                name,
                data: buf.copy_to_bytes(n),
            })
        }
        TAG_DATAREF => Ok(DietValue::DataRef { id: get_str(buf)? }),
        t => Err(DietError::Codec(format!("unknown value tag {t}"))),
    }
}

fn put_persistence(buf: &mut BytesMut, p: Persistence) {
    buf.put_u8(match p {
        Persistence::Volatile => 0,
        Persistence::Persistent => 1,
        Persistence::Sticky => 2,
    });
}

fn get_persistence(buf: &mut Bytes) -> Result<Persistence, DietError> {
    if buf.remaining() < 1 {
        return Err(DietError::Codec("truncated persistence".into()));
    }
    match buf.get_u8() {
        0 => Ok(Persistence::Volatile),
        1 => Ok(Persistence::Persistent),
        2 => Ok(Persistence::Sticky),
        t => Err(DietError::Codec(format!("unknown persistence {t}"))),
    }
}

fn put_str_list(buf: &mut BytesMut, xs: &[String]) {
    buf.put_u32_le(xs.len() as u32);
    for x in xs {
        put_str(buf, x);
    }
}

fn get_str_list(buf: &mut Bytes) -> Result<Vec<String>, DietError> {
    if buf.remaining() < 4 {
        return Err(DietError::Codec("truncated string-list length".into()));
    }
    let n = buf.get_u32_le() as usize;
    (0..n).map(|_| get_str(buf)).collect()
}

/// Wire form of an [`Estimate`] — the payload the agent hierarchy ships
/// back up the tree in [`Message::EstimateBatch`] frames. `Option`s use
/// the codec's usual one-byte presence flag.
fn put_estimate(buf: &mut BytesMut, e: &Estimate) {
    put_str(buf, &e.server);
    buf.put_f64_le(e.speed_factor);
    buf.put_u64_le(e.free_memory);
    buf.put_u64_le(e.queue_length as u64);
    buf.put_u64_le(e.completed);
    match e.known_mean_duration {
        Some(d) => {
            buf.put_u8(1);
            buf.put_f64_le(d);
        }
        None => buf.put_u8(0),
    }
    buf.put_f64_le(e.probe_rtt);
    buf.put_u64_le(e.data_local_bytes);
    buf.put_u64_le(e.data_miss_bytes);
    match e.admission_limit {
        Some(cap) => {
            buf.put_u8(1);
            buf.put_u64_le(cap as u64);
        }
        None => buf.put_u8(0),
    }
}

fn get_estimate(buf: &mut Bytes) -> Result<Estimate, DietError> {
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(DietError::Codec("truncated estimate".into()))
        } else {
            Ok(())
        }
    };
    let server = get_str(buf)?;
    need(buf, 8 * 4 + 1)?;
    let speed_factor = buf.get_f64_le();
    let free_memory = buf.get_u64_le();
    let queue_length = buf.get_u64_le() as usize;
    let completed = buf.get_u64_le();
    let known_mean_duration = if buf.get_u8() == 1 {
        need(buf, 8)?;
        Some(buf.get_f64_le())
    } else {
        None
    };
    need(buf, 8 * 3 + 1)?;
    let probe_rtt = buf.get_f64_le();
    let data_local_bytes = buf.get_u64_le();
    let data_miss_bytes = buf.get_u64_le();
    let admission_limit = if buf.get_u8() == 1 {
        need(buf, 8)?;
        Some(buf.get_u64_le() as usize)
    } else {
        None
    };
    Ok(Estimate {
        server,
        speed_factor,
        free_memory,
        queue_length,
        completed,
        known_mean_duration,
        probe_rtt,
        data_local_bytes,
        data_miss_bytes,
        admission_limit,
    })
}

fn put_source(buf: &mut BytesMut, s: &ProcessSource) {
    put_str(buf, &s.role);
    put_str(buf, &s.label);
    buf.put_u32_le(s.pid);
    put_str(buf, &s.site);
}

fn get_source(buf: &mut Bytes) -> Result<ProcessSource, DietError> {
    let role = get_str(buf)?;
    let label = get_str(buf)?;
    if buf.remaining() < 4 {
        return Err(DietError::Codec("truncated source pid".into()));
    }
    let pid = buf.get_u32_le();
    let site = get_str(buf)?;
    Ok(ProcessSource {
        role,
        label,
        pid,
        site,
    })
}

fn put_span(buf: &mut BytesMut, s: &SpanRecord) {
    buf.put_u64_le(s.trace_id);
    buf.put_u64_le(s.span_id);
    buf.put_u64_le(s.parent);
    put_str(buf, s.name);
    put_str(buf, &s.resource);
    buf.put_u64_le(s.start_ns);
    buf.put_u64_le(s.end_ns);
}

fn get_span(buf: &mut Bytes) -> Result<SpanRecord, DietError> {
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(DietError::Codec("truncated span".into()))
        } else {
            Ok(())
        }
    };
    need(buf, 8 * 3)?;
    let trace_id = buf.get_u64_le();
    let span_id = buf.get_u64_le();
    let parent = buf.get_u64_le();
    // Span names are `&'static str`; intern_name maps the known phase
    // names to their static literals without leaking per-frame strings.
    let name = intern_name(get_bytestr(buf)?.as_str());
    let resource = get_str(buf)?;
    need(buf, 8 * 2)?;
    Ok(SpanRecord {
        trace_id,
        span_id,
        parent,
        name,
        resource,
        start_ns: buf.get_u64_le(),
        end_ns: buf.get_u64_le(),
    })
}

fn put_labels(buf: &mut BytesMut, labels: &Labels) {
    buf.put_u32_le(labels.len() as u32);
    for (k, v) in labels {
        put_str(buf, k);
        put_str(buf, v);
    }
}

fn get_labels(buf: &mut Bytes) -> Result<Labels, DietError> {
    if buf.remaining() < 4 {
        return Err(DietError::Codec("truncated label count".into()));
    }
    let n = buf.get_u32_le() as usize;
    (0..n).map(|_| Ok((get_str(buf)?, get_str(buf)?))).collect()
}

const SNAP_COUNTER: u8 = 0;
const SNAP_GAUGE: u8 = 1;
const SNAP_HISTOGRAM: u8 = 2;

fn put_snapshot(buf: &mut BytesMut, snap: &MetricSnapshot) {
    match snap {
        MetricSnapshot::Counter(v) => {
            buf.put_u8(SNAP_COUNTER);
            buf.put_u64_le(*v);
        }
        MetricSnapshot::Gauge(v) => {
            buf.put_u8(SNAP_GAUGE);
            buf.put_f64_le(*v);
        }
        MetricSnapshot::Histogram {
            bounds,
            counts,
            sum,
            count,
        } => {
            buf.put_u8(SNAP_HISTOGRAM);
            buf.put_u32_le(bounds.len() as u32);
            for b in bounds {
                buf.put_f64_le(*b);
            }
            buf.put_u32_le(counts.len() as u32);
            for c in counts {
                buf.put_u64_le(*c);
            }
            buf.put_f64_le(*sum);
            buf.put_u64_le(*count);
        }
    }
}

fn get_snapshot(buf: &mut Bytes) -> Result<MetricSnapshot, DietError> {
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(DietError::Codec("truncated metric snapshot".into()))
        } else {
            Ok(())
        }
    };
    need(buf, 1)?;
    match buf.get_u8() {
        SNAP_COUNTER => {
            need(buf, 8)?;
            Ok(MetricSnapshot::Counter(buf.get_u64_le()))
        }
        SNAP_GAUGE => {
            need(buf, 8)?;
            Ok(MetricSnapshot::Gauge(buf.get_f64_le()))
        }
        SNAP_HISTOGRAM => {
            need(buf, 4)?;
            let nb = buf.get_u32_le() as usize;
            need(buf, nb * 8)?;
            let bounds = (0..nb).map(|_| buf.get_f64_le()).collect();
            need(buf, 4)?;
            let nc = buf.get_u32_le() as usize;
            need(buf, nc * 8)?;
            let counts = (0..nc).map(|_| buf.get_u64_le()).collect();
            need(buf, 16)?;
            Ok(MetricSnapshot::Histogram {
                bounds,
                counts,
                sum: buf.get_f64_le(),
                count: buf.get_u64_le(),
            })
        }
        t => Err(DietError::Codec(format!("unknown snapshot kind {t}"))),
    }
}

/// Encode a single value (tag-prefixed). Used by the data layer for
/// checksumming replicas independently of any enclosing frame.
pub fn encode_value(v: &DietValue) -> Bytes {
    let mut buf = BytesMut::with_capacity(16);
    put_value(&mut buf, v);
    buf.freeze()
}

/// Encode a profile (service, values, persistence).
pub fn encode_profile(buf: &mut BytesMut, p: &Profile) {
    put_str(buf, &p.service);
    buf.put_u32_le(p.values.len() as u32);
    for (v, m) in p.values.iter().zip(&p.persistence) {
        put_persistence(buf, *m);
        put_value(buf, v);
    }
}

/// Decode a profile.
pub fn decode_profile(buf: &mut Bytes) -> Result<Profile, DietError> {
    let service = get_str(buf)?;
    if buf.remaining() < 4 {
        return Err(DietError::Codec("truncated profile arity".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut values = Vec::with_capacity(n);
    let mut persistence = Vec::with_capacity(n);
    for _ in 0..n {
        persistence.push(get_persistence(buf)?);
        values.push(get_value(buf)?);
    }
    Ok(Profile {
        service,
        values,
        persistence,
    })
}

/// Encode a full message (without the outer length frame; transports add it).
pub fn encode_message(m: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match m {
        Message::Submit {
            service,
            request_id,
            ctx,
            exclude,
        } => {
            buf.put_u8(MSG_SUBMIT);
            buf.put_u64_le(*request_id);
            buf.put_u64_le(ctx.trace_id);
            buf.put_u64_le(ctx.parent_span);
            put_str(&mut buf, service);
            put_str_list(&mut buf, exclude);
        }
        Message::Forward {
            request_id,
            ctx,
            service,
            exclude,
            ttl,
        } => {
            buf.put_u8(MSG_FORWARD);
            buf.put_u64_le(*request_id);
            buf.put_u64_le(ctx.trace_id);
            buf.put_u64_le(ctx.parent_span);
            put_str(&mut buf, service);
            put_str_list(&mut buf, exclude);
            buf.put_u8(*ttl);
        }
        Message::EstimateBatch {
            request_id,
            estimates,
        } => {
            buf.put_u8(MSG_ESTIMATE_BATCH);
            buf.put_u64_le(*request_id);
            buf.put_u32_le(estimates.len() as u32);
            for e in estimates {
                put_estimate(&mut buf, e);
            }
        }
        Message::SubmitReply { request_id, server } => {
            buf.put_u8(MSG_SUBMIT_REPLY);
            buf.put_u64_le(*request_id);
            match server {
                Some(s) => {
                    buf.put_u8(1);
                    put_str(&mut buf, s);
                }
                None => buf.put_u8(0),
            }
        }
        Message::Call {
            request_id,
            ctx,
            profile,
        } => {
            buf.put_u8(MSG_CALL);
            buf.put_u64_le(*request_id);
            buf.put_u64_le(ctx.trace_id);
            buf.put_u64_le(ctx.parent_span);
            encode_profile(&mut buf, profile);
        }
        Message::CallReply {
            request_id,
            queue_wait,
            solve,
            result,
        } => {
            buf.put_u8(MSG_CALL_REPLY);
            buf.put_u64_le(*request_id);
            buf.put_f64_le(*queue_wait);
            buf.put_f64_le(*solve);
            match result {
                Ok(p) => {
                    buf.put_u8(1);
                    encode_profile(&mut buf, p);
                }
                Err(e) => {
                    buf.put_u8(0);
                    put_str(&mut buf, e);
                }
            }
        }
        Message::Ping => buf.put_u8(MSG_PING),
        Message::Pong => buf.put_u8(MSG_PONG),
        Message::Shutdown => buf.put_u8(MSG_SHUTDOWN),
        Message::DumpMetrics => buf.put_u8(MSG_DUMP_METRICS),
        Message::MetricsReply { text } => {
            buf.put_u8(MSG_METRICS_REPLY);
            put_str(&mut buf, text);
        }
        Message::GetData { request_id, id } => {
            buf.put_u8(MSG_GET_DATA);
            buf.put_u64_le(*request_id);
            put_str(&mut buf, id);
        }
        Message::DataReply {
            request_id,
            id,
            result,
        } => {
            buf.put_u8(MSG_DATA_REPLY);
            buf.put_u64_le(*request_id);
            put_str(&mut buf, id);
            match result {
                Ok((v, mode)) => {
                    buf.put_u8(1);
                    put_persistence(&mut buf, *mode);
                    put_value(&mut buf, v);
                }
                Err(e) => {
                    buf.put_u8(0);
                    put_str(&mut buf, e);
                }
            }
        }
        Message::PutData {
            request_id,
            id,
            mode,
            value,
        } => {
            buf.put_u8(MSG_PUT_DATA);
            buf.put_u64_le(*request_id);
            put_str(&mut buf, id);
            put_persistence(&mut buf, *mode);
            put_value(&mut buf, value);
        }
        Message::Busy { request_id } => {
            buf.put_u8(MSG_BUSY);
            buf.put_u64_le(*request_id);
        }
        Message::PushSpans {
            request_id,
            source,
            spans,
        } => {
            buf.put_u8(MSG_PUSH_SPANS);
            buf.put_u64_le(*request_id);
            put_source(&mut buf, source);
            buf.put_u32_le(spans.len() as u32);
            for s in spans {
                put_span(&mut buf, s);
            }
        }
        Message::PushMetricDeltas {
            request_id,
            source,
            deltas,
        } => {
            buf.put_u8(MSG_PUSH_METRIC_DELTAS);
            buf.put_u64_le(*request_id);
            put_source(&mut buf, source);
            buf.put_u32_le(deltas.len() as u32);
            for (name, labels, snap) in deltas {
                put_str(&mut buf, name);
                put_labels(&mut buf, labels);
                put_snapshot(&mut buf, snap);
            }
        }
        Message::PushAck { request_id } => {
            buf.put_u8(MSG_PUSH_ACK);
            buf.put_u64_le(*request_id);
        }
        Message::DumpMetricsRid { request_id, what } => {
            buf.put_u8(MSG_DUMP_METRICS_RID);
            buf.put_u64_le(*request_id);
            put_str(&mut buf, what);
        }
        Message::MetricsReplyRid { request_id, text } => {
            buf.put_u8(MSG_METRICS_REPLY_RID);
            buf.put_u64_le(*request_id);
            put_str(&mut buf, text);
        }
        Message::SubmitDag {
            request_id,
            ctx,
            spec,
        } => {
            buf.put_u8(MSG_SUBMIT_DAG);
            buf.put_u64_le(*request_id);
            buf.put_u64_le(ctx.trace_id);
            buf.put_u64_le(ctx.parent_span);
            put_workflow_spec(&mut buf, spec);
        }
        Message::DagReply { request_id, result } => {
            buf.put_u8(MSG_DAG_REPLY);
            buf.put_u64_le(*request_id);
            match result {
                Ok(dag_id) => {
                    buf.put_u8(1);
                    buf.put_u64_le(*dag_id);
                }
                Err(e) => {
                    buf.put_u8(0);
                    put_str(&mut buf, e);
                }
            }
        }
        Message::DagStatus {
            request_id,
            dag_id,
            since,
        } => {
            buf.put_u8(MSG_DAG_STATUS);
            buf.put_u64_le(*request_id);
            buf.put_u64_le(*dag_id);
            buf.put_u64_le(*since);
        }
        Message::DagEvent {
            request_id,
            dag_id,
            events,
            outcome,
        } => {
            buf.put_u8(MSG_DAG_EVENT);
            buf.put_u64_le(*request_id);
            buf.put_u64_le(*dag_id);
            buf.put_u32_le(events.len() as u32);
            for e in events {
                put_dag_event(&mut buf, e);
            }
            match outcome {
                Some(o) => {
                    buf.put_u8(1);
                    put_dag_outcome(&mut buf, o);
                }
                None => buf.put_u8(0),
            }
        }
        Message::SubmitTasks {
            request_id,
            campaign,
            tasks,
        } => {
            buf.put_u8(MSG_SUBMIT_TASKS);
            buf.put_u64_le(*request_id);
            put_str(&mut buf, campaign);
            buf.put_u32_le(tasks.len() as u32);
            for t in tasks {
                encode_task_payload(&mut buf, t);
            }
        }
        Message::SubmitTasksReply { request_id, result } => {
            buf.put_u8(MSG_SUBMIT_TASKS_REPLY);
            buf.put_u64_le(*request_id);
            match result {
                Ok((cid, ids)) => {
                    buf.put_u8(1);
                    buf.put_u64_le(*cid);
                    buf.put_u32_le(ids.len() as u32);
                    for id in ids {
                        buf.put_u64_le(*id);
                    }
                }
                Err(e) => {
                    buf.put_u8(0);
                    put_str(&mut buf, e);
                }
            }
        }
        Message::TaskStatus {
            request_id,
            campaign_id,
            task_id,
        } => {
            buf.put_u8(MSG_TASK_STATUS);
            buf.put_u64_le(*request_id);
            buf.put_u64_le(*campaign_id);
            buf.put_u64_le(*task_id);
        }
        Message::TaskStatusReply { request_id, result } => {
            buf.put_u8(MSG_TASK_STATUS_REPLY);
            buf.put_u64_le(*request_id);
            match result {
                Ok(rec) => {
                    buf.put_u8(1);
                    buf.put_u64_le(rec.task_id);
                    buf.put_u8(rec.state as u8);
                    buf.put_u32_le(rec.attempts);
                    put_str(&mut buf, &rec.sed);
                }
                Err(e) => {
                    buf.put_u8(0);
                    put_str(&mut buf, e);
                }
            }
        }
        Message::AttachCampaign {
            request_id,
            campaign,
        } => {
            buf.put_u8(MSG_ATTACH_CAMPAIGN);
            buf.put_u64_le(*request_id);
            put_str(&mut buf, campaign);
        }
        Message::AttachReply { request_id, result } => {
            buf.put_u8(MSG_ATTACH_REPLY);
            buf.put_u64_le(*request_id);
            match result {
                Ok(s) => {
                    buf.put_u8(1);
                    put_campaign_summary(&mut buf, s);
                }
                Err(e) => {
                    buf.put_u8(0);
                    put_str(&mut buf, e);
                }
            }
        }
        Message::CampaignProgress {
            request_id,
            campaign_id,
            cursor,
        } => {
            buf.put_u8(MSG_CAMPAIGN_PROGRESS);
            buf.put_u64_le(*request_id);
            buf.put_u64_le(*campaign_id);
            buf.put_u64_le(*cursor);
        }
        Message::ProgressReply { request_id, result } => {
            buf.put_u8(MSG_PROGRESS_REPLY);
            buf.put_u64_le(*request_id);
            match result {
                Ok((summary, events)) => {
                    buf.put_u8(1);
                    put_campaign_summary(&mut buf, summary);
                    buf.put_u32_le(events.len() as u32);
                    for e in events {
                        put_task_event(&mut buf, e);
                    }
                }
                Err(e) => {
                    buf.put_u8(0);
                    put_str(&mut buf, e);
                }
            }
        }
    }
    buf.freeze()
}

/// Encode a jobserver task payload (also the WAL's on-disk encoding for
/// task bodies): a kind byte then a profile or a workflow spec.
pub fn encode_task_payload(buf: &mut BytesMut, p: &TaskPayload) {
    match p {
        TaskPayload::Call(profile) => {
            buf.put_u8(0);
            encode_profile(buf, profile);
        }
        TaskPayload::Dag(spec) => {
            buf.put_u8(1);
            put_workflow_spec(buf, spec);
        }
    }
}

/// Decode a jobserver task payload.
pub fn decode_task_payload(buf: &mut Bytes) -> Result<TaskPayload, DietError> {
    if buf.remaining() < 1 {
        return Err(DietError::Codec("truncated task payload kind".into()));
    }
    match buf.get_u8() {
        0 => Ok(TaskPayload::Call(decode_profile(buf)?)),
        1 => Ok(TaskPayload::Dag(get_workflow_spec(buf)?)),
        k => Err(DietError::Codec(format!("unknown task payload kind {k}"))),
    }
}

fn put_campaign_summary(buf: &mut BytesMut, s: &CampaignSummary) {
    buf.put_u64_le(s.campaign_id);
    put_str(buf, &s.name);
    buf.put_u64_le(s.total);
    buf.put_u64_le(s.done);
    buf.put_u64_le(s.failed);
    buf.put_u64_le(s.resubmissions);
    buf.put_u8(s.finished as u8);
}

fn get_campaign_summary(buf: &mut Bytes) -> Result<CampaignSummary, DietError> {
    if buf.remaining() < 8 {
        return Err(DietError::Codec("truncated campaign summary".into()));
    }
    let campaign_id = buf.get_u64_le();
    let name = get_str(buf)?;
    if buf.remaining() < 33 {
        return Err(DietError::Codec("truncated campaign summary tail".into()));
    }
    Ok(CampaignSummary {
        campaign_id,
        name,
        total: buf.get_u64_le(),
        done: buf.get_u64_le(),
        failed: buf.get_u64_le(),
        resubmissions: buf.get_u64_le(),
        finished: buf.get_u8() == 1,
    })
}

fn put_task_event(buf: &mut BytesMut, e: &TaskEventRec) {
    buf.put_u64_le(e.seq);
    buf.put_u64_le(e.task_id);
    buf.put_u8(e.state as u8);
    buf.put_u32_le(e.attempt);
    put_str(buf, &e.sed);
    buf.put_u64_le(e.ms);
}

fn get_task_event(buf: &mut Bytes) -> Result<TaskEventRec, DietError> {
    if buf.remaining() < 21 {
        return Err(DietError::Codec("truncated task event".into()));
    }
    let seq = buf.get_u64_le();
    let task_id = buf.get_u64_le();
    let state = TaskState::from_u8(buf.get_u8())
        .ok_or_else(|| DietError::Codec("bad task state".into()))?;
    let attempt = buf.get_u32_le();
    let sed = get_str(buf)?;
    if buf.remaining() < 8 {
        return Err(DietError::Codec("truncated task event tail".into()));
    }
    Ok(TaskEventRec {
        seq,
        task_id,
        state,
        attempt,
        sed,
        ms: buf.get_u64_le(),
    })
}

fn put_workflow_spec(buf: &mut BytesMut, spec: &WorkflowSpec) {
    put_str(buf, &spec.name);
    buf.put_u32_le(spec.nodes.len() as u32);
    for n in &spec.nodes {
        buf.put_u32_le(n.id);
        encode_profile(buf, &n.profile);
        buf.put_u32_le(n.deps.len() as u32);
        for d in &n.deps {
            buf.put_u32_le(*d);
        }
        buf.put_u32_le(n.inputs.len() as u32);
        for i in &n.inputs {
            buf.put_u32_le(i.arg);
            buf.put_u32_le(i.from_node);
            buf.put_u32_le(i.from_arg);
        }
        match &n.expander {
            Some(name) => {
                buf.put_u8(1);
                put_str(buf, name);
            }
            None => buf.put_u8(0),
        }
        buf.put_u32_le(n.params.len() as u32);
        for (k, v) in &n.params {
            put_str(buf, k);
            put_str(buf, v);
        }
        buf.put_u32_le(n.max_retries);
    }
}

fn get_workflow_spec(buf: &mut Bytes) -> Result<WorkflowSpec, DietError> {
    let need_u32 = |buf: &mut Bytes, what: &str| -> Result<u32, DietError> {
        if buf.remaining() < 4 {
            Err(DietError::Codec(format!("truncated {what}")))
        } else {
            Ok(buf.get_u32_le())
        }
    };
    let name = get_str(buf)?;
    let n_nodes = need_u32(buf, "workflow node count")? as usize;
    let mut nodes = Vec::with_capacity(n_nodes.min(1024));
    for _ in 0..n_nodes {
        let id = need_u32(buf, "dag node id")?;
        let profile = decode_profile(buf)?;
        let n_deps = need_u32(buf, "dag dep count")? as usize;
        let mut deps = Vec::with_capacity(n_deps.min(1024));
        for _ in 0..n_deps {
            deps.push(need_u32(buf, "dag dep")?);
        }
        let n_inputs = need_u32(buf, "dag input count")? as usize;
        let mut inputs = Vec::with_capacity(n_inputs.min(1024));
        for _ in 0..n_inputs {
            inputs.push(DagInput {
                arg: need_u32(buf, "dag input arg")?,
                from_node: need_u32(buf, "dag input node")?,
                from_arg: need_u32(buf, "dag input from-arg")?,
            });
        }
        if buf.remaining() < 1 {
            return Err(DietError::Codec("truncated expander flag".into()));
        }
        let expander = if buf.get_u8() == 1 {
            Some(get_str(buf)?)
        } else {
            None
        };
        let n_params = need_u32(buf, "dag param count")? as usize;
        let mut params = Vec::with_capacity(n_params.min(1024));
        for _ in 0..n_params {
            let k = get_str(buf)?;
            let v = get_str(buf)?;
            params.push((k, v));
        }
        let max_retries = need_u32(buf, "dag retry budget")?;
        nodes.push(DagNodeSpec {
            id,
            profile,
            deps,
            inputs,
            expander,
            params,
            max_retries,
        });
    }
    Ok(WorkflowSpec { name, nodes })
}

fn put_dag_event(buf: &mut BytesMut, e: &DagEventRec) {
    buf.put_u64_le(e.seq);
    buf.put_u32_le(e.node);
    buf.put_u8(e.state as u8);
    put_str(buf, &e.detail);
    buf.put_u64_le(e.at_ms);
}

fn get_dag_event(buf: &mut Bytes) -> Result<DagEventRec, DietError> {
    if buf.remaining() < 13 {
        return Err(DietError::Codec("truncated dag event".into()));
    }
    let seq = buf.get_u64_le();
    let node = buf.get_u32_le();
    let state = DagNodeState::from_u8(buf.get_u8())
        .ok_or_else(|| DietError::Codec("bad dag node state".into()))?;
    let detail = get_str(buf)?;
    if buf.remaining() < 8 {
        return Err(DietError::Codec("truncated dag event timestamp".into()));
    }
    Ok(DagEventRec {
        seq,
        node,
        state,
        detail,
        at_ms: buf.get_u64_le(),
    })
}

fn put_dag_outcome(buf: &mut BytesMut, o: &DagOutcome) {
    buf.put_u64_le(o.dag_id);
    buf.put_u8(o.ok as u8);
    buf.put_u64_le(o.makespan_ms);
    buf.put_u32_le(o.cancelled);
    buf.put_u32_le(o.nodes.len() as u32);
    for n in &o.nodes {
        buf.put_u32_le(n.node);
        put_str(buf, &n.service);
        put_str(buf, &n.sed);
        buf.put_i32_le(n.status);
        buf.put_u32_le(n.attempts);
        buf.put_u8(n.speculated as u8);
        buf.put_u64_le(n.duration_ms);
        buf.put_u32_le(n.outputs.len() as u32);
        for (arg, id) in &n.outputs {
            buf.put_u32_le(*arg);
            put_str(buf, id);
        }
        buf.put_u32_le(n.scalars.len() as u32);
        for (arg, v) in &n.scalars {
            buf.put_u32_le(*arg);
            buf.put_i64_le(*v);
        }
    }
}

fn get_dag_outcome(buf: &mut Bytes) -> Result<DagOutcome, DietError> {
    if buf.remaining() < 25 {
        return Err(DietError::Codec("truncated dag outcome".into()));
    }
    let dag_id = buf.get_u64_le();
    let ok = buf.get_u8() == 1;
    let makespan_ms = buf.get_u64_le();
    let cancelled = buf.get_u32_le();
    let n_nodes = buf.get_u32_le() as usize;
    let mut nodes = Vec::with_capacity(n_nodes.min(1024));
    for _ in 0..n_nodes {
        if buf.remaining() < 4 {
            return Err(DietError::Codec("truncated node outcome".into()));
        }
        let node = buf.get_u32_le();
        let service = get_str(buf)?;
        let sed = get_str(buf)?;
        if buf.remaining() < 17 {
            return Err(DietError::Codec("truncated node outcome tail".into()));
        }
        let status = buf.get_i32_le();
        let attempts = buf.get_u32_le();
        let speculated = buf.get_u8() == 1;
        let duration_ms = buf.get_u64_le();
        if buf.remaining() < 4 {
            return Err(DietError::Codec("truncated output count".into()));
        }
        let n_out = buf.get_u32_le() as usize;
        let mut outputs = Vec::with_capacity(n_out.min(1024));
        for _ in 0..n_out {
            if buf.remaining() < 4 {
                return Err(DietError::Codec("truncated output arg".into()));
            }
            let arg = buf.get_u32_le();
            outputs.push((arg, get_str(buf)?));
        }
        if buf.remaining() < 4 {
            return Err(DietError::Codec("truncated scalar count".into()));
        }
        let n_scalar = buf.get_u32_le() as usize;
        let mut scalars = Vec::with_capacity(n_scalar.min(1024));
        for _ in 0..n_scalar {
            if buf.remaining() < 12 {
                return Err(DietError::Codec("truncated scalar".into()));
            }
            let arg = buf.get_u32_le();
            scalars.push((arg, buf.get_i64_le()));
        }
        nodes.push(DagNodeOutcome {
            node,
            service,
            sed,
            status,
            attempts,
            speculated,
            duration_ms,
            outputs,
            scalars,
        });
    }
    Ok(DagOutcome {
        dag_id,
        ok,
        makespan_ms,
        cancelled,
        nodes,
    })
}

/// Cheap correlation-id peek on an undecoded frame: correlated messages
/// carry their request id LE at bytes `[1..9]` right after the tag byte.
/// The only remaining uncorrelated frames (Ping/Pong, Shutdown, and the
/// legacy dedicated-connection DumpMetrics/MetricsReply pair — use
/// [`Message::DumpMetricsRid`] on a mux) and frames too short to carry an
/// id return 0 — which is never a live request id.
pub fn peek_request_id(frame: &[u8]) -> u64 {
    if frame.len() < 9 {
        return 0;
    }
    match frame[0] {
        MSG_SUBMIT
        | MSG_SUBMIT_REPLY
        | MSG_CALL
        | MSG_CALL_REPLY
        | MSG_GET_DATA
        | MSG_DATA_REPLY
        | MSG_PUT_DATA
        | MSG_BUSY
        | MSG_FORWARD
        | MSG_ESTIMATE_BATCH
        | MSG_PUSH_SPANS
        | MSG_PUSH_METRIC_DELTAS
        | MSG_PUSH_ACK
        | MSG_DUMP_METRICS_RID
        | MSG_METRICS_REPLY_RID
        | MSG_SUBMIT_DAG
        | MSG_DAG_REPLY
        | MSG_DAG_STATUS
        | MSG_DAG_EVENT
        | MSG_SUBMIT_TASKS
        | MSG_SUBMIT_TASKS_REPLY
        | MSG_TASK_STATUS
        | MSG_TASK_STATUS_REPLY
        | MSG_ATTACH_CAMPAIGN
        | MSG_ATTACH_REPLY
        | MSG_CAMPAIGN_PROGRESS
        | MSG_PROGRESS_REPLY => u64::from_le_bytes(frame[1..9].try_into().unwrap()),
        _ => 0,
    }
}

/// Decode a message.
pub fn decode_message(mut buf: Bytes) -> Result<Message, DietError> {
    if buf.remaining() < 1 {
        return Err(DietError::Codec("empty message".into()));
    }
    let tag = buf.get_u8();
    let need_u64 = |buf: &mut Bytes| -> Result<u64, DietError> {
        if buf.remaining() < 8 {
            Err(DietError::Codec("truncated request id".into()))
        } else {
            Ok(buf.get_u64_le())
        }
    };
    match tag {
        MSG_SUBMIT => {
            let request_id = need_u64(&mut buf)?;
            let ctx = TraceCtx {
                trace_id: need_u64(&mut buf)?,
                parent_span: need_u64(&mut buf)?,
            };
            Ok(Message::Submit {
                request_id,
                ctx,
                service: get_str(&mut buf)?,
                exclude: get_str_list(&mut buf)?,
            })
        }
        MSG_FORWARD => {
            let request_id = need_u64(&mut buf)?;
            let ctx = TraceCtx {
                trace_id: need_u64(&mut buf)?,
                parent_span: need_u64(&mut buf)?,
            };
            let service = get_str(&mut buf)?;
            let exclude = get_str_list(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated forward ttl".into()));
            }
            Ok(Message::Forward {
                request_id,
                ctx,
                service,
                exclude,
                ttl: buf.get_u8(),
            })
        }
        MSG_ESTIMATE_BATCH => {
            let request_id = need_u64(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(DietError::Codec("truncated estimate count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let estimates = (0..n)
                .map(|_| get_estimate(&mut buf))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Message::EstimateBatch {
                request_id,
                estimates,
            })
        }
        MSG_SUBMIT_REPLY => {
            let request_id = need_u64(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated reply flag".into()));
            }
            let server = if buf.get_u8() == 1 {
                Some(get_str(&mut buf)?)
            } else {
                None
            };
            Ok(Message::SubmitReply { request_id, server })
        }
        MSG_CALL => {
            let request_id = need_u64(&mut buf)?;
            let ctx = TraceCtx {
                trace_id: need_u64(&mut buf)?,
                parent_span: need_u64(&mut buf)?,
            };
            Ok(Message::Call {
                request_id,
                ctx,
                profile: decode_profile(&mut buf)?,
            })
        }
        MSG_CALL_REPLY => {
            let request_id = need_u64(&mut buf)?;
            if buf.remaining() < 16 {
                return Err(DietError::Codec("truncated reply timings".into()));
            }
            let queue_wait = buf.get_f64_le();
            let solve = buf.get_f64_le();
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated result flag".into()));
            }
            let result = if buf.get_u8() == 1 {
                Ok(decode_profile(&mut buf)?)
            } else {
                Err(get_str(&mut buf)?)
            };
            Ok(Message::CallReply {
                request_id,
                queue_wait,
                solve,
                result,
            })
        }
        MSG_PING => Ok(Message::Ping),
        MSG_PONG => Ok(Message::Pong),
        MSG_SHUTDOWN => Ok(Message::Shutdown),
        MSG_DUMP_METRICS => Ok(Message::DumpMetrics),
        MSG_METRICS_REPLY => Ok(Message::MetricsReply {
            text: get_str(&mut buf)?,
        }),
        MSG_GET_DATA => {
            let request_id = need_u64(&mut buf)?;
            Ok(Message::GetData {
                request_id,
                id: get_str(&mut buf)?,
            })
        }
        MSG_DATA_REPLY => {
            let request_id = need_u64(&mut buf)?;
            let id = get_str(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated data reply flag".into()));
            }
            let result = if buf.get_u8() == 1 {
                let mode = get_persistence(&mut buf)?;
                Ok((get_value(&mut buf)?, mode))
            } else {
                Err(get_str(&mut buf)?)
            };
            Ok(Message::DataReply {
                request_id,
                id,
                result,
            })
        }
        MSG_PUT_DATA => {
            let request_id = need_u64(&mut buf)?;
            let id = get_str(&mut buf)?;
            let mode = get_persistence(&mut buf)?;
            Ok(Message::PutData {
                request_id,
                id,
                mode,
                value: get_value(&mut buf)?,
            })
        }
        MSG_BUSY => Ok(Message::Busy {
            request_id: need_u64(&mut buf)?,
        }),
        MSG_PUSH_SPANS => {
            let request_id = need_u64(&mut buf)?;
            let source = get_source(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(DietError::Codec("truncated span count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let spans = (0..n)
                .map(|_| get_span(&mut buf))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Message::PushSpans {
                request_id,
                source,
                spans,
            })
        }
        MSG_PUSH_METRIC_DELTAS => {
            let request_id = need_u64(&mut buf)?;
            let source = get_source(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(DietError::Codec("truncated delta count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let deltas = (0..n)
                .map(|_| {
                    let name = get_str(&mut buf)?;
                    let labels = get_labels(&mut buf)?;
                    let snap = get_snapshot(&mut buf)?;
                    Ok((name, labels, snap))
                })
                .collect::<Result<Vec<_>, DietError>>()?;
            Ok(Message::PushMetricDeltas {
                request_id,
                source,
                deltas,
            })
        }
        MSG_PUSH_ACK => Ok(Message::PushAck {
            request_id: need_u64(&mut buf)?,
        }),
        MSG_DUMP_METRICS_RID => {
            let request_id = need_u64(&mut buf)?;
            Ok(Message::DumpMetricsRid {
                request_id,
                what: get_str(&mut buf)?,
            })
        }
        MSG_METRICS_REPLY_RID => {
            let request_id = need_u64(&mut buf)?;
            Ok(Message::MetricsReplyRid {
                request_id,
                text: get_str(&mut buf)?,
            })
        }
        MSG_SUBMIT_DAG => {
            let request_id = need_u64(&mut buf)?;
            let ctx = TraceCtx {
                trace_id: need_u64(&mut buf)?,
                parent_span: need_u64(&mut buf)?,
            };
            Ok(Message::SubmitDag {
                request_id,
                ctx,
                spec: get_workflow_spec(&mut buf)?,
            })
        }
        MSG_DAG_REPLY => {
            let request_id = need_u64(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated dag reply flag".into()));
            }
            let result = if buf.get_u8() == 1 {
                Ok(need_u64(&mut buf)?)
            } else {
                Err(get_str(&mut buf)?)
            };
            Ok(Message::DagReply { request_id, result })
        }
        MSG_DAG_STATUS => Ok(Message::DagStatus {
            request_id: need_u64(&mut buf)?,
            dag_id: need_u64(&mut buf)?,
            since: need_u64(&mut buf)?,
        }),
        MSG_DAG_EVENT => {
            let request_id = need_u64(&mut buf)?;
            let dag_id = need_u64(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(DietError::Codec("truncated dag event count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let events = (0..n)
                .map(|_| get_dag_event(&mut buf))
                .collect::<Result<Vec<_>, _>>()?;
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated dag outcome flag".into()));
            }
            let outcome = if buf.get_u8() == 1 {
                Some(get_dag_outcome(&mut buf)?)
            } else {
                None
            };
            Ok(Message::DagEvent {
                request_id,
                dag_id,
                events,
                outcome,
            })
        }
        MSG_SUBMIT_TASKS => {
            let request_id = need_u64(&mut buf)?;
            let campaign = get_str(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(DietError::Codec("truncated task count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let tasks = (0..n)
                .map(|_| decode_task_payload(&mut buf))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Message::SubmitTasks {
                request_id,
                campaign,
                tasks,
            })
        }
        MSG_SUBMIT_TASKS_REPLY => {
            let request_id = need_u64(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated submit-tasks flag".into()));
            }
            let result = if buf.get_u8() == 1 {
                let cid = need_u64(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(DietError::Codec("truncated task id count".into()));
                }
                let n = buf.get_u32_le() as usize;
                let mut ids = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    ids.push(need_u64(&mut buf)?);
                }
                Ok((cid, ids))
            } else {
                Err(get_str(&mut buf)?)
            };
            Ok(Message::SubmitTasksReply { request_id, result })
        }
        MSG_TASK_STATUS => Ok(Message::TaskStatus {
            request_id: need_u64(&mut buf)?,
            campaign_id: need_u64(&mut buf)?,
            task_id: need_u64(&mut buf)?,
        }),
        MSG_TASK_STATUS_REPLY => {
            let request_id = need_u64(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated task-status flag".into()));
            }
            let result = if buf.get_u8() == 1 {
                let task_id = need_u64(&mut buf)?;
                if buf.remaining() < 5 {
                    return Err(DietError::Codec("truncated task status".into()));
                }
                let state = TaskState::from_u8(buf.get_u8())
                    .ok_or_else(|| DietError::Codec("bad task state".into()))?;
                let attempts = buf.get_u32_le();
                Ok(TaskStatusRec {
                    task_id,
                    state,
                    attempts,
                    sed: get_str(&mut buf)?,
                })
            } else {
                Err(get_str(&mut buf)?)
            };
            Ok(Message::TaskStatusReply { request_id, result })
        }
        MSG_ATTACH_CAMPAIGN => {
            let request_id = need_u64(&mut buf)?;
            Ok(Message::AttachCampaign {
                request_id,
                campaign: get_str(&mut buf)?,
            })
        }
        MSG_ATTACH_REPLY => {
            let request_id = need_u64(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated attach flag".into()));
            }
            let result = if buf.get_u8() == 1 {
                Ok(get_campaign_summary(&mut buf)?)
            } else {
                Err(get_str(&mut buf)?)
            };
            Ok(Message::AttachReply { request_id, result })
        }
        MSG_CAMPAIGN_PROGRESS => Ok(Message::CampaignProgress {
            request_id: need_u64(&mut buf)?,
            campaign_id: need_u64(&mut buf)?,
            cursor: need_u64(&mut buf)?,
        }),
        MSG_PROGRESS_REPLY => {
            let request_id = need_u64(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DietError::Codec("truncated progress flag".into()));
            }
            let result = if buf.get_u8() == 1 {
                let summary = get_campaign_summary(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(DietError::Codec("truncated event count".into()));
                }
                let n = buf.get_u32_le() as usize;
                let events = (0..n)
                    .map(|_| get_task_event(&mut buf))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((summary, events))
            } else {
                Err(get_str(&mut buf)?)
            };
            Ok(Message::ProgressReply { request_id, result })
        }
        t => Err(DietError::Codec(format!("unknown message tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ramses_zoom2_desc, Profile};

    fn sample_profile() -> Profile {
        let d = ramses_zoom2_desc();
        let mut p = Profile::alloc(&d);
        p.set(
            0,
            DietValue::File {
                name: "n.nml".into(),
                data: Bytes::from_static(b"&RUN/"),
            },
            Persistence::Volatile,
        )
        .unwrap();
        p.set(1, DietValue::ScalarI32(128), Persistence::Persistent)
            .unwrap();
        p.set(2, DietValue::ScalarF64(100.0), Persistence::Sticky)
            .unwrap();
        p.set(3, DietValue::Str("cx".into()), Persistence::Volatile)
            .unwrap();
        p.set(4, DietValue::vec_f64(vec![1.0, 2.5]), Persistence::Volatile)
            .unwrap();
        p.set(5, DietValue::vec_i32(vec![-3, 7]), Persistence::Volatile)
            .unwrap();
        p.set(6, DietValue::ScalarChar(b'z'), Persistence::Volatile)
            .unwrap();
        p
    }

    #[test]
    fn profile_roundtrip() {
        let p = sample_profile();
        let mut buf = BytesMut::new();
        encode_profile(&mut buf, &p);
        let back = decode_profile(&mut buf.freeze()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn jobserver_frame_roundtrips() {
        let summary = CampaignSummary {
            campaign_id: 7,
            name: "zoom-sweep".into(),
            total: 100,
            done: 42,
            failed: 1,
            resubmissions: 5,
            finished: false,
        };
        let event = TaskEventRec {
            seq: 9,
            task_id: 3,
            state: TaskState::Done,
            attempt: 2,
            sed: "lyon/0".into(),
            ms: 123,
        };
        let spec = WorkflowSpec {
            name: "w".into(),
            nodes: vec![],
        };
        let msgs = vec![
            Message::SubmitTasks {
                request_id: 1,
                campaign: "camp".into(),
                tasks: vec![TaskPayload::Call(sample_profile()), TaskPayload::Dag(spec)],
            },
            Message::SubmitTasksReply {
                request_id: 2,
                result: Ok((7, vec![0, 1, 2])),
            },
            Message::SubmitTasksReply {
                request_id: 3,
                result: Err("nope".into()),
            },
            Message::TaskStatus {
                request_id: 4,
                campaign_id: 7,
                task_id: 3,
            },
            Message::TaskStatusReply {
                request_id: 5,
                result: Ok(TaskStatusRec {
                    task_id: 3,
                    state: TaskState::Dispatched,
                    attempts: 2,
                    sed: "lyon/1".into(),
                }),
            },
            Message::TaskStatusReply {
                request_id: 6,
                result: Err("unknown task".into()),
            },
            Message::AttachCampaign {
                request_id: 7,
                campaign: "camp".into(),
            },
            Message::AttachReply {
                request_id: 8,
                result: Ok(summary.clone()),
            },
            Message::AttachReply {
                request_id: 9,
                result: Err("unknown campaign".into()),
            },
            Message::CampaignProgress {
                request_id: 10,
                campaign_id: 7,
                cursor: 41,
            },
            Message::ProgressReply {
                request_id: 11,
                result: Ok((summary, vec![event])),
            },
            Message::ProgressReply {
                request_id: 12,
                result: Err("unknown campaign".into()),
            },
        ];
        for m in msgs {
            let enc = encode_message(&m);
            // Every jobserver frame is correlated: the id peeks out.
            assert_ne!(peek_request_id(&enc), 0, "{m:?}");
            let back = decode_message(enc).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn message_roundtrips() {
        let msgs = vec![
            Message::Submit {
                service: "ramsesZoom2".into(),
                request_id: 42,
                ctx: TraceCtx::default(),
                exclude: vec![],
            },
            Message::Submit {
                service: "ramsesZoom2".into(),
                request_id: 43,
                ctx: TraceCtx {
                    trace_id: 9,
                    parent_span: 4,
                },
                exclude: vec!["lyon/0".into(), "orsay-gdx/3".into()],
            },
            Message::Forward {
                request_id: 50,
                ctx: TraceCtx {
                    trace_id: 9,
                    parent_span: 4,
                },
                service: "ramsesZoom2".into(),
                exclude: vec!["lyon/0".into()],
                ttl: 1,
            },
            Message::Forward {
                request_id: 51,
                ctx: TraceCtx::default(),
                service: "echo".into(),
                exclude: vec![],
                ttl: 0,
            },
            Message::EstimateBatch {
                request_id: 50,
                estimates: vec![],
            },
            Message::EstimateBatch {
                request_id: 50,
                estimates: vec![
                    Estimate {
                        server: "toulouse-violette/0".into(),
                        speed_factor: 1.25,
                        free_memory: 1 << 34,
                        queue_length: 3,
                        completed: 812,
                        known_mean_duration: Some(417.5),
                        probe_rtt: 0.031,
                        data_local_bytes: 100 << 20,
                        data_miss_bytes: 0,
                        admission_limit: Some(16),
                    },
                    Estimate {
                        server: "lyon/1".into(),
                        speed_factor: 0.8,
                        ..Estimate::default()
                    },
                ],
            },
            Message::SubmitReply {
                request_id: 42,
                server: Some("toulouse-violette/0".into()),
            },
            Message::SubmitReply {
                request_id: 43,
                server: None,
            },
            Message::Call {
                request_id: 42,
                ctx: TraceCtx {
                    trace_id: 7,
                    parent_span: 99,
                },
                profile: sample_profile(),
            },
            Message::Call {
                request_id: 44,
                ctx: TraceCtx::default(),
                profile: sample_profile(),
            },
            Message::CallReply {
                request_id: 42,
                queue_wait: 0.125,
                solve: 2.5,
                result: Ok(sample_profile()),
            },
            Message::CallReply {
                request_id: 42,
                queue_wait: 0.0,
                solve: 0.0,
                result: Err("solve failed".into()),
            },
            Message::Ping,
            Message::Pong,
            Message::Shutdown,
            Message::DumpMetrics,
            Message::MetricsReply {
                text: "# TYPE x counter\nx 1\n".into(),
            },
            Message::GetData {
                request_id: 77,
                id: "ramsesZoom2#0".into(),
            },
            Message::DataReply {
                request_id: 77,
                id: "ramsesZoom2#0".into(),
                result: Ok((
                    DietValue::File {
                        name: "ic.dat".into(),
                        data: Bytes::from_static(b"\x00\x01\x02"),
                    },
                    Persistence::Persistent,
                )),
            },
            Message::DataReply {
                request_id: 78,
                id: "missing".into(),
                result: Err("persistent data not found: missing".into()),
            },
            Message::PutData {
                request_id: 79,
                id: "blob".into(),
                mode: Persistence::Sticky,
                value: DietValue::vec_f64(vec![0.5, -1.5]),
            },
            Message::Busy { request_id: 0 },
            Message::Busy { request_id: 81 },
            Message::PushSpans {
                request_id: 90,
                source: ProcessSource {
                    role: "sed".into(),
                    label: "lyon/0".into(),
                    pid: 4242,
                    site: "lyon".into(),
                },
                spans: vec![
                    SpanRecord {
                        trace_id: 7,
                        span_id: 2,
                        parent: 1,
                        name: "Execution",
                        resource: "lyon/0".into(),
                        start_ns: 1_000,
                        end_ns: 5_000,
                    },
                    SpanRecord {
                        trace_id: 7,
                        span_id: 3,
                        parent: 2,
                        name: "ResultReturn",
                        resource: "lyon/0".into(),
                        start_ns: 5_000,
                        end_ns: 5_500,
                    },
                ],
            },
            Message::PushSpans {
                request_id: 91,
                source: ProcessSource::default(),
                spans: vec![],
            },
            Message::PushMetricDeltas {
                request_id: 92,
                source: ProcessSource {
                    role: "client".into(),
                    label: "client".into(),
                    pid: 1,
                    site: String::new(),
                },
                deltas: vec![
                    (
                        "diet_client_requests_total".into(),
                        vec![],
                        MetricSnapshot::Counter(3),
                    ),
                    (
                        "diet_sed_queue_length".into(),
                        vec![("sed".into(), "lyon/0".into())],
                        MetricSnapshot::Gauge(2.0),
                    ),
                    (
                        "diet_client_finding_seconds".into(),
                        vec![],
                        MetricSnapshot::Histogram {
                            bounds: vec![0.1, 1.0],
                            counts: vec![1, 0, 2],
                            sum: 4.25,
                            count: 3,
                        },
                    ),
                ],
            },
            Message::PushAck { request_id: 90 },
            Message::DumpMetricsRid {
                request_id: 93,
                what: "topology".into(),
            },
            Message::DumpMetricsRid {
                request_id: 94,
                what: String::new(),
            },
            Message::MetricsReplyRid {
                request_id: 93,
                text: "# TYPE x counter\nx 1\n".into(),
            },
            Message::SubmitDag {
                request_id: 95,
                ctx: TraceCtx {
                    trace_id: 11,
                    parent_span: 12,
                },
                spec: sample_workflow(),
            },
            Message::DagReply {
                request_id: 95,
                result: Ok(3),
            },
            Message::DagReply {
                request_id: 96,
                result: Err("cycle through nodes [0, 1]".into()),
            },
            Message::DagStatus {
                request_id: 97,
                dag_id: 3,
                since: 17,
            },
            Message::DagEvent {
                request_id: 97,
                dag_id: 3,
                events: vec![DagEventRec {
                    seq: 18,
                    node: 1,
                    state: DagNodeState::Running,
                    detail: "lyon/0".into(),
                    at_ms: 250,
                }],
                outcome: Some(DagOutcome {
                    dag_id: 3,
                    ok: true,
                    makespan_ms: 900,
                    cancelled: 0,
                    nodes: vec![DagNodeOutcome {
                        node: 1,
                        service: "ramsesZoom1".into(),
                        sed: "lyon/0".into(),
                        status: 0,
                        attempts: 2,
                        speculated: true,
                        duration_ms: 640,
                        outputs: vec![(2, "ramsesZoom1@d3.n1#2".into())],
                        scalars: vec![(3, 0)],
                    }],
                }),
            },
            Message::DagEvent {
                request_id: 98,
                dag_id: 4,
                events: vec![],
                outcome: None,
            },
        ];
        for m in msgs {
            let enc = encode_message(&m);
            let dec = decode_message(enc).unwrap();
            assert_eq!(dec, m);
        }
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let enc = encode_message(&Message::Call {
            request_id: 7,
            ctx: TraceCtx {
                trace_id: 3,
                parent_span: 5,
            },
            profile: sample_profile(),
        });
        for cut in [0, 1, 5, 9, 13, 21, enc.len() / 2, enc.len() - 1] {
            let sliced = enc.slice(0..cut);
            assert!(
                decode_message(sliced).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        let raw = Bytes::from_static(&[99u8, 0, 0, 0]);
        assert!(matches!(decode_message(raw), Err(DietError::Codec(_))));
    }

    #[test]
    fn trace_context_survives_the_frame() {
        // The 16-byte trace header sits right after the request id, so a
        // relay that only reads the id still forwards the context intact.
        let ctx = TraceCtx {
            trace_id: 0xDEAD_BEEF_0B50_u64,
            parent_span: 12_345,
        };
        let enc = encode_message(&Message::Call {
            request_id: 1,
            ctx,
            profile: sample_profile(),
        });
        match decode_message(enc).unwrap() {
            Message::Call { ctx: back, .. } => assert_eq!(back, ctx),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn data_ref_value_roundtrip() {
        let mut buf = BytesMut::new();
        put_value(&mut buf, &DietValue::data_ref("zoom/ic#0"));
        let v = get_value(&mut buf.freeze()).unwrap();
        assert_eq!(v.as_data_ref(), Some("zoom/ic#0"));
    }

    #[test]
    fn data_frames_detect_truncation() {
        let enc = encode_message(&Message::DataReply {
            request_id: 5,
            id: "ic".into(),
            result: Ok((DietValue::vec_i32(vec![1, 2, 3]), Persistence::Persistent)),
        });
        for cut in 0..enc.len() {
            assert!(
                decode_message(enc.slice(0..cut)).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn hierarchy_frames_detect_truncation() {
        // Forward and EstimateBatch travel agent-to-agent; cut them at
        // every byte boundary and none may decode (or panic).
        let frames = [
            encode_message(&Message::Forward {
                request_id: 5,
                ctx: TraceCtx {
                    trace_id: 2,
                    parent_span: 3,
                },
                service: "ramsesZoom2".into(),
                exclude: vec!["lyon/0".into()],
                ttl: 1,
            }),
            encode_message(&Message::EstimateBatch {
                request_id: 5,
                estimates: vec![Estimate {
                    server: "sophia/2".into(),
                    speed_factor: 1.0,
                    known_mean_duration: Some(12.5),
                    admission_limit: Some(4),
                    ..Estimate::default()
                }],
            }),
        ];
        for enc in frames {
            for cut in 0..enc.len() {
                assert!(
                    decode_message(enc.slice(0..cut)).is_err(),
                    "cut at {cut} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn telemetry_frames_detect_truncation() {
        // Push batches and the correlated dump pair travel on shared mux
        // connections; cut them at every byte and none may decode or panic.
        let src = ProcessSource {
            role: "sed".into(),
            label: "lyon/0".into(),
            pid: 7,
            site: "lyon".into(),
        };
        let frames = [
            encode_message(&Message::PushSpans {
                request_id: 5,
                source: src.clone(),
                spans: vec![SpanRecord {
                    trace_id: 1,
                    span_id: 2,
                    parent: 0,
                    name: "Queued",
                    resource: "lyon/0".into(),
                    start_ns: 10,
                    end_ns: 20,
                }],
            }),
            encode_message(&Message::PushMetricDeltas {
                request_id: 6,
                source: src,
                deltas: vec![
                    (
                        "c".into(),
                        vec![("k".into(), "v".into())],
                        MetricSnapshot::Counter(1),
                    ),
                    (
                        "h".into(),
                        vec![],
                        MetricSnapshot::Histogram {
                            bounds: vec![1.0],
                            counts: vec![0, 1],
                            sum: 2.0,
                            count: 1,
                        },
                    ),
                ],
            }),
            encode_message(&Message::DumpMetricsRid {
                request_id: 7,
                what: "chrome".into(),
            }),
            encode_message(&Message::MetricsReplyRid {
                request_id: 7,
                text: "x 1\n".into(),
            }),
        ];
        for enc in frames {
            for cut in 0..enc.len() {
                assert!(
                    decode_message(enc.slice(0..cut)).is_err(),
                    "cut at {cut} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn telemetry_frames_are_correlated() {
        // Every new telemetry frame must expose its id to peek_request_id
        // so the reactor's Busy-on-overflow path and the client mux demux
        // can route it without decoding.
        let frames = [
            (
                encode_message(&Message::PushSpans {
                    request_id: 41,
                    source: ProcessSource::default(),
                    spans: vec![],
                }),
                41,
            ),
            (
                encode_message(&Message::PushMetricDeltas {
                    request_id: 42,
                    source: ProcessSource::default(),
                    deltas: vec![],
                }),
                42,
            ),
            (encode_message(&Message::PushAck { request_id: 43 }), 43),
            (
                encode_message(&Message::DumpMetricsRid {
                    request_id: 44,
                    what: String::new(),
                }),
                44,
            ),
            (
                encode_message(&Message::MetricsReplyRid {
                    request_id: 45,
                    text: String::new(),
                }),
                45,
            ),
        ];
        for (enc, rid) in frames {
            assert_eq!(peek_request_id(&enc), rid);
        }
        // The legacy pair stays uncorrelated.
        assert_eq!(peek_request_id(&encode_message(&Message::DumpMetrics)), 0);
    }

    #[test]
    fn i64_value_roundtrip() {
        let mut buf = BytesMut::new();
        put_value(&mut buf, &DietValue::ScalarI64(-1234567890123));
        let v = get_value(&mut buf.freeze()).unwrap();
        assert_eq!(v, DietValue::ScalarI64(-1234567890123));
    }

    fn sample_workflow() -> WorkflowSpec {
        let mut part1 = DagNodeSpec::new(0, sample_profile());
        part1.expander = Some("zoom_fanout".into());
        part1.params = vec![("max_zooms".into(), "4".into())];
        let mut part2 = DagNodeSpec::new(1, sample_profile());
        part2.deps = vec![0];
        part2.inputs = vec![DagInput {
            arg: 0,
            from_node: 0,
            from_arg: 7,
        }];
        part2.max_retries = 1;
        WorkflowSpec {
            name: "zoom".into(),
            nodes: vec![part1, part2],
        }
    }

    #[test]
    fn dag_frames_detect_truncation() {
        // Dag frames ride the same mux connections as everything else; cut
        // them at every byte boundary and none may decode or panic.
        let frames = [
            encode_message(&Message::SubmitDag {
                request_id: 5,
                ctx: TraceCtx {
                    trace_id: 2,
                    parent_span: 3,
                },
                spec: sample_workflow(),
            }),
            encode_message(&Message::DagReply {
                request_id: 6,
                result: Ok(9),
            }),
            encode_message(&Message::DagReply {
                request_id: 6,
                result: Err("no engine".into()),
            }),
            encode_message(&Message::DagStatus {
                request_id: 7,
                dag_id: 9,
                since: 3,
            }),
            encode_message(&Message::DagEvent {
                request_id: 7,
                dag_id: 9,
                events: vec![DagEventRec {
                    seq: 4,
                    node: 0,
                    state: DagNodeState::Done,
                    detail: "lyon/0".into(),
                    at_ms: 77,
                }],
                outcome: Some(DagOutcome {
                    dag_id: 9,
                    ok: false,
                    makespan_ms: 10,
                    cancelled: 1,
                    nodes: vec![DagNodeOutcome {
                        node: 0,
                        service: "s".into(),
                        sed: "x/0".into(),
                        status: -1,
                        attempts: 3,
                        speculated: false,
                        duration_ms: 5,
                        outputs: vec![(0, "s@d9.n0#0".into())],
                        scalars: vec![(1, -4)],
                    }],
                }),
            }),
        ];
        for enc in frames {
            for cut in 0..enc.len() {
                assert!(
                    decode_message(enc.slice(0..cut)).is_err(),
                    "cut at {cut} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn dag_frames_are_correlated() {
        // All four dag frames must expose their id to peek_request_id so
        // they demux off a shared client connection.
        let frames = [
            (
                encode_message(&Message::SubmitDag {
                    request_id: 51,
                    ctx: TraceCtx::default(),
                    spec: sample_workflow(),
                }),
                51,
            ),
            (
                encode_message(&Message::DagReply {
                    request_id: 52,
                    result: Ok(1),
                }),
                52,
            ),
            (
                encode_message(&Message::DagStatus {
                    request_id: 53,
                    dag_id: 1,
                    since: 0,
                }),
                53,
            ),
            (
                encode_message(&Message::DagEvent {
                    request_id: 54,
                    dag_id: 1,
                    events: vec![],
                    outcome: None,
                }),
                54,
            ),
        ];
        for (enc, rid) in frames {
            assert_eq!(peek_request_id(&enc), rid);
        }
    }

    #[test]
    fn bad_dag_state_byte_rejected() {
        let mut enc = BytesMut::new();
        enc.put_u8(MSG_DAG_EVENT);
        enc.put_u64_le(1); // request id
        enc.put_u64_le(1); // dag id
        enc.put_u32_le(1); // one event
        enc.put_u64_le(1); // seq
        enc.put_u32_le(0); // node
        enc.put_u8(200); // invalid state byte
        assert!(decode_message(enc.freeze()).is_err());
    }
}
