//! Failure injection for fault-tolerance tests and experiments.
//!
//! A [`FaultPlan`] is a small bundle of atomics attached to a SeD worker
//! ([`crate::sed::SedHandle`]) or a TCP serving loop. Each incoming request
//! asks the plan what to do via [`FaultPlan::on_request`]; with no faults
//! armed every request proceeds normally, so the hooks cost three relaxed
//! atomic loads on the hot path and nothing else.
//!
//! The supported faults mirror the ways a real SeD dies in the paper's
//! Grid'5000 runs: the process crashes outright (kill), the result is
//! computed but never delivered (drop-reply), or the node wedges and stops
//! answering within any useful deadline (stall).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the worker should do with the request it just received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Solve and reply normally.
    Proceed,
    /// Solve, then silently discard the reply.
    DropReply,
    /// Die now: abandon the request and stop serving.
    Kill,
}

/// Per-SeD failure injection switches. All methods are callable from any
/// thread while the worker runs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Kill the worker when it receives its N-th request (1-based).
    /// 0 disables the fault.
    kill_at: AtomicU64,
    /// Drop every reply instead of delivering it.
    drop_replies: AtomicBool,
    /// Sleep this many microseconds before handling each request.
    stall_us: AtomicU64,
    /// Requests seen so far.
    seen: AtomicU64,
    /// Reject every request with `Busy` as if the admission queue were
    /// full (consulted by the serving loop, not by `on_request`, so it
    /// does not perturb the `seen` count used by `kill_at`).
    force_busy: AtomicBool,
    /// Sleep this many microseconds before accepting each connection
    /// (a slow-accept fault: the listener itself is the bottleneck).
    accept_delay_us: AtomicU64,
}

impl FaultPlan {
    pub fn new() -> Arc<Self> {
        Arc::new(FaultPlan::default())
    }

    /// Arm a crash on the `n`-th request received from now on (1-based
    /// against the total seen count); `0` disarms.
    pub fn kill_at_request(&self, n: u64) {
        self.kill_at.store(n, Ordering::Relaxed);
    }

    /// Make the worker compute results but never deliver them.
    pub fn set_drop_replies(&self, on: bool) {
        self.drop_replies.store(on, Ordering::Relaxed);
    }

    /// Delay every request by `d` before it is handled (a wedged node).
    pub fn set_stall(&self, d: Duration) {
        self.stall_us.store(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Requests this plan has been consulted about.
    pub fn requests_seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Make the serving loop reject every request with `Busy` (overload
    /// simulation without actually filling the queue).
    pub fn set_force_busy(&self, on: bool) {
        self.force_busy.store(on, Ordering::Relaxed);
    }

    /// Whether requests should currently be rejected with `Busy`.
    pub fn force_busy(&self) -> bool {
        self.force_busy.load(Ordering::Relaxed)
    }

    /// Delay the accept loop by `d` before each accepted connection.
    pub fn set_accept_delay(&self, d: Duration) {
        self.accept_delay_us
            .store(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// The armed accept delay, if any. The acceptor sleeps this long
    /// before handing each new connection to the worker pool.
    pub fn accept_delay(&self) -> Option<Duration> {
        match self.accept_delay_us.load(Ordering::Relaxed) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }

    /// Count the request, apply any armed stall, and say how to treat it.
    pub fn on_request(&self) -> FaultAction {
        let seen = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        let kill_at = self.kill_at.load(Ordering::Relaxed);
        if kill_at != 0 && seen >= kill_at {
            return FaultAction::Kill;
        }
        let stall = self.stall_us.load(Ordering::Relaxed);
        if stall > 0 {
            std::thread::sleep(Duration::from_micros(stall));
        }
        if self.drop_replies.load(Ordering::Relaxed) {
            FaultAction::DropReply
        } else {
            FaultAction::Proceed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_always_proceeds() {
        let p = FaultPlan::new();
        for _ in 0..10 {
            assert_eq!(p.on_request(), FaultAction::Proceed);
        }
        assert_eq!(p.requests_seen(), 10);
    }

    #[test]
    fn kill_fires_on_nth_request_and_after() {
        let p = FaultPlan::new();
        p.kill_at_request(3);
        assert_eq!(p.on_request(), FaultAction::Proceed);
        assert_eq!(p.on_request(), FaultAction::Proceed);
        assert_eq!(p.on_request(), FaultAction::Kill);
        // A worker that somehow survives keeps being told to die.
        assert_eq!(p.on_request(), FaultAction::Kill);
    }

    #[test]
    fn drop_replies_toggles() {
        let p = FaultPlan::new();
        p.set_drop_replies(true);
        assert_eq!(p.on_request(), FaultAction::DropReply);
        p.set_drop_replies(false);
        assert_eq!(p.on_request(), FaultAction::Proceed);
    }

    #[test]
    fn busy_and_accept_delay_do_not_touch_seen() {
        let p = FaultPlan::new();
        assert!(!p.force_busy());
        assert!(p.accept_delay().is_none());
        p.set_force_busy(true);
        p.set_accept_delay(Duration::from_millis(5));
        assert!(p.force_busy());
        assert_eq!(p.accept_delay(), Some(Duration::from_millis(5)));
        // Consulting the new switches must not advance the request count
        // that kill_at is armed against.
        assert_eq!(p.requests_seen(), 0);
    }

    #[test]
    fn stall_delays_request() {
        let p = FaultPlan::new();
        p.set_stall(Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        assert_eq!(p.on_request(), FaultAction::Proceed);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }
}
