//! DAGDA-style hierarchy-wide data management.
//!
//! The per-SeD [`DataManager`](crate::datamgr::DataManager) only knows what
//! *it* holds. This module adds the grid-wide view DIET's DAGDA provides:
//!
//! * a **replica catalog** registered at the MA — data id → the set of SeDs
//!   holding a replica, with size, checksum and last-access stamps. SeDs
//!   publish on retain, unpublish on eviction/free, and the MA drops every
//!   entry for a SeD the heartbeat monitor deregisters;
//! * a **resolver** abstraction — how an executing SeD pulls a missing
//!   `Persistent` input from the owning SeD (over TCP in production, via a
//!   shared handle in-process for tests);
//! * **locality accounting** — given a request's data-ref ids, how many
//!   bytes are already resident on a candidate SeD vs. how many it would
//!   have to pull. The `DataLocal` scheduler and the MA's `Estimate`
//!   construction feed on this.

use crate::data::DietValue;
use crate::error::DietError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One replica's catalog record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaInfo {
    /// SeD label holding the replica.
    pub sed: String,
    /// Payload bytes of the stored value.
    pub size: u64,
    /// FNV-1a over the codec encoding — lets a puller detect divergent
    /// replicas published under one id.
    pub checksum: u64,
    /// Logical catalog clock stamp of the last publish/touch.
    pub last_access: u64,
}

/// FNV-1a checksum of a value's canonical (codec) encoding.
pub fn checksum(value: &DietValue) -> u64 {
    let enc = crate::codec::encode_value(value);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in enc.iter() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The hierarchy-wide replica catalog (lives at the MA; shared by Arc with
/// every SeD that participates).
#[derive(Debug, Default)]
pub struct ReplicaCatalog {
    /// id → replicas, keyed by SeD label.
    entries: RwLock<HashMap<String, Vec<ReplicaInfo>>>,
    clock: AtomicU64,
    dropped_for_death: AtomicU64,
}

impl ReplicaCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `sed` now holds `id`. Replaces any previous record for
    /// the same (id, sed) pair.
    pub fn publish(&self, id: &str, sed: &str, size: u64, checksum: u64) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut w = self.entries.write();
        let reps = w.entry(id.to_string()).or_default();
        reps.retain(|r| r.sed != sed);
        reps.push(ReplicaInfo {
            sed: sed.to_string(),
            size,
            checksum,
            last_access: stamp,
        });
    }

    /// Record that `sed` no longer holds `id` (eviction, free, migration).
    pub fn unpublish(&self, id: &str, sed: &str) {
        let mut w = self.entries.write();
        if let Some(reps) = w.get_mut(id) {
            reps.retain(|r| r.sed != sed);
            if reps.is_empty() {
                w.remove(id);
            }
        }
    }

    /// Drop every replica a dead SeD held (heartbeat deregistration path).
    /// Returns how many records were removed.
    pub fn drop_sed(&self, sed: &str) -> usize {
        let mut dropped = 0;
        let mut w = self.entries.write();
        w.retain(|_, reps| {
            let before = reps.len();
            reps.retain(|r| r.sed != sed);
            dropped += before - reps.len();
            !reps.is_empty()
        });
        self.dropped_for_death
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// The best replica to pull from: most recently touched, ties broken by
    /// label for determinism.
    pub fn locate(&self, id: &str) -> Option<ReplicaInfo> {
        let r = self.entries.read();
        r.get(id)?
            .iter()
            .max_by(|a, b| {
                a.last_access
                    .cmp(&b.last_access)
                    .then_with(|| b.sed.cmp(&a.sed))
            })
            .cloned()
    }

    /// All replicas of `id`, sorted by SeD label.
    pub fn replicas(&self, id: &str) -> Vec<ReplicaInfo> {
        let mut v = self.entries.read().get(id).cloned().unwrap_or_default();
        v.sort_by(|a, b| a.sed.cmp(&b.sed));
        v
    }

    /// SeD labels holding `id`, sorted.
    pub fn holders(&self, id: &str) -> Vec<String> {
        self.replicas(id).into_iter().map(|r| r.sed).collect()
    }

    /// Payload size of `id` if any replica is catalogued.
    pub fn size_of(&self, id: &str) -> Option<u64> {
        self.entries.read().get(id)?.first().map(|r| r.size)
    }

    /// Locality split for a candidate SeD: of the given data ids, how many
    /// bytes are already on `sed` (`local`) vs. resident elsewhere on the
    /// grid (`miss` — the transfer the SeD would have to do). Ids unknown to
    /// the catalog count as neither: the client ships those inline whoever
    /// wins, so they do not differentiate candidates.
    pub fn locality(&self, sed: &str, ids: &[String]) -> (u64, u64) {
        let r = self.entries.read();
        let (mut local, mut miss) = (0u64, 0u64);
        for id in ids {
            if let Some(reps) = r.get(id) {
                if let Some(rep) = reps.iter().find(|rep| rep.sed == sed) {
                    local += rep.size;
                } else if let Some(rep) = reps.first() {
                    miss += rep.size;
                }
            }
        }
        (local, miss)
    }

    /// Number of distinct data ids catalogued.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Records dropped because their SeD died.
    pub fn dropped_for_death(&self) -> u64 {
        self.dropped_for_death.load(Ordering::Relaxed)
    }

    /// Sorted ids currently catalogued (diagnostics).
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.read().keys().cloned().collect();
        v.sort();
        v
    }
}

/// How an executing SeD fetches a data id it does not hold. Production uses
/// the TCP pool (SeD-to-SeD pull); tests can resolve through shared
/// in-process handles.
pub trait DataResolver: Send + Sync {
    /// Fetch `id` from the SeD labelled `sed`, returning the value and its
    /// persistence mode.
    fn fetch(
        &self,
        sed: &str,
        id: &str,
    ) -> Result<(DietValue, crate::data::Persistence), DietError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DietValue;

    #[test]
    fn publish_locate_unpublish() {
        let cat = ReplicaCatalog::new();
        assert!(cat.is_empty());
        cat.publish("ic", "sedA", 100, 7);
        cat.publish("ic", "sedB", 100, 7);
        // sedB published later → preferred source.
        assert_eq!(cat.locate("ic").unwrap().sed, "sedB");
        assert_eq!(cat.holders("ic"), vec!["sedA", "sedB"]);
        cat.unpublish("ic", "sedB");
        assert_eq!(cat.locate("ic").unwrap().sed, "sedA");
        cat.unpublish("ic", "sedA");
        assert!(cat.locate("ic").is_none());
        assert!(cat.is_empty(), "empty id sets are pruned");
    }

    #[test]
    fn republish_replaces_not_duplicates() {
        let cat = ReplicaCatalog::new();
        cat.publish("x", "sedA", 10, 1);
        cat.publish("x", "sedA", 20, 2);
        let reps = cat.replicas("x");
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].size, 20);
        assert_eq!(cat.size_of("x"), Some(20));
    }

    #[test]
    fn drop_sed_clears_every_record() {
        let cat = ReplicaCatalog::new();
        cat.publish("a", "dead", 1, 0);
        cat.publish("b", "dead", 2, 0);
        cat.publish("b", "alive", 2, 0);
        assert_eq!(cat.drop_sed("dead"), 2);
        assert_eq!(cat.dropped_for_death(), 2);
        assert!(cat.locate("a").is_none());
        assert_eq!(cat.holders("b"), vec!["alive"]);
    }

    #[test]
    fn locality_splits_local_and_miss_bytes() {
        let cat = ReplicaCatalog::new();
        cat.publish("big", "sedA", 1000, 0);
        cat.publish("small", "sedB", 10, 0);
        let ids = vec!["big".to_string(), "small".to_string(), "ghost".to_string()];
        assert_eq!(cat.locality("sedA", &ids), (1000, 10));
        assert_eq!(cat.locality("sedB", &ids), (10, 1000));
        // A SeD holding nothing: everything catalogued is a miss; the
        // unknown id counts for no one.
        assert_eq!(cat.locality("sedC", &ids), (0, 1010));
    }

    #[test]
    fn checksum_distinguishes_values_and_is_stable() {
        let a = DietValue::vec_f64(vec![1.0, 2.0]);
        let b = DietValue::vec_f64(vec![1.0, 2.5]);
        assert_eq!(checksum(&a), checksum(&a.clone()));
        assert_ne!(checksum(&a), checksum(&b));
        assert_ne!(
            checksum(&DietValue::Str("x".into())),
            checksum(&DietValue::ScalarChar(b'x'))
        );
    }
}
