//! Transport abstraction.
//!
//! DIET used CORBA; GridSolve and Ninf used raw sockets (with the
//! portability and descriptor-exhaustion problems the paper points out).
//! Here a small [`Duplex`] trait covers both of this crate's transports:
//!
//! * [`InProcTransport`] — crossbeam channels; zero-copy, deterministic,
//!   used by tests and the campaign simulator.
//! * [`TcpTransport`] — `std::net::TcpStream` with `[u32 length][payload]`
//!   frames; one OS thread per connection on the server side.

use crate::codec::{decode_message, encode_message, Message};
use crate::error::DietError;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A bidirectional message channel.
pub trait Duplex: Send {
    fn send(&self, m: &Message) -> Result<(), DietError>;
    fn recv(&self) -> Result<Message, DietError>;
    /// Receive with a timeout; `Ok(None)` on expiry.
    fn recv_timeout(&self, d: Duration) -> Result<Option<Message>, DietError>;
}

// ---------------------------------------------------------------- in-process

/// One end of an in-process duplex pair.
pub struct InProcTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

/// Create a connected pair of in-process endpoints. Messages still pass
/// through the codec so the wire format is exercised identically to TCP.
pub fn inproc_pair() -> (InProcTransport, InProcTransport) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (
        InProcTransport { tx: atx, rx: brx },
        InProcTransport { tx: btx, rx: arx },
    )
}

/// Create a bounded pair (used to test back-pressure handling).
pub fn inproc_pair_bounded(cap: usize) -> (InProcTransport, InProcTransport) {
    let (atx, arx) = bounded(cap);
    let (btx, brx) = bounded(cap);
    (
        InProcTransport { tx: atx, rx: brx },
        InProcTransport { tx: btx, rx: arx },
    )
}

impl Duplex for InProcTransport {
    fn send(&self, m: &Message) -> Result<(), DietError> {
        self.tx
            .send(encode_message(m))
            .map_err(|_| DietError::Transport("peer disconnected".into()))
    }

    fn recv(&self) -> Result<Message, DietError> {
        let raw = self
            .rx
            .recv()
            .map_err(|_| DietError::Transport("peer disconnected".into()))?;
        decode_message(raw)
    }

    fn recv_timeout(&self, d: Duration) -> Result<Option<Message>, DietError> {
        match self.rx.recv_timeout(d) {
            Ok(raw) => Ok(Some(decode_message(raw)?)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(DietError::Transport("peer disconnected".into()))
            }
        }
    }
}

// ----------------------------------------------------------------------- tcp

/// A framed TCP endpoint.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, DietError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| DietError::Transport(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(TcpTransport { stream })
    }

    pub fn from_stream(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        TcpTransport { stream }
    }

    fn write_frame(&self, payload: &[u8]) -> Result<(), DietError> {
        let mut s = &self.stream;
        s.write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|_| s.write_all(payload))
            .map_err(|e| DietError::Transport(format!("write: {e}")))
    }

    fn read_frame(&self) -> Result<Bytes, std::io::Error> {
        let mut s = &self.stream;
        let mut len = [0u8; 4];
        s.read_exact(&mut len)?;
        let n = u32::from_le_bytes(len) as usize;
        // Guard against absurd frames (a corrupted peer shouldn't OOM us).
        if n > 1 << 30 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("oversized frame: {n}"),
            ));
        }
        let mut body = vec![0u8; n];
        s.read_exact(&mut body)?;
        Ok(Bytes::from(body))
    }
}

impl Duplex for TcpTransport {
    fn send(&self, m: &Message) -> Result<(), DietError> {
        self.write_frame(&encode_message(m))
    }

    fn recv(&self) -> Result<Message, DietError> {
        let raw = self
            .read_frame()
            .map_err(|e| DietError::Transport(format!("read: {e}")))?;
        decode_message(raw)
    }

    fn recv_timeout(&self, d: Duration) -> Result<Option<Message>, DietError> {
        self.stream
            .set_read_timeout(Some(d))
            .map_err(|e| DietError::Transport(format!("set timeout: {e}")))?;
        let res = match self.read_frame() {
            Ok(raw) => decode_message(raw).map(Some),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(DietError::Transport(format!("read: {e}"))),
        };
        self.stream.set_read_timeout(None).ok();
        res
    }
}

/// A minimal TCP acceptor: spawns `handler` on its own thread per connection.
/// Returns the bound local address (useful with port 0) and a guard whose
/// drop stops accepting.
pub struct TcpServer {
    pub local_addr: std::net::SocketAddr,
    stop: Sender<()>,
}

impl TcpServer {
    pub fn spawn(
        addr: impl ToSocketAddrs,
        handler: impl Fn(TcpTransport) + Send + Sync + 'static,
    ) -> Result<Self, DietError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DietError::Transport(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DietError::Transport(format!("local_addr: {e}")))?;
        listener.set_nonblocking(true).ok();
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let handler = std::sync::Arc::new(handler);
        std::thread::spawn(move || loop {
            if stop_rx.try_recv().is_ok() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).ok();
                    let h = handler.clone();
                    std::thread::spawn(move || h(TcpTransport::from_stream(stream)));
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        });
        Ok(TcpServer {
            local_addr,
            stop: stop_tx,
        })
    }

    pub fn stop(&self) {
        self.stop.try_send(()).ok();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_roundtrip() {
        let (a, b) = inproc_pair();
        a.send(&Message::Ping).unwrap();
        assert_eq!(b.recv().unwrap(), Message::Ping);
        b.send(&Message::Pong).unwrap();
        assert_eq!(a.recv().unwrap(), Message::Pong);
    }

    #[test]
    fn inproc_timeout_expires() {
        let (a, _b) = inproc_pair();
        let r = a.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn inproc_disconnect_detected() {
        let (a, b) = inproc_pair();
        drop(b);
        assert!(a.send(&Message::Ping).is_err());
        assert!(a.recv().is_err());
    }

    #[test]
    fn tcp_roundtrip_and_echo() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            while let Ok(m) = conn.recv() {
                match m {
                    Message::Ping => conn.send(&Message::Pong).unwrap(),
                    Message::Shutdown => break,
                    other => conn.send(&other).unwrap(),
                }
            }
        })
        .unwrap();

        let client = TcpTransport::connect(server.local_addr).unwrap();
        client.send(&Message::Ping).unwrap();
        assert_eq!(client.recv().unwrap(), Message::Pong);

        let m = Message::Submit {
            service: "ramsesZoom1".into(),
            request_id: 9,
        };
        client.send(&m).unwrap();
        assert_eq!(client.recv().unwrap(), m);
        client.send(&Message::Shutdown).unwrap();
    }

    #[test]
    fn tcp_timeout_returns_none() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            // Never answer; just hold the connection open long enough.
            let _ = conn.recv_timeout(Duration::from_millis(300));
        })
        .unwrap();
        let client = TcpTransport::connect(server.local_addr).unwrap();
        let r = client.recv_timeout(Duration::from_millis(30)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn tcp_large_file_payload() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            if let Ok(m) = conn.recv() {
                conn.send(&m).unwrap();
            }
        })
        .unwrap();
        let client = TcpTransport::connect(server.local_addr).unwrap();
        let desc = crate::profile::ramses_zoom1_desc();
        let mut p = crate::profile::Profile::alloc(&desc);
        p.set(
            0,
            crate::data::DietValue::File {
                name: "big.bin".into(),
                data: Bytes::from(vec![0xAB; 3 << 20]),
            },
            Default::default(),
        )
        .unwrap();
        p.set(
            1,
            crate::data::DietValue::ScalarI32(128),
            Default::default(),
        )
        .unwrap();
        let m = Message::Call {
            request_id: 1,
            profile: p.clone(),
        };
        client.send(&m).unwrap();
        match client.recv().unwrap() {
            Message::Call { profile, .. } => assert_eq!(profile, p),
            other => panic!("unexpected {other:?}"),
        }
    }
}
