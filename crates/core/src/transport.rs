//! Transport abstraction.
//!
//! DIET used CORBA; GridSolve and Ninf used raw sockets (with the
//! portability and descriptor-exhaustion problems the paper points out).
//! Here a small [`Duplex`] trait covers both of this crate's transports:
//!
//! * [`InProcTransport`] — crossbeam channels; zero-copy, deterministic,
//!   used by tests and the campaign simulator.
//! * [`TcpTransport`] — `std::net::TcpStream` with `[u32 length][payload]`
//!   frames; one OS thread per connection on the server side.

use crate::codec::{decode_message, encode_message, Message};
use crate::error::DietError;
use crate::profile::Profile;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A bidirectional message channel.
pub trait Duplex: Send {
    fn send(&self, m: &Message) -> Result<(), DietError>;
    fn recv(&self) -> Result<Message, DietError>;
    /// Receive with a timeout; `Ok(None)` on expiry.
    fn recv_timeout(&self, d: Duration) -> Result<Option<Message>, DietError>;
}

// ---------------------------------------------------------------- in-process

/// One end of an in-process duplex pair.
pub struct InProcTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

/// Create a connected pair of in-process endpoints. Messages still pass
/// through the codec so the wire format is exercised identically to TCP.
pub fn inproc_pair() -> (InProcTransport, InProcTransport) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (
        InProcTransport { tx: atx, rx: brx },
        InProcTransport { tx: btx, rx: arx },
    )
}

/// Create a bounded pair (used to test back-pressure handling).
pub fn inproc_pair_bounded(cap: usize) -> (InProcTransport, InProcTransport) {
    let (atx, arx) = bounded(cap);
    let (btx, brx) = bounded(cap);
    (
        InProcTransport { tx: atx, rx: brx },
        InProcTransport { tx: btx, rx: arx },
    )
}

impl Duplex for InProcTransport {
    fn send(&self, m: &Message) -> Result<(), DietError> {
        self.tx
            .send(encode_message(m))
            .map_err(|_| DietError::Transport("peer disconnected".into()))
    }

    fn recv(&self) -> Result<Message, DietError> {
        let raw = self
            .rx
            .recv()
            .map_err(|_| DietError::Transport("peer disconnected".into()))?;
        decode_message(raw)
    }

    fn recv_timeout(&self, d: Duration) -> Result<Option<Message>, DietError> {
        match self.rx.recv_timeout(d) {
            Ok(raw) => Ok(Some(decode_message(raw)?)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(DietError::Transport("peer disconnected".into()))
            }
        }
    }
}

// ----------------------------------------------------------------------- tcp

/// Frames larger than this are rejected unless the limit is raised with
/// [`TcpTransport::with_max_frame`]. Generous enough for the campaign's
/// multi-megabyte initial-conditions files.
pub const DEFAULT_MAX_FRAME: usize = 256 << 20;

/// How much we ask the socket for per `read` call. Bounds the transient
/// allocation growth to what has actually arrived, one chunk at a time.
const READ_CHUNK: usize = 64 << 10;

/// A framed TCP endpoint.
///
/// Incoming bytes accumulate in an internal buffer that survives across
/// calls: a `recv_timeout` that expires in the middle of a frame keeps the
/// partial frame buffered and the next receive resumes exactly where the
/// stream left off. (The earlier implementation used `read_exact` straight
/// off the socket, so a mid-frame timeout silently discarded the consumed
/// prefix and desynchronised every later frame.)
pub struct TcpTransport {
    stream: TcpStream,
    /// Bytes read off the socket but not yet returned as a frame.
    rbuf: Mutex<Vec<u8>>,
    max_frame: usize,
}

impl TcpTransport {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, DietError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| DietError::Transport(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(Self::from_stream(stream))
    }

    pub fn from_stream(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        TcpTransport {
            stream,
            rbuf: Mutex::new(Vec::new()),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Override the frame-size limit (both directions of a connection
    /// should agree on it).
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }

    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Sever the socket in both directions. `shutdown` acts on the socket
    /// itself, not this handle, so clones of the stream (e.g. a server's
    /// kill list) can't keep it half-open: the peer observes EOF
    /// immediately instead of waiting out its read deadline.
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn write_frame(&self, payload: &[u8]) -> Result<(), DietError> {
        let mut s = &self.stream;
        s.write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|_| s.write_all(payload))
            .map_err(|e| DietError::Transport(format!("write: {e}")))
    }

    /// Read one `[u32 length][payload]` frame.
    ///
    /// The length prefix is validated against `max_frame` *before* any body
    /// allocation, so a hostile or corrupted peer advertising a huge frame
    /// is rejected immediately instead of triggering an eager
    /// gigabyte-sized `vec![0; n]`. The body is then accumulated in
    /// [`READ_CHUNK`]-sized reads — memory growth tracks bytes actually
    /// received.
    fn read_frame(&self) -> Result<Bytes, std::io::Error> {
        let mut buf = self.rbuf.lock();
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            if buf.len() >= 4 {
                let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
                if n > self.max_frame {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("oversized frame: {n} > max {}", self.max_frame),
                    ));
                }
                if buf.len() >= 4 + n {
                    let frame = buf[4..4 + n].to_vec();
                    buf.drain(..4 + n);
                    return Ok(Bytes::from(frame));
                }
            }
            let got = (&self.stream).read(&mut scratch)?;
            if got == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            buf.extend_from_slice(&scratch[..got]);
        }
    }
}

impl Duplex for TcpTransport {
    fn send(&self, m: &Message) -> Result<(), DietError> {
        self.write_frame(&encode_message(m))
    }

    fn recv(&self) -> Result<Message, DietError> {
        let raw = self
            .read_frame()
            .map_err(|e| DietError::Transport(format!("read: {e}")))?;
        decode_message(raw)
    }

    fn recv_timeout(&self, d: Duration) -> Result<Option<Message>, DietError> {
        self.stream
            .set_read_timeout(Some(d))
            .map_err(|e| DietError::Transport(format!("set timeout: {e}")))?;
        let res = match self.read_frame() {
            Ok(raw) => decode_message(raw).map(Some),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(DietError::Transport(format!("read: {e}"))),
        };
        self.stream.set_read_timeout(None).ok();
        res
    }
}

/// A minimal TCP acceptor: spawns `handler` on its own thread per connection.
/// Returns the bound local address (useful with port 0) and a guard whose
/// drop stops accepting. [`TcpServer::kill`] additionally severs every live
/// connection — the failure-injection hook that simulates a host crash for
/// fault-tolerance tests.
pub struct TcpServer {
    pub local_addr: std::net::SocketAddr,
    stop: Sender<()>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl TcpServer {
    pub fn spawn(
        addr: impl ToSocketAddrs,
        handler: impl Fn(TcpTransport) + Send + Sync + 'static,
    ) -> Result<Self, DietError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DietError::Transport(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DietError::Transport(format!("local_addr: {e}")))?;
        listener.set_nonblocking(true).ok();
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let handler = std::sync::Arc::new(handler);
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_conns = conns.clone();
        std::thread::spawn(move || loop {
            if stop_rx.try_recv().is_ok() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).ok();
                    if let Ok(clone) = stream.try_clone() {
                        accept_conns.lock().push(clone);
                    }
                    let h = handler.clone();
                    std::thread::spawn(move || {
                        let sock = stream.try_clone().ok();
                        h(TcpTransport::from_stream(stream));
                        // The kill list above holds a clone of this stream,
                        // so dropping the transport alone would leave the
                        // socket open and the peer blocked on a read that
                        // can never complete — sever it explicitly.
                        if let Some(s) = sock {
                            let _ = s.shutdown(std::net::Shutdown::Both);
                        }
                    });
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        });
        Ok(TcpServer {
            local_addr,
            stop: stop_tx,
            conns,
        })
    }

    pub fn stop(&self) {
        self.stop.try_send(()).ok();
    }

    /// Simulate a crash: stop accepting and sever every live connection.
    /// In-flight requests on this server are lost, exactly as when the
    /// paper's Grid'5000 nodes died mid-campaign.
    pub fn kill(&self) {
        self.stop();
        for s in self.conns.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

// ------------------------------------------------------------------ sed pool

/// Client-side registry of SeD endpoints with pooled connections.
///
/// `call` sends a [`Message::Call`] and waits for the matching
/// [`Message::CallReply`]. On any failure — connect error, send error,
/// deadline expiry, stream error — the pooled connection is discarded, so
/// a later attempt starts from a clean stream and can never pair a new
/// request with a stale reply.
#[derive(Default)]
pub struct TcpSedPool {
    endpoints: RwLock<HashMap<String, SocketAddr>>,
    conns: Mutex<HashMap<String, TcpTransport>>,
    next_id: AtomicU64,
}

impl TcpSedPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-register) the address serving a SeD label.
    pub fn register(&self, label: &str, addr: SocketAddr) {
        self.endpoints.write().insert(label.to_string(), addr);
    }

    pub fn endpoint(&self, label: &str) -> Option<SocketAddr> {
        self.endpoints.read().get(label).copied()
    }

    /// One remote call attempt against `label`, bounded by `deadline`.
    pub fn call(
        &self,
        label: &str,
        profile: Profile,
        deadline: Duration,
    ) -> Result<Profile, DietError> {
        self.call_traced(label, profile, deadline, obs::TraceCtx::default())
            .map(|(p, _, _)| p)
    }

    /// Like [`call`](Self::call), but carries a trace context inside the
    /// request frame (so server-side spans join the caller's trace) and
    /// returns the server-measured `(profile, queue_wait, solve)` timings
    /// from the reply.
    pub fn call_traced(
        &self,
        label: &str,
        profile: Profile,
        deadline: Duration,
        ctx: obs::TraceCtx,
    ) -> Result<(Profile, f64, f64), DietError> {
        let addr = self.endpoint(label).ok_or_else(|| {
            DietError::Transport(format!("no endpoint registered for {label}"))
        })?;
        let conn = match self.conns.lock().remove(label) {
            Some(c) => c,
            None => TcpTransport::connect(addr)?,
        };
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let started = Instant::now();
        conn.send(&Message::Call {
            request_id,
            ctx,
            profile,
        })?;
        loop {
            let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
                // Deadline passed; the connection may still deliver the
                // reply later — drop it so the stale reply dies with it.
                return Err(DietError::Timeout {
                    after_secs: deadline.as_secs_f64(),
                });
            };
            match conn.recv_timeout(remaining)? {
                Some(Message::CallReply {
                    request_id: rid,
                    queue_wait,
                    solve,
                    result,
                }) if rid == request_id => {
                    self.conns.lock().insert(label.to_string(), conn);
                    return result
                        .map(|p| (p, queue_wait, solve))
                        .map_err(DietError::Rejected);
                }
                // A reply for an older, abandoned request on this stream
                // (can't happen after eviction-on-failure, but harmless).
                Some(_) => continue,
                None => {
                    return Err(DietError::Timeout {
                        after_secs: deadline.as_secs_f64(),
                    });
                }
            }
        }
    }

    /// Fetch a Prometheus-format metrics dump from the server behind
    /// `label` (the `dump-metrics` request).
    pub fn dump_metrics(&self, label: &str, deadline: Duration) -> Result<String, DietError> {
        let addr = self.endpoint(label).ok_or_else(|| {
            DietError::Transport(format!("no endpoint registered for {label}"))
        })?;
        let conn = match self.conns.lock().remove(label) {
            Some(c) => c,
            None => TcpTransport::connect(addr)?,
        };
        conn.send(&Message::DumpMetrics)?;
        match conn.recv_timeout(deadline)? {
            Some(Message::MetricsReply { text }) => {
                self.conns.lock().insert(label.to_string(), conn);
                Ok(text)
            }
            Some(other) => Err(DietError::Transport(format!(
                "unexpected reply to dump-metrics: {other:?}"
            ))),
            None => Err(DietError::Timeout {
                after_secs: deadline.as_secs_f64(),
            }),
        }
    }

    /// Pull the grid data item `id` from the SeD behind `label` — the wire
    /// leg of DAGDA's SeD-to-SeD transfer. Same pooled-connection contract
    /// as [`call`](Self::call): any failure discards the connection.
    pub fn get_data(
        &self,
        label: &str,
        id: &str,
        deadline: Duration,
    ) -> Result<(crate::data::DietValue, crate::data::Persistence), DietError> {
        let addr = self.endpoint(label).ok_or_else(|| {
            DietError::Transport(format!("no endpoint registered for {label}"))
        })?;
        let conn = match self.conns.lock().remove(label) {
            Some(c) => c,
            None => TcpTransport::connect(addr)?,
        };
        conn.send(&Message::GetData { id: id.to_string() })?;
        match conn.recv_timeout(deadline)? {
            Some(Message::DataReply { id: rid, result }) if rid == id => {
                self.conns.lock().insert(label.to_string(), conn);
                result.map_err(DietError::DataNotFound)
            }
            Some(other) => Err(DietError::Transport(format!(
                "unexpected reply to get-data: {other:?}"
            ))),
            None => Err(DietError::Timeout {
                after_secs: deadline.as_secs_f64(),
            }),
        }
    }

    /// Store `value` under `id` on the SeD behind `label` — the client-side
    /// leg of `store_data`. The server acks with an empty [`Message::DataReply`];
    /// a `Volatile` mode is rejected there (nothing to persist).
    pub fn put_data(
        &self,
        label: &str,
        id: &str,
        value: crate::data::DietValue,
        mode: crate::data::Persistence,
        deadline: Duration,
    ) -> Result<(), DietError> {
        let addr = self.endpoint(label).ok_or_else(|| {
            DietError::Transport(format!("no endpoint registered for {label}"))
        })?;
        let conn = match self.conns.lock().remove(label) {
            Some(c) => c,
            None => TcpTransport::connect(addr)?,
        };
        conn.send(&Message::PutData {
            id: id.to_string(),
            mode,
            value,
        })?;
        match conn.recv_timeout(deadline)? {
            Some(Message::DataReply { id: rid, result }) if rid == id => {
                self.conns.lock().insert(label.to_string(), conn);
                result.map(|_| ()).map_err(DietError::Rejected)
            }
            Some(other) => Err(DietError::Transport(format!(
                "unexpected reply to put-data: {other:?}"
            ))),
            None => Err(DietError::Timeout {
                after_secs: deadline.as_secs_f64(),
            }),
        }
    }
}

/// The pool doubles as the [`DataResolver`](crate::dagda::DataResolver) a
/// TCP-served SeD uses for SeD-to-SeD pulls: `fetch` is `get_data` with a
/// fixed transfer deadline.
impl crate::dagda::DataResolver for TcpSedPool {
    fn fetch(
        &self,
        sed: &str,
        id: &str,
    ) -> Result<(crate::data::DietValue, crate::data::Persistence), DietError> {
        self.get_data(sed, id, Duration::from_secs(30))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_roundtrip() {
        let (a, b) = inproc_pair();
        a.send(&Message::Ping).unwrap();
        assert_eq!(b.recv().unwrap(), Message::Ping);
        b.send(&Message::Pong).unwrap();
        assert_eq!(a.recv().unwrap(), Message::Pong);
    }

    #[test]
    fn inproc_timeout_expires() {
        let (a, _b) = inproc_pair();
        let r = a.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn inproc_disconnect_detected() {
        let (a, b) = inproc_pair();
        drop(b);
        assert!(a.send(&Message::Ping).is_err());
        assert!(a.recv().is_err());
    }

    #[test]
    fn tcp_roundtrip_and_echo() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            while let Ok(m) = conn.recv() {
                match m {
                    Message::Ping => conn.send(&Message::Pong).unwrap(),
                    Message::Shutdown => break,
                    other => conn.send(&other).unwrap(),
                }
            }
        })
        .unwrap();

        let client = TcpTransport::connect(server.local_addr).unwrap();
        client.send(&Message::Ping).unwrap();
        assert_eq!(client.recv().unwrap(), Message::Pong);

        let m = Message::Submit {
            service: "ramsesZoom1".into(),
            request_id: 9,
        };
        client.send(&m).unwrap();
        assert_eq!(client.recv().unwrap(), m);
        client.send(&Message::Shutdown).unwrap();
    }

    #[test]
    fn tcp_timeout_returns_none() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            // Never answer; just hold the connection open long enough.
            let _ = conn.recv_timeout(Duration::from_millis(300));
        })
        .unwrap();
        let client = TcpTransport::connect(server.local_addr).unwrap();
        let r = client.recv_timeout(Duration::from_millis(30)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn tcp_mid_frame_timeout_keeps_stream_in_sync() {
        // Regression: a slow writer delivers the length prefix and part of
        // the body, the reader's timeout expires mid-frame, and the next
        // receive must still decode the frame — the old implementation
        // threw away the consumed prefix and desynchronised the stream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let msg = Message::Submit {
                service: "ramsesZoom2".into(),
                request_id: 77,
            };
            let payload = encode_message(&msg);
            s.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
            // First half now, second half after the reader's timeout.
            let half = payload.len() / 2;
            s.write_all(&payload[..half]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(150));
            s.write_all(&payload[half..]).unwrap();
            s.flush().unwrap();
            // Hold the connection open until the reader is done.
            std::thread::sleep(Duration::from_millis(300));
        });

        let client = TcpTransport::connect(addr).unwrap();
        // Expires while the frame is still partial…
        assert!(client
            .recv_timeout(Duration::from_millis(40))
            .unwrap()
            .is_none());
        // …but the stream resumes cleanly.
        let m = client.recv().unwrap();
        assert_eq!(
            m,
            Message::Submit {
                service: "ramsesZoom2".into(),
                request_id: 77,
            }
        );
        writer.join().unwrap();
    }

    #[test]
    fn tcp_hostile_length_prefix_rejected_before_allocation() {
        // Regression: a corrupted or malicious peer advertising a ~4 GiB
        // frame used to trigger an eager `vec![0u8; n]`. The length must be
        // validated against the configured cap before any body allocation.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(&0xFFFF_FFF0u32.to_le_bytes()).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let client = TcpTransport::connect(addr).unwrap().with_max_frame(1 << 20);
        match client.recv() {
            Err(DietError::Transport(e)) => assert!(e.contains("oversized"), "{e}"),
            other => panic!("expected oversized-frame rejection, got {other:?}"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn tcp_configured_max_frame_is_enforced() {
        // A frame one byte over the configured limit is rejected; the limit
        // itself is fine.
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            if let Ok(m) = conn.recv() {
                let _ = conn.send(&m);
            }
        })
        .unwrap();
        let big = Message::CallReply {
            request_id: 1,
            queue_wait: 0.0,
            solve: 0.0,
            result: Err("x".repeat(4096)),
        };
        let frame_len = encode_message(&big).len();
        let client = TcpTransport::connect(server.local_addr)
            .unwrap()
            .with_max_frame(frame_len - 1);
        client.send(&big).unwrap();
        assert!(matches!(client.recv(), Err(DietError::Transport(_))));
    }

    #[test]
    fn tcp_server_kill_severs_live_connections() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            // Echo until the connection dies.
            while let Ok(m) = conn.recv() {
                if conn.send(&m).is_err() {
                    break;
                }
            }
        })
        .unwrap();
        let client = TcpTransport::connect(server.local_addr).unwrap();
        client.send(&Message::Ping).unwrap();
        assert_eq!(client.recv().unwrap(), Message::Ping);
        server.kill();
        // The established connection is gone: the next exchange fails.
        let dead = client
            .send(&Message::Ping)
            .and_then(|_| client.recv())
            .and_then(|_| client.send(&Message::Ping))
            .and_then(|_| client.recv());
        assert!(dead.is_err(), "connection should be severed, got {dead:?}");
    }

    #[test]
    fn sed_pool_times_out_and_recovers() {
        use crate::profile::ProfileDesc;
        // A server that never answers the first call, then echoes.
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = hits.clone();
        let server = TcpServer::spawn("127.0.0.1:0", move |conn| {
            while let Ok(m) = conn.recv() {
                if let Message::Call {
                    request_id,
                    profile,
                    ..
                } = m
                {
                    if server_hits.fetch_add(1, Ordering::Relaxed) == 0 {
                        continue; // swallow the first request
                    }
                    let _ = conn.send(&Message::CallReply {
                        request_id,
                        queue_wait: 0.0,
                        solve: 0.0,
                        result: Ok(profile),
                    });
                }
            }
        })
        .unwrap();
        let pool = TcpSedPool::new();
        pool.register("sed/0", server.local_addr);
        let d = ProfileDesc::alloc("noop", -1, -1, 0);
        let p = Profile::alloc(&d);
        let r = pool.call("sed/0", p.clone(), Duration::from_millis(60));
        assert!(matches!(r, Err(DietError::Timeout { .. })), "{r:?}");
        // Second attempt uses a fresh connection and succeeds.
        let ok = pool.call("sed/0", p.clone(), Duration::from_secs(2)).unwrap();
        assert_eq!(ok, p);
    }

    #[test]
    fn sed_pool_get_and_put_data_roundtrip() {
        use crate::data::{DietValue, Persistence};
        use crate::datamgr::DataManager;
        // A miniature data server: PutData retains, GetData serves.
        let dm = Arc::new(DataManager::new());
        let server_dm = dm.clone();
        let server = TcpServer::spawn("127.0.0.1:0", move |conn| {
            while let Ok(m) = conn.recv() {
                match m {
                    Message::PutData { id, mode, value } => {
                        server_dm.retain(&id, value, mode);
                        let _ = conn.send(&Message::DataReply {
                            id,
                            result: Ok((DietValue::Null, mode)),
                        });
                    }
                    Message::GetData { id } => {
                        let result = server_dm
                            .get_with_mode(&id)
                            .map_err(|e| e.to_string());
                        let _ = conn.send(&Message::DataReply { id, result });
                    }
                    _ => break,
                }
            }
        })
        .unwrap();
        let pool = TcpSedPool::new();
        pool.register("owner", server.local_addr);
        let blob = DietValue::vec_f64(vec![1.5; 256]);
        pool.put_data(
            "owner",
            "ic",
            blob.clone(),
            Persistence::Sticky,
            Duration::from_secs(2),
        )
        .unwrap();
        let (got, mode) = pool.get_data("owner", "ic", Duration::from_secs(2)).unwrap();
        assert_eq!(got, blob);
        assert_eq!(mode, Persistence::Sticky);
        // A miss comes back as DataNotFound, not a transport error — the
        // puller's cue to fall back to client re-shipping.
        let miss = pool.get_data("owner", "nope", Duration::from_secs(2));
        assert!(matches!(miss, Err(DietError::DataNotFound(_))), "{miss:?}");
        // The resolver facade goes through the same path.
        use crate::dagda::DataResolver;
        let (again, _) = pool.fetch("owner", "ic").unwrap();
        assert_eq!(again, blob);
    }

    #[test]
    fn tcp_max_frame_applies_to_data_replies() {
        // Mirror of `tcp_configured_max_frame_is_enforced` for the new data
        // frames: an oversized DataReply is rejected by the length check.
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            if let Ok(m) = conn.recv() {
                let _ = conn.send(&m);
            }
        })
        .unwrap();
        let big = Message::DataReply {
            id: "ic".into(),
            result: Ok((
                crate::data::DietValue::vec_f64(vec![0.25; 4096]),
                crate::data::Persistence::Persistent,
            )),
        };
        let frame_len = encode_message(&big).len();
        let client = TcpTransport::connect(server.local_addr)
            .unwrap()
            .with_max_frame(frame_len - 1);
        client.send(&big).unwrap();
        assert!(matches!(client.recv(), Err(DietError::Transport(_))));
    }

    #[test]
    fn tcp_large_file_payload() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            if let Ok(m) = conn.recv() {
                conn.send(&m).unwrap();
            }
        })
        .unwrap();
        let client = TcpTransport::connect(server.local_addr).unwrap();
        let desc = crate::profile::ramses_zoom1_desc();
        let mut p = crate::profile::Profile::alloc(&desc);
        p.set(
            0,
            crate::data::DietValue::File {
                name: "big.bin".into(),
                data: Bytes::from(vec![0xAB; 3 << 20]),
            },
            Default::default(),
        )
        .unwrap();
        p.set(
            1,
            crate::data::DietValue::ScalarI32(128),
            Default::default(),
        )
        .unwrap();
        let m = Message::Call {
            request_id: 1,
            ctx: obs::TraceCtx::default(),
            profile: p.clone(),
        };
        client.send(&m).unwrap();
        match client.recv().unwrap() {
            Message::Call { profile, .. } => assert_eq!(profile, p),
            other => panic!("unexpected {other:?}"),
        }
    }
}
