//! Transport abstraction.
//!
//! DIET used CORBA; GridSolve and Ninf used raw sockets (with the
//! portability and descriptor-exhaustion problems the paper points out).
//! Here a small [`Duplex`] trait covers both of this crate's transports:
//!
//! * [`InProcTransport`] — crossbeam channels; zero-copy, deterministic,
//!   used by tests and the campaign simulator.
//! * [`TcpTransport`] — `std::net::TcpStream` with `[u32 length][payload]`
//!   frames.
//!
//! Server side, [`TcpServer`] runs in one of two modes: the legacy pooled
//! mode (`spawn`/`spawn_with_config`) hands each accepted connection to a
//! worker thread for its lifetime — simple, and what the blocking-handler
//! tests exercise — while the framed mode ([`TcpServer::spawn_framed`])
//! multiplexes every connection through the readiness-driven
//! [`reactor`](crate::reactor), so idle connections cost a buffer instead
//! of a thread. The live hierarchy serving path rides the framed mode.

use crate::codec::{decode_message, encode_message, Message};
use crate::error::DietError;
use crate::profile::Profile;
use crate::reactor::{self, ConnHandle, FrameBuf, Poller, ReactorShared, Waker};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bidirectional message channel.
pub trait Duplex: Send {
    fn send(&self, m: &Message) -> Result<(), DietError>;
    fn recv(&self) -> Result<Message, DietError>;
    /// Receive with a timeout; `Ok(None)` on expiry.
    fn recv_timeout(&self, d: Duration) -> Result<Option<Message>, DietError>;
}

// ---------------------------------------------------------------- in-process

/// One end of an in-process duplex pair.
pub struct InProcTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

/// Create a connected pair of in-process endpoints. Messages still pass
/// through the codec so the wire format is exercised identically to TCP.
pub fn inproc_pair() -> (InProcTransport, InProcTransport) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (
        InProcTransport { tx: atx, rx: brx },
        InProcTransport { tx: btx, rx: arx },
    )
}

/// Create a bounded pair (used to test back-pressure handling).
pub fn inproc_pair_bounded(cap: usize) -> (InProcTransport, InProcTransport) {
    let (atx, arx) = bounded(cap);
    let (btx, brx) = bounded(cap);
    (
        InProcTransport { tx: atx, rx: brx },
        InProcTransport { tx: btx, rx: arx },
    )
}

impl Duplex for InProcTransport {
    fn send(&self, m: &Message) -> Result<(), DietError> {
        self.tx
            .send(encode_message(m))
            .map_err(|_| DietError::Transport("peer disconnected".into()))
    }

    fn recv(&self) -> Result<Message, DietError> {
        let raw = self
            .rx
            .recv()
            .map_err(|_| DietError::Transport("peer disconnected".into()))?;
        decode_message(raw)
    }

    fn recv_timeout(&self, d: Duration) -> Result<Option<Message>, DietError> {
        match self.rx.recv_timeout(d) {
            Ok(raw) => Ok(Some(decode_message(raw)?)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(DietError::Transport("peer disconnected".into()))
            }
        }
    }
}

// ----------------------------------------------------------------------- tcp

/// Frames larger than this are rejected unless the limit is raised with
/// [`TcpTransport::with_max_frame`]. Generous enough for the campaign's
/// multi-megabyte initial-conditions files.
pub const DEFAULT_MAX_FRAME: usize = 256 << 20;

/// How much we ask the socket for per `read` call. Bounds the transient
/// allocation growth to what has actually arrived, one chunk at a time.
const READ_CHUNK: usize = 64 << 10;

/// A framed TCP endpoint.
///
/// Incoming bytes accumulate in an internal buffer that survives across
/// calls: a `recv_timeout` that expires in the middle of a frame keeps the
/// partial frame buffered and the next receive resumes exactly where the
/// stream left off. (The earlier implementation used `read_exact` straight
/// off the socket, so a mid-frame timeout silently discarded the consumed
/// prefix and desynchronised every later frame.)
pub struct TcpTransport {
    stream: TcpStream,
    /// Bytes read off the socket but not yet returned as a frame.
    rbuf: Mutex<RecvBuf>,
    /// Serialises writers: a frame is two `write_all` calls (length prefix
    /// then payload), and a multiplexed connection has many concurrent
    /// senders whose frames must not interleave.
    wlock: Mutex<()>,
    max_frame: usize,
}

/// Receive-side state: the shared [`FrameBuf`] accumulator plus frames
/// already sliced out of it but not yet handed to a caller (one read burst
/// can complete several frames).
struct RecvBuf {
    fb: FrameBuf,
    pending: VecDeque<Bytes>,
}

impl TcpTransport {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, DietError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| DietError::Transport(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(Self::from_stream(stream))
    }

    pub fn from_stream(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        TcpTransport {
            stream,
            rbuf: Mutex::new(RecvBuf {
                fb: FrameBuf::new(DEFAULT_MAX_FRAME),
                pending: VecDeque::new(),
            }),
            wlock: Mutex::new(()),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Override the frame-size limit (both directions of a connection
    /// should agree on it).
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self.rbuf.lock().fb.set_max_frame(max_frame);
        self
    }

    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Sever the socket in both directions. `shutdown` acts on the socket
    /// itself, not this handle, so clones of the stream (e.g. a server's
    /// kill list) can't keep it half-open: the peer observes EOF
    /// immediately instead of waiting out its read deadline.
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn write_frame(&self, payload: &[u8]) -> Result<(), DietError> {
        let _w = self.wlock.lock();
        let mut s = &self.stream;
        s.write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|_| s.write_all(payload))
            .map_err(|e| DietError::Transport(format!("write: {e}")))
    }

    /// Read one `[u32 length][payload]` frame.
    ///
    /// The length prefix is validated against `max_frame` *before* any body
    /// allocation, so a hostile or corrupted peer advertising a huge frame
    /// is rejected immediately instead of triggering an eager
    /// gigabyte-sized `vec![0; n]`. Complete frames come out of the shared
    /// [`FrameBuf`] as zero-copy slices of the receive buffer — a read
    /// burst that completes several frames slices them all at once and
    /// queues the extras for the next call; no per-frame `Vec` is built.
    fn read_frame(&self) -> Result<Bytes, std::io::Error> {
        let mut rb = self.rbuf.lock();
        let rb = &mut *rb;
        let mut scratch = [0u8; READ_CHUNK];
        let mut frames = Vec::new();
        loop {
            if let Some(f) = rb.pending.pop_front() {
                return Ok(f);
            }
            rb.fb.drain_frames(&mut frames)?;
            if !frames.is_empty() {
                rb.pending.extend(frames.drain(..));
                continue;
            }
            let got = (&self.stream).read(&mut scratch)?;
            if got == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            rb.fb.push(&scratch[..got]);
        }
    }
}

impl Duplex for TcpTransport {
    fn send(&self, m: &Message) -> Result<(), DietError> {
        self.write_frame(&encode_message(m))
    }

    fn recv(&self) -> Result<Message, DietError> {
        let raw = self
            .read_frame()
            .map_err(|e| DietError::Transport(format!("read: {e}")))?;
        decode_message(raw)
    }

    fn recv_timeout(&self, d: Duration) -> Result<Option<Message>, DietError> {
        self.stream
            .set_read_timeout(Some(d))
            .map_err(|e| DietError::Transport(format!("set timeout: {e}")))?;
        let res = match self.read_frame() {
            Ok(raw) => decode_message(raw).map(Some),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(DietError::Transport(format!("read: {e}"))),
        };
        self.stream.set_read_timeout(None).ok();
        res
    }
}

/// Bind a listener, retrying transient failures with a short linear
/// backoff. Ephemeral binds (`127.0.0.1:0`) essentially never fail, but a
/// CI matrix running stages in parallel can transiently exhaust the
/// ephemeral range or race a socket in TIME_WAIT; a few retries make the
/// gate deterministic.
pub fn bind_with_retry(
    addr: impl ToSocketAddrs + Clone,
    attempts: u32,
) -> Result<TcpListener, DietError> {
    let mut last = None;
    for i in 0..attempts.max(1) {
        match TcpListener::bind(addr.clone()) {
            Ok(l) => return Ok(l),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10 * (i as u64 + 1)));
            }
        }
    }
    Err(DietError::Transport(format!(
        "bind: {} (after {attempts} attempts)",
        last.map(|e| e.to_string()).unwrap_or_default()
    )))
}

/// Sizing and fault hooks for a [`TcpServer`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads serving accepted connections. A connection occupies
    /// a worker for its lifetime (one pooled multiplexed connection per
    /// client carries many in-flight requests, so this bounds concurrent
    /// *clients*, not concurrent requests).
    pub workers: usize,
    /// Accepted connections waiting for a free worker. When this queue is
    /// full the server replies `Busy` (request id 0) and closes — explicit
    /// backpressure instead of an unbounded thread spray.
    pub accept_queue: usize,
    /// Optional fault injection consulted by the accept loop
    /// (`accept_delay`); per-request faults stay with the SeD's own plan.
    pub faults: Option<Arc<crate::faults::FaultPlan>>,
    /// Registry the reactor's instrumentation (tick latency, queue depths,
    /// drop counters) lands in. `None` keeps the metrics in a private
    /// throwaway registry — the loop is instrumented either way.
    pub obs: Option<Arc<obs::Obs>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            accept_queue: 64,
            faults: None,
            obs: None,
        }
    }
}

/// A TCP acceptor feeding a bounded worker pool.
///
/// The earlier implementation spawned an unbounded OS thread per
/// connection; under load the serving layer saturated long before the
/// hardware did. Now a fixed pool of `workers` threads drains an explicit
/// admission queue of `accept_queue` accepted connections, and overflow is
/// answered with a [`Message::Busy`] frame (request id 0) so clients back
/// off instead of piling up. Returns the bound local address (useful with
/// port 0) and a guard whose drop stops accepting. [`TcpServer::kill`]
/// additionally severs every live connection — the failure-injection hook
/// that simulates a host crash for fault-tolerance tests.
pub struct TcpServer {
    pub local_addr: std::net::SocketAddr,
    busy_rejections: Arc<AtomicU64>,
    inner: ServerInner,
}

enum ServerInner {
    /// Thread-per-connection pool: a worker owns each accepted socket for
    /// its whole lifetime. Kept for blocking handlers (tests, simple
    /// echo-style services).
    Pooled {
        stop: Arc<AtomicBool>,
        waker: Arc<Waker>,
        /// Live connections by id, for `kill` — pruned when the serving
        /// worker finishes with the socket (the pre-reactor version pushed
        /// into a `Vec` on accept and never removed, so a long-running
        /// server leaked one stream clone per connection ever accepted).
        conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    },
    /// Readiness-driven reactor: see [`crate::reactor`].
    Framed { reactor: Arc<ReactorShared> },
}

impl TcpServer {
    /// Spawn with the default pool sizing ([`ServerConfig::default`]).
    pub fn spawn(
        addr: impl ToSocketAddrs + Clone,
        handler: impl Fn(TcpTransport) + Send + Sync + 'static,
    ) -> Result<Self, DietError> {
        Self::spawn_with_config(addr, ServerConfig::default(), handler)
    }

    /// Spawn the readiness-driven serving core: one reactor thread owns the
    /// listener and every accepted socket; `cfg.workers` dispatch threads
    /// run `handler` on complete, already-decoded frames. The handler must
    /// not block on the peer — replies go through [`ConnHandle::send`],
    /// which queues them for the reactor to flush on writability.
    pub fn spawn_framed(
        addr: impl ToSocketAddrs + Clone,
        cfg: ServerConfig,
        handler: impl Fn(&ConnHandle, Message) + Send + Sync + 'static,
    ) -> Result<Self, DietError> {
        let listener = bind_with_retry(addr, 5)?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DietError::Transport(format!("local_addr: {e}")))?;
        let busy_rejections = Arc::new(AtomicU64::new(0));
        let reactor = reactor::spawn(listener, cfg, Arc::new(handler), busy_rejections.clone())?;
        Ok(TcpServer {
            local_addr,
            busy_rejections,
            inner: ServerInner::Framed { reactor },
        })
    }

    /// Spawn the pooled (thread-per-connection) server with explicit
    /// worker-pool sizing and fault hooks.
    pub fn spawn_with_config(
        addr: impl ToSocketAddrs + Clone,
        cfg: ServerConfig,
        handler: impl Fn(TcpTransport) + Send + Sync + 'static,
    ) -> Result<Self, DietError> {
        let listener = bind_with_retry(addr, 5)?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DietError::Transport(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DietError::Transport(format!("set_nonblocking: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let waker =
            Arc::new(Waker::new().map_err(|e| DietError::Transport(format!("waker: {e}")))?);
        let mut poller = Poller::new().map_err(|e| DietError::Transport(format!("poller: {e}")))?;
        poller
            .add(listener.as_raw_fd(), 0, true, false)
            .and_then(|_| poller.add(waker.fd(), 1, true, false))
            .map_err(|e| DietError::Transport(format!("poller register: {e}")))?;
        let handler = std::sync::Arc::new(handler);
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let busy_rejections = Arc::new(AtomicU64::new(0));

        // Admission queue: accepted sockets waiting for a worker.
        let (work_tx, work_rx) = bounded::<(u64, TcpStream)>(cfg.accept_queue.max(1));
        for _ in 0..cfg.workers.max(1) {
            let rx = work_rx.clone();
            let h = handler.clone();
            let worker_conns = conns.clone();
            std::thread::spawn(move || {
                // Exits when the acceptor drops its sender and the queue
                // drains.
                while let Ok((id, stream)) = rx.recv() {
                    let sock = stream.try_clone().ok();
                    h(TcpTransport::from_stream(stream));
                    // The kill list holds a clone of this stream, so
                    // dropping the transport alone would leave the socket
                    // open and the peer blocked on a read that can never
                    // complete — sever it explicitly, then prune the entry
                    // so the list tracks live connections only.
                    if let Some(s) = sock {
                        let _ = s.shutdown(std::net::Shutdown::Both);
                    }
                    worker_conns.lock().remove(&id);
                }
            });
        }

        let accept_conns = conns.clone();
        let accept_busy = busy_rejections.clone();
        let accept_stop = stop.clone();
        let accept_waker = waker.clone();
        std::thread::spawn(move || {
            // Readiness-driven accept: the thread parks in `poller.wait`
            // until the listener has a pending connection or the waker is
            // poked at stop — no sleep-poll, no accept latency floor.
            let mut events = Vec::new();
            let mut next_id: u64 = 0;
            'acceptor: loop {
                events.clear();
                if poller.wait(&mut events, -1).is_err() {
                    break;
                }
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                for ev in &events {
                    if ev.token == 1 {
                        accept_waker.drain();
                        continue;
                    }
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if let Some(d) = cfg.faults.as_ref().and_then(|f| f.accept_delay())
                                {
                                    std::thread::sleep(d);
                                }
                                stream.set_nonblocking(false).ok();
                                let id = next_id;
                                next_id += 1;
                                if let Ok(clone) = stream.try_clone() {
                                    accept_conns.lock().insert(id, clone);
                                }
                                if let Err(full) = work_tx.try_send((id, stream)) {
                                    // Queue full: explicit backpressure.
                                    // Tell the client before closing so it
                                    // backs off rather than timing out.
                                    accept_busy.fetch_add(1, Ordering::Relaxed);
                                    accept_conns.lock().remove(&id);
                                    let stream = match full {
                                        crossbeam::channel::TrySendError::Full((_, s))
                                        | crossbeam::channel::TrySendError::Disconnected((_, s)) => {
                                            s
                                        }
                                    };
                                    let t = TcpTransport::from_stream(stream);
                                    let _ = t.send(&Message::Busy { request_id: 0 });
                                    t.shutdown();
                                }
                            }
                            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => break 'acceptor,
                        }
                    }
                }
            }
            // Dropping work_tx lets idle workers exit once the queue drains.
        });
        Ok(TcpServer {
            local_addr,
            busy_rejections,
            inner: ServerInner::Pooled { stop, waker, conns },
        })
    }

    pub fn stop(&self) {
        match &self.inner {
            ServerInner::Pooled { stop, waker, .. } => {
                stop.store(true, Ordering::Release);
                waker.wake();
            }
            ServerInner::Framed { reactor } => reactor.request_stop(),
        }
    }

    /// Connections refused with `Busy` because the admission queue was full.
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections.load(Ordering::Relaxed)
    }

    /// Live connections the server currently tracks. In pooled mode this is
    /// the kill list (pruned as workers finish); in framed mode it is the
    /// reactor's registered-socket count. Either way it must track actual
    /// live peers, not every connection ever accepted.
    pub fn tracked_connections(&self) -> usize {
        match &self.inner {
            ServerInner::Pooled { conns, .. } => conns.lock().len(),
            ServerInner::Framed { reactor } => reactor.connections(),
        }
    }

    /// Simulate a crash: stop accepting and sever every live connection.
    /// In-flight requests on this server are lost, exactly as when the
    /// paper's Grid'5000 nodes died mid-campaign.
    pub fn kill(&self) {
        match &self.inner {
            ServerInner::Pooled { conns, .. } => {
                self.stop();
                for (_, s) in conns.lock().drain() {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
            }
            ServerInner::Framed { reactor } => reactor.request_kill(),
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

// ------------------------------------------------------------- multiplexing

/// Inner state shared between a [`MuxConn`]'s callers and its demux thread.
struct MuxInner {
    transport: TcpTransport,
    /// Waiters keyed by correlation id. The demux thread removes an entry
    /// when its reply arrives; a caller that times out removes its own.
    pending: Mutex<HashMap<u64, Sender<Result<Message, DietError>>>>,
    /// Set once the stream fails; the owning pool redials on next use.
    dead: AtomicBool,
    /// Requests currently awaiting replies, and the high-water mark —
    /// direct evidence that one connection really pipelines.
    inflight: AtomicU64,
    inflight_peak: AtomicU64,
}

impl MuxInner {
    /// Fail every waiter and mark the connection dead.
    fn poison(&self, err: DietError) {
        self.dead.store(true, Ordering::Release);
        for (_, tx) in self.pending.lock().drain() {
            let _ = tx.send(Err(err.clone()));
        }
    }
}

/// A multiplexed client connection: many in-flight requests share one TCP
/// stream, correlated by request id.
///
/// Callers register a one-shot waiter under their correlation id, write the
/// request frame (the transport's write lock keeps frames whole), and block
/// on their private channel. A dedicated demux thread reads every incoming
/// frame and routes it to the waiter whose id it echoes; replies arriving
/// for ids nobody waits on (a caller timed out) are dropped harmlessly. On
/// any stream error the demux thread poisons all waiters with a retryable
/// transport error and marks the connection dead so the pool redials.
pub struct MuxConn {
    inner: Arc<MuxInner>,
}

impl MuxConn {
    pub fn connect(addr: SocketAddr) -> Result<Self, DietError> {
        let transport = TcpTransport::connect(addr)?;
        let inner = Arc::new(MuxInner {
            transport,
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
        });
        let demux = inner.clone();
        std::thread::spawn(move || loop {
            match demux.transport.recv() {
                Ok(Message::Busy { request_id: 0 }) => {
                    // Connection-level rejection: the server's admission
                    // queue was full before any request was read. Every
                    // waiter backs off.
                    demux.poison(DietError::Busy);
                    break;
                }
                Ok(msg) => {
                    let rid = match &msg {
                        Message::CallReply { request_id, .. } => *request_id,
                        Message::DataReply { request_id, .. } => *request_id,
                        Message::SubmitReply { request_id, .. } => *request_id,
                        Message::EstimateBatch { request_id, .. } => *request_id,
                        Message::Busy { request_id } => *request_id,
                        Message::MetricsReplyRid { request_id, .. } => *request_id,
                        Message::PushAck { request_id } => *request_id,
                        Message::DagReply { request_id, .. } => *request_id,
                        Message::DagEvent { request_id, .. } => *request_id,
                        Message::SubmitTasksReply { request_id, .. } => *request_id,
                        Message::TaskStatusReply { request_id, .. } => *request_id,
                        Message::AttachReply { request_id, .. } => *request_id,
                        Message::ProgressReply { request_id, .. } => *request_id,
                        // Uncorrelated frames (Pong, the legacy
                        // MetricsReply) have no waiter on a mux connection;
                        // drop them.
                        _ => 0,
                    };
                    if rid != 0 {
                        if let Some(tx) = demux.pending.lock().remove(&rid) {
                            let _ = tx.send(Ok(msg));
                        }
                    }
                }
                Err(e) => {
                    demux.poison(DietError::Transport(format!("mux demux: {e}")));
                    break;
                }
            }
        });
        Ok(MuxConn { inner })
    }

    pub fn is_dead(&self) -> bool {
        self.inner.dead.load(Ordering::Acquire)
    }

    /// Highest number of simultaneously outstanding requests this
    /// connection has carried.
    pub fn inflight_peak(&self) -> u64 {
        self.inner.inflight_peak.load(Ordering::Relaxed)
    }

    /// Send `m` (which must carry `request_id` as its correlation id) and
    /// wait up to `deadline` for the reply that echoes the id.
    pub fn request(
        &self,
        m: &Message,
        request_id: u64,
        deadline: Duration,
    ) -> Result<Message, DietError> {
        if self.is_dead() {
            return Err(DietError::Transport("mux connection closed".into()));
        }
        let (tx, rx) = bounded(1);
        {
            let mut pending = self.inner.pending.lock();
            pending.insert(request_id, tx);
            let now = self.inner.inflight.fetch_add(1, Ordering::Relaxed) + 1;
            self.inner.inflight_peak.fetch_max(now, Ordering::Relaxed);
        }
        let sent = self.inner.transport.send(m);
        if let Err(e) = sent {
            self.inner.pending.lock().remove(&request_id);
            self.inner.inflight.fetch_sub(1, Ordering::Relaxed);
            self.inner.dead.store(true, Ordering::Release);
            return Err(e);
        }
        let res = match rx.recv_timeout(deadline) {
            Ok(reply) => reply,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                // Remove our waiter; if the reply lands later the demux
                // thread finds no entry and drops it — the stream itself
                // stays healthy for other callers.
                self.inner.pending.lock().remove(&request_id);
                Err(DietError::Timeout {
                    after_secs: deadline.as_secs_f64(),
                })
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(DietError::Transport("mux demux thread gone".into()))
            }
        };
        self.inner.inflight.fetch_sub(1, Ordering::Relaxed);
        res
    }
}

impl Drop for MuxConn {
    fn drop(&mut self) {
        // Unblock the demux thread: it is parked in `recv` on this stream
        // and exits (poisoning any stragglers) once the socket dies.
        self.inner.transport.shutdown();
    }
}

// ------------------------------------------------------------------ sed pool

/// Client-side registry of SeD endpoints with one multiplexed connection
/// per label.
///
/// `call` sends a [`Message::Call`] through the label's shared [`MuxConn`]
/// and waits for the [`Message::CallReply`] echoing its correlation id, so
/// any number of threads pipeline over one stream. A timed-out request
/// merely abandons its waiter (the connection survives); a stream error
/// marks the connection dead and the next call redials. A `Busy` reply —
/// per-request or connection-level — surfaces as [`DietError::Busy`], the
/// caller's cue to back off without striking the (healthy) server.
#[derive(Default)]
pub struct TcpSedPool {
    endpoints: RwLock<HashMap<String, SocketAddr>>,
    muxes: Mutex<HashMap<String, Arc<MuxConn>>>,
    next_id: AtomicU64,
    dials: AtomicU64,
}

impl TcpSedPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-register) the address serving a SeD label.
    pub fn register(&self, label: &str, addr: SocketAddr) {
        self.endpoints.write().insert(label.to_string(), addr);
    }

    pub fn endpoint(&self, label: &str) -> Option<SocketAddr> {
        self.endpoints.read().get(label).copied()
    }

    /// Every registered label — the jobserver's machine pool enumerates
    /// these for its heartbeat probes.
    pub fn labels(&self) -> Vec<String> {
        self.endpoints.read().keys().cloned().collect()
    }

    /// The live multiplexed connection for `label`, dialing if absent or
    /// dead. Many callers share the returned connection concurrently.
    fn mux_for(&self, label: &str) -> Result<Arc<MuxConn>, DietError> {
        if let Some(mux) = self.muxes.lock().get(label) {
            if !mux.is_dead() {
                return Ok(mux.clone());
            }
        }
        let addr = self
            .endpoint(label)
            .ok_or_else(|| DietError::Transport(format!("no endpoint registered for {label}")))?;
        let fresh = Arc::new(MuxConn::connect(addr)?);
        let mut muxes = self.muxes.lock();
        // A concurrent caller may have redialed while we were connecting;
        // prefer whichever live connection is installed so everyone
        // converges on one stream per label. The discarded dial is not
        // counted: `dials` measures installed connections (pooling
        // effectiveness), and a lost install race still leaves every
        // caller pipelining on the one winning stream.
        if let Some(existing) = muxes.get(label) {
            if !existing.is_dead() {
                return Ok(existing.clone());
            }
        }
        self.dials.fetch_add(1, Ordering::Relaxed);
        muxes.insert(label.to_string(), fresh.clone());
        Ok(fresh)
    }

    /// Drop the pooled connection for `label` if it has died (the next
    /// call redials). Keeping a dead entry around is harmless; this just
    /// keeps the map tidy for long-lived clients.
    fn evict_if_dead(&self, label: &str) {
        let mut muxes = self.muxes.lock();
        if muxes.get(label).is_some_and(|m| m.is_dead()) {
            muxes.remove(label);
        }
    }

    /// Times this pool dialed a fresh connection — pipelining evidence:
    /// a saturating client should hold ~one dial per label.
    pub fn dials(&self) -> u64 {
        self.dials.load(Ordering::Relaxed)
    }

    /// High-water mark of in-flight requests on `label`'s current
    /// connection (0 if none is pooled).
    pub fn peak_inflight(&self, label: &str) -> u64 {
        self.muxes
            .lock()
            .get(label)
            .map(|m| m.inflight_peak())
            .unwrap_or(0)
    }

    /// One remote call attempt against `label`, bounded by `deadline`.
    pub fn call(
        &self,
        label: &str,
        profile: Profile,
        deadline: Duration,
    ) -> Result<Profile, DietError> {
        self.call_traced(label, profile, deadline, obs::TraceCtx::default())
            .map(|(p, _, _)| p)
    }

    /// Like [`call`](Self::call), but carries a trace context inside the
    /// request frame (so server-side spans join the caller's trace) and
    /// returns the server-measured `(profile, queue_wait, solve)` timings
    /// from the reply.
    pub fn call_traced(
        &self,
        label: &str,
        profile: Profile,
        deadline: Duration,
        ctx: obs::TraceCtx,
    ) -> Result<(Profile, f64, f64), DietError> {
        let mux = self.mux_for(label)?;
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let reply = mux.request(
            &Message::Call {
                request_id,
                ctx,
                profile,
            },
            request_id,
            deadline,
        );
        match reply {
            Ok(Message::CallReply {
                queue_wait,
                solve,
                result,
                ..
            }) => result
                .map(|p| (p, queue_wait, solve))
                .map_err(DietError::Rejected),
            Ok(Message::Busy { .. }) => Err(DietError::Busy),
            Ok(other) => Err(DietError::Transport(format!(
                "unexpected reply to call: {other:?}"
            ))),
            Err(e) => {
                self.evict_if_dead(label);
                Err(e)
            }
        }
    }

    /// Fetch a Prometheus-format metrics dump from the server behind
    /// `label` (the `dump-metrics` request). This legacy variant carries no
    /// correlation id, so it uses a short-lived dedicated connection rather
    /// than riding the multiplexed stream; prefer
    /// [`dump_metrics_correlated`](Self::dump_metrics_correlated), which
    /// shares the label's pooled connection with in-flight calls.
    pub fn dump_metrics(&self, label: &str, deadline: Duration) -> Result<String, DietError> {
        let addr = self
            .endpoint(label)
            .ok_or_else(|| DietError::Transport(format!("no endpoint registered for {label}")))?;
        let conn = TcpTransport::connect(addr)?;
        conn.send(&Message::DumpMetrics)?;
        match conn.recv_timeout(deadline)? {
            Some(Message::MetricsReply { text }) => Ok(text),
            Some(other) => Err(DietError::Transport(format!(
                "unexpected reply to dump-metrics: {other:?}"
            ))),
            None => Err(DietError::Timeout {
                after_secs: deadline.as_secs_f64(),
            }),
        }
    }

    /// Correlated metrics dump riding the label's shared [`MuxConn`] like
    /// `Call` does — no extra connection, and concurrent dumps from many
    /// threads demux cleanly by request id. `what` selects the view
    /// (`""`/`"prometheus"`, `"chrome"`, `"topology"` on a collector).
    pub fn dump_metrics_correlated(
        &self,
        label: &str,
        what: &str,
        deadline: Duration,
    ) -> Result<String, DietError> {
        let mux = self.mux_for(label)?;
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let reply = mux.request(
            &Message::DumpMetricsRid {
                request_id,
                what: what.to_string(),
            },
            request_id,
            deadline,
        );
        match reply {
            Ok(Message::MetricsReplyRid { text, .. }) => Ok(text),
            Ok(Message::Busy { .. }) => Err(DietError::Busy),
            Ok(other) => Err(DietError::Transport(format!(
                "unexpected reply to dump-metrics: {other:?}"
            ))),
            Err(e) => {
                self.evict_if_dead(label);
                Err(e)
            }
        }
    }

    /// Pull the grid data item `id` from the SeD behind `label` — the wire
    /// leg of DAGDA's SeD-to-SeD transfer. Shares the label's multiplexed
    /// connection with in-flight calls; the correlation id pairs the reply.
    pub fn get_data(
        &self,
        label: &str,
        id: &str,
        deadline: Duration,
    ) -> Result<(crate::data::DietValue, crate::data::Persistence), DietError> {
        let mux = self.mux_for(label)?;
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let reply = mux.request(
            &Message::GetData {
                request_id,
                id: id.to_string(),
            },
            request_id,
            deadline,
        );
        match reply {
            Ok(Message::DataReply { result, .. }) => result.map_err(DietError::DataNotFound),
            Ok(Message::Busy { .. }) => Err(DietError::Busy),
            Ok(other) => Err(DietError::Transport(format!(
                "unexpected reply to get-data: {other:?}"
            ))),
            Err(e) => {
                self.evict_if_dead(label);
                Err(e)
            }
        }
    }

    /// Store `value` under `id` on the SeD behind `label` — the client-side
    /// leg of `store_data`. The server acks with an empty [`Message::DataReply`];
    /// a `Volatile` mode is rejected there (nothing to persist).
    pub fn put_data(
        &self,
        label: &str,
        id: &str,
        value: crate::data::DietValue,
        mode: crate::data::Persistence,
        deadline: Duration,
    ) -> Result<(), DietError> {
        let mux = self.mux_for(label)?;
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let reply = mux.request(
            &Message::PutData {
                request_id,
                id: id.to_string(),
                mode,
                value,
            },
            request_id,
            deadline,
        );
        match reply {
            Ok(Message::DataReply { result, .. }) => {
                result.map(|_| ()).map_err(DietError::Rejected)
            }
            Ok(Message::Busy { .. }) => Err(DietError::Busy),
            Ok(other) => Err(DietError::Transport(format!(
                "unexpected reply to put-data: {other:?}"
            ))),
            Err(e) => {
                self.evict_if_dead(label);
                Err(e)
            }
        }
    }
}

/// The pool doubles as the [`DataResolver`](crate::dagda::DataResolver) a
/// TCP-served SeD uses for SeD-to-SeD pulls: `fetch` is `get_data` with a
/// fixed transfer deadline.
impl crate::dagda::DataResolver for TcpSedPool {
    fn fetch(
        &self,
        sed: &str,
        id: &str,
    ) -> Result<(crate::data::DietValue, crate::data::Persistence), DietError> {
        self.get_data(sed, id, Duration::from_secs(30))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_roundtrip() {
        let (a, b) = inproc_pair();
        a.send(&Message::Ping).unwrap();
        assert_eq!(b.recv().unwrap(), Message::Ping);
        b.send(&Message::Pong).unwrap();
        assert_eq!(a.recv().unwrap(), Message::Pong);
    }

    #[test]
    fn inproc_timeout_expires() {
        let (a, _b) = inproc_pair();
        let r = a.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn inproc_disconnect_detected() {
        let (a, b) = inproc_pair();
        drop(b);
        assert!(a.send(&Message::Ping).is_err());
        assert!(a.recv().is_err());
    }

    #[test]
    fn tcp_roundtrip_and_echo() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            while let Ok(m) = conn.recv() {
                match m {
                    Message::Ping => conn.send(&Message::Pong).unwrap(),
                    Message::Shutdown => break,
                    other => conn.send(&other).unwrap(),
                }
            }
        })
        .unwrap();

        let client = TcpTransport::connect(server.local_addr).unwrap();
        client.send(&Message::Ping).unwrap();
        assert_eq!(client.recv().unwrap(), Message::Pong);

        let m = Message::Submit {
            service: "ramsesZoom1".into(),
            request_id: 9,
            ctx: obs::TraceCtx::default(),
            exclude: vec![],
        };
        client.send(&m).unwrap();
        assert_eq!(client.recv().unwrap(), m);
        client.send(&Message::Shutdown).unwrap();
    }

    #[test]
    fn tcp_timeout_returns_none() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            // Never answer; just hold the connection open long enough.
            let _ = conn.recv_timeout(Duration::from_millis(300));
        })
        .unwrap();
        let client = TcpTransport::connect(server.local_addr).unwrap();
        let r = client.recv_timeout(Duration::from_millis(30)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn tcp_mid_frame_timeout_keeps_stream_in_sync() {
        // Regression: a slow writer delivers the length prefix and part of
        // the body, the reader's timeout expires mid-frame, and the next
        // receive must still decode the frame — the old implementation
        // threw away the consumed prefix and desynchronised the stream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let msg = Message::Submit {
                service: "ramsesZoom2".into(),
                request_id: 77,
                ctx: obs::TraceCtx::default(),
                exclude: vec![],
            };
            let payload = encode_message(&msg);
            s.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
            // First half now, second half after the reader's timeout.
            let half = payload.len() / 2;
            s.write_all(&payload[..half]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(150));
            s.write_all(&payload[half..]).unwrap();
            s.flush().unwrap();
            // Hold the connection open until the reader is done.
            std::thread::sleep(Duration::from_millis(300));
        });

        let client = TcpTransport::connect(addr).unwrap();
        // Expires while the frame is still partial…
        assert!(client
            .recv_timeout(Duration::from_millis(40))
            .unwrap()
            .is_none());
        // …but the stream resumes cleanly.
        let m = client.recv().unwrap();
        assert_eq!(
            m,
            Message::Submit {
                service: "ramsesZoom2".into(),
                request_id: 77,
                ctx: obs::TraceCtx::default(),
                exclude: vec![],
            }
        );
        writer.join().unwrap();
    }

    #[test]
    fn tcp_hostile_length_prefix_rejected_before_allocation() {
        // Regression: a corrupted or malicious peer advertising a ~4 GiB
        // frame used to trigger an eager `vec![0u8; n]`. The length must be
        // validated against the configured cap before any body allocation.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(&0xFFFF_FFF0u32.to_le_bytes()).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let client = TcpTransport::connect(addr).unwrap().with_max_frame(1 << 20);
        match client.recv() {
            Err(DietError::Transport(e)) => assert!(e.contains("oversized"), "{e}"),
            other => panic!("expected oversized-frame rejection, got {other:?}"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn tcp_configured_max_frame_is_enforced() {
        // A frame one byte over the configured limit is rejected; the limit
        // itself is fine.
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            if let Ok(m) = conn.recv() {
                let _ = conn.send(&m);
            }
        })
        .unwrap();
        let big = Message::CallReply {
            request_id: 1,
            queue_wait: 0.0,
            solve: 0.0,
            result: Err("x".repeat(4096)),
        };
        let frame_len = encode_message(&big).len();
        let client = TcpTransport::connect(server.local_addr)
            .unwrap()
            .with_max_frame(frame_len - 1);
        client.send(&big).unwrap();
        assert!(matches!(client.recv(), Err(DietError::Transport(_))));
    }

    #[test]
    fn tcp_server_kill_severs_live_connections() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            // Echo until the connection dies.
            while let Ok(m) = conn.recv() {
                if conn.send(&m).is_err() {
                    break;
                }
            }
        })
        .unwrap();
        let client = TcpTransport::connect(server.local_addr).unwrap();
        client.send(&Message::Ping).unwrap();
        assert_eq!(client.recv().unwrap(), Message::Ping);
        server.kill();
        // The established connection is gone: the next exchange fails.
        let dead = client
            .send(&Message::Ping)
            .and_then(|_| client.recv())
            .and_then(|_| client.send(&Message::Ping))
            .and_then(|_| client.recv());
        assert!(dead.is_err(), "connection should be severed, got {dead:?}");
    }

    #[test]
    fn sed_pool_get_and_put_data_roundtrip() {
        use crate::data::{DietValue, Persistence};
        use crate::datamgr::DataManager;
        // A miniature data server: PutData retains, GetData serves.
        let dm = Arc::new(DataManager::new());
        let server_dm = dm.clone();
        let server = TcpServer::spawn("127.0.0.1:0", move |conn| {
            while let Ok(m) = conn.recv() {
                match m {
                    Message::PutData {
                        request_id,
                        id,
                        mode,
                        value,
                    } => {
                        server_dm.retain(&id, value, mode);
                        let _ = conn.send(&Message::DataReply {
                            request_id,
                            id,
                            result: Ok((DietValue::Null, mode)),
                        });
                    }
                    Message::GetData { request_id, id } => {
                        let result = server_dm.get_with_mode(&id).map_err(|e| e.to_string());
                        let _ = conn.send(&Message::DataReply {
                            request_id,
                            id,
                            result,
                        });
                    }
                    _ => break,
                }
            }
        })
        .unwrap();
        let pool = TcpSedPool::new();
        pool.register("owner", server.local_addr);
        let blob = DietValue::vec_f64(vec![1.5; 256]);
        pool.put_data(
            "owner",
            "ic",
            blob.clone(),
            Persistence::Sticky,
            Duration::from_secs(2),
        )
        .unwrap();
        let (got, mode) = pool
            .get_data("owner", "ic", Duration::from_secs(2))
            .unwrap();
        assert_eq!(got, blob);
        assert_eq!(mode, Persistence::Sticky);
        // A miss comes back as DataNotFound, not a transport error — the
        // puller's cue to fall back to client re-shipping.
        let miss = pool.get_data("owner", "nope", Duration::from_secs(2));
        assert!(matches!(miss, Err(DietError::DataNotFound(_))), "{miss:?}");
        // The resolver facade goes through the same path.
        use crate::dagda::DataResolver;
        let (again, _) = pool.fetch("owner", "ic").unwrap();
        assert_eq!(again, blob);
    }

    #[test]
    fn tcp_max_frame_applies_to_data_replies() {
        // Mirror of `tcp_configured_max_frame_is_enforced` for the new data
        // frames: an oversized DataReply is rejected by the length check.
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            if let Ok(m) = conn.recv() {
                let _ = conn.send(&m);
            }
        })
        .unwrap();
        let big = Message::DataReply {
            request_id: 1,
            id: "ic".into(),
            result: Ok((
                crate::data::DietValue::vec_f64(vec![0.25; 4096]),
                crate::data::Persistence::Persistent,
            )),
        };
        let frame_len = encode_message(&big).len();
        let client = TcpTransport::connect(server.local_addr)
            .unwrap()
            .with_max_frame(frame_len - 1);
        client.send(&big).unwrap();
        assert!(matches!(client.recv(), Err(DietError::Transport(_))));
    }

    #[test]
    fn mux_correlates_out_of_order_replies() {
        use crate::profile::ProfileDesc;
        // A server that batches two calls and answers them in REVERSE
        // order: only correlation-id routing can hand each caller its own
        // reply. The pool must pipeline both calls down one connection.
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            let mut batch = Vec::new();
            while let Ok(m) = conn.recv() {
                if let Message::Call {
                    request_id,
                    profile,
                    ..
                } = m
                {
                    batch.push((request_id, profile));
                    if batch.len() == 2 {
                        for (rid, p) in batch.drain(..).rev() {
                            let _ = conn.send(&Message::CallReply {
                                request_id: rid,
                                queue_wait: 0.0,
                                solve: 0.0,
                                result: Ok(p),
                            });
                        }
                    }
                }
            }
        })
        .unwrap();
        let pool = Arc::new(TcpSedPool::new());
        pool.register("sed/0", server.local_addr);
        let d = ProfileDesc::alloc("echo", -1, 0, 0);
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let pool = pool.clone();
                let d = d.clone();
                std::thread::spawn(move || {
                    let mut p = Profile::alloc(&d);
                    p.set(0, crate::data::DietValue::ScalarI32(i), Default::default())
                        .unwrap();
                    let got = pool
                        .call("sed/0", p.clone(), Duration::from_secs(5))
                        .unwrap();
                    assert_eq!(got, p, "caller {i} got someone else's reply");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Both calls shared one dialed connection and overlapped on it.
        assert_eq!(pool.dials(), 1, "pipelining should not redial");
        assert!(
            pool.peak_inflight("sed/0") >= 2,
            "expected >=2 in-flight on one connection, got {}",
            pool.peak_inflight("sed/0")
        );
    }

    #[test]
    fn mux_timeout_keeps_connection_for_other_callers() {
        use crate::profile::ProfileDesc;
        // One request is swallowed (its caller times out), then the server
        // echoes everything else. The surviving connection must still pair
        // later replies correctly — no eviction, no desync.
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = hits.clone();
        let server = TcpServer::spawn("127.0.0.1:0", move |conn| {
            while let Ok(m) = conn.recv() {
                if let Message::Call {
                    request_id,
                    profile,
                    ..
                } = m
                {
                    if server_hits.fetch_add(1, Ordering::Relaxed) == 0 {
                        continue; // swallow the first request
                    }
                    let _ = conn.send(&Message::CallReply {
                        request_id,
                        queue_wait: 0.0,
                        solve: 0.0,
                        result: Ok(profile),
                    });
                }
            }
        })
        .unwrap();
        let pool = TcpSedPool::new();
        pool.register("sed/0", server.local_addr);
        let d = ProfileDesc::alloc("noop", -1, -1, 0);
        let p = Profile::alloc(&d);
        let r = pool.call("sed/0", p.clone(), Duration::from_millis(60));
        assert!(matches!(r, Err(DietError::Timeout { .. })), "{r:?}");
        let ok = pool
            .call("sed/0", p.clone(), Duration::from_secs(2))
            .unwrap();
        assert_eq!(ok, p);
        // The timed-out request did not cost the pooled connection.
        assert_eq!(pool.dials(), 1);
    }

    #[test]
    fn server_rejects_with_busy_when_admission_queue_full() {
        // One worker occupied forever + a single queue slot: the third
        // connection must be told Busy (request id 0) instead of hanging.
        let cfg = ServerConfig {
            workers: 1,
            accept_queue: 1,
            faults: None,
            obs: None,
        };
        let server = TcpServer::spawn_with_config("127.0.0.1:0", cfg, |conn| {
            // Hold the worker until the connection dies.
            while conn.recv().is_ok() {}
        })
        .unwrap();
        let held = TcpTransport::connect(server.local_addr).unwrap();
        // Let the worker dequeue `held` before the next connection arrives
        // (on a single-CPU host the worker may otherwise not be scheduled
        // until after the acceptor has processed every pending connect, in
        // which case the Busy would land on `_queued` instead).
        std::thread::sleep(Duration::from_millis(150));
        let _queued = TcpTransport::connect(server.local_addr).unwrap();
        // And let the acceptor park `_queued` in the admission queue.
        std::thread::sleep(Duration::from_millis(150));
        let rejected = TcpTransport::connect(server.local_addr).unwrap();
        match rejected.recv_timeout(Duration::from_secs(2)) {
            Ok(Some(Message::Busy { request_id: 0 })) => {}
            other => panic!("expected Busy(0), got {other:?}"),
        }
        assert!(server.busy_rejections() >= 1);
        drop(held);
    }

    #[test]
    fn bind_with_retry_binds_ephemeral_port() {
        let l = bind_with_retry("127.0.0.1:0", 3).unwrap();
        assert_ne!(l.local_addr().unwrap().port(), 0);
    }

    #[test]
    fn tcp_large_file_payload() {
        let server = TcpServer::spawn("127.0.0.1:0", |conn| {
            if let Ok(m) = conn.recv() {
                conn.send(&m).unwrap();
            }
        })
        .unwrap();
        let client = TcpTransport::connect(server.local_addr).unwrap();
        let desc = crate::profile::ramses_zoom1_desc();
        let mut p = crate::profile::Profile::alloc(&desc);
        p.set(
            0,
            crate::data::DietValue::File {
                name: "big.bin".into(),
                data: Bytes::from(vec![0xAB; 3 << 20]),
            },
            Default::default(),
        )
        .unwrap();
        p.set(
            1,
            crate::data::DietValue::ScalarI32(128),
            Default::default(),
        )
        .unwrap();
        let m = Message::Call {
            request_id: 1,
            ctx: obs::TraceCtx::default(),
            profile: p.clone(),
        };
        client.send(&m).unwrap();
        match client.recv().unwrap() {
            Message::Call { profile, .. } => assert_eq!(profile, p),
            other => panic!("unexpected {other:?}"),
        }
    }
}
