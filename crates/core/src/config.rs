//! Client/agent configuration files.
//!
//! "The client program must open its DIET session with a call to
//! `diet_initialize()`. It parses the configuration file given as the first
//! argument, to set all options and get a reference to the DIET Master
//! Agent." DIET config files are `key = value` lines; the keys this crate
//! understands mirror the original's (`MAName`, `traceLevel`, …) plus the
//! name-server address our transports need.

use crate::error::DietError;
use std::collections::BTreeMap;

/// A parsed configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DietConfig {
    entries: BTreeMap<String, String>,
}

impl DietConfig {
    /// Parse DIET-style config text: `key = value` lines, `#` comments.
    pub fn parse(text: &str) -> Result<Self, DietError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once('=').ok_or_else(|| {
                DietError::Deployment(format!("config line {}: expected key = value", i + 1))
            })?;
            let k = k.trim();
            let v = v.trim();
            if k.is_empty() || v.is_empty() {
                return Err(DietError::Deployment(format!(
                    "config line {}: empty key or value",
                    i + 1
                )));
            }
            entries.insert(k.to_string(), v.to_string());
        }
        Ok(DietConfig { entries })
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|s| s.as_str())
    }

    /// The Master Agent this client should attach to (`MAName`).
    pub fn ma_name(&self) -> Result<&str, DietError> {
        self.get("MAName")
            .ok_or_else(|| DietError::Deployment("config missing MAName".into()))
    }

    /// Trace level (0 = quiet), defaulting like DIET to 0.
    pub fn trace_level(&self) -> u32 {
        self.get("traceLevel")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    /// Client max concurrent requests (`maxConcJobs`), default unlimited.
    pub fn max_concurrent(&self) -> Option<usize> {
        self.get("maxConcJobs").and_then(|v| v.parse().ok())
    }

    /// Render back to config-file text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.entries {
            out.push_str(&format!("{k} = {v}\n"));
        }
        out
    }

    pub fn set(&mut self, key: &str, value: impl std::fmt::Display) {
        self.entries.insert(key.to_string(), value.to_string());
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The canonical client config for the paper's deployment.
pub fn paper_client_config() -> DietConfig {
    let mut c = DietConfig::default();
    c.set("MAName", "MA");
    c.set("traceLevel", 1);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# client configuration, as shipped to diet_initialize()
MAName = MA1          # master agent to contact
traceLevel = 5
maxConcJobs = 11
"#;

    #[test]
    fn parses_keys_and_comments() {
        let c = DietConfig::parse(SAMPLE).unwrap();
        assert_eq!(c.ma_name().unwrap(), "MA1");
        assert_eq!(c.trace_level(), 5);
        assert_eq!(c.max_concurrent(), Some(11));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn missing_ma_name_is_an_error() {
        let c = DietConfig::parse("traceLevel = 1").unwrap();
        assert!(matches!(c.ma_name(), Err(DietError::Deployment(_))));
    }

    #[test]
    fn malformed_lines_rejected_with_line_number() {
        match DietConfig::parse("MAName = MA\nnonsense line") {
            Err(DietError::Deployment(msg)) => assert!(msg.contains("line 2")),
            other => panic!("expected Deployment error, got {other:?}"),
        }
        assert!(DietConfig::parse("key =").is_err());
        assert!(DietConfig::parse("= value").is_err());
    }

    #[test]
    fn roundtrip_render_parse() {
        let c = DietConfig::parse(SAMPLE).unwrap();
        let again = DietConfig::parse(&c.render()).unwrap();
        assert_eq!(c, again);
    }

    #[test]
    fn defaults_are_dietlike() {
        let c = DietConfig::parse("MAName = MA").unwrap();
        assert_eq!(c.trace_level(), 0);
        assert_eq!(c.max_concurrent(), None);
        let p = paper_client_config();
        assert_eq!(p.ma_name().unwrap(), "MA");
    }
}
