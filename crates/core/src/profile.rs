//! Problem profiles.
//!
//! "To match client requests with server services, clients and servers must
//! use the same problem description ... a name and ... three integers
//! last_in, last_inout and last_out" (paper §4.2.1). Arguments `0..=last_in`
//! are IN, `last_in+1..=last_inout` INOUT, `last_inout+1..=last_out` OUT.
//!
//! [`ProfileDesc`] is the server-side description (argument kinds only);
//! [`Profile`] is the client-side instance carrying actual values. The
//! paper's `ramsesZoom2` is `alloc("ramsesZoom2", 6, 6, 8)`: seven IN
//! arguments (0..=6), no INOUT, two OUT (7 = result tarball, 8 = error code).

use crate::data::{DietValue, Persistence};
use crate::error::DietError;

/// Direction of one argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgMode {
    In,
    InOut,
    Out,
}

/// Declared shape of one argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgDesc {
    pub mode: ArgMode,
    /// Coarse type tag used for matching ("file", "scalar", …). DIET's
    /// `diet_generic_desc_set` records the same information.
    pub type_tag: ArgTag,
}

/// Coarse argument type (the `diet_data_type_t` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgTag {
    Scalar,
    Vector,
    StringTag,
    File,
    /// Accept anything (used by generic services).
    Any,
}

impl ArgTag {
    fn matches(self, v: &DietValue) -> bool {
        match self {
            ArgTag::Any => true,
            ArgTag::Scalar => matches!(
                v,
                DietValue::ScalarI32(_)
                    | DietValue::ScalarI64(_)
                    | DietValue::ScalarF64(_)
                    | DietValue::ScalarChar(_)
            ),
            ArgTag::Vector => {
                matches!(v, DietValue::VectorF64(_) | DietValue::VectorI32(_))
            }
            ArgTag::StringTag => matches!(v, DietValue::Str(_)),
            ArgTag::File => matches!(v, DietValue::File { .. }),
        }
    }
}

/// Service description: name + argument layout (the `diet_profile_desc_t`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDesc {
    pub service: String,
    pub last_in: isize,
    pub last_inout: isize,
    pub last_out: isize,
    /// One descriptor per argument slot (len = last_out + 1).
    pub args: Vec<ArgDesc>,
}

impl ProfileDesc {
    /// The `diet_profile_desc_alloc` analog. Descriptors default to
    /// `ArgTag::Any`; refine them with [`ProfileDesc::set_arg`].
    ///
    /// # Panics
    /// Panics if the indices are inconsistent (mirrors DIET's assertion).
    pub fn alloc(service: &str, last_in: isize, last_inout: isize, last_out: isize) -> Self {
        assert!(last_in >= -1 && last_inout >= last_in && last_out >= last_inout);
        let n = (last_out + 1).max(0) as usize;
        let args = (0..n)
            .map(|i| ArgDesc {
                mode: if (i as isize) <= last_in {
                    ArgMode::In
                } else if (i as isize) <= last_inout {
                    ArgMode::InOut
                } else {
                    ArgMode::Out
                },
                type_tag: ArgTag::Any,
            })
            .collect();
        ProfileDesc {
            service: service.to_string(),
            last_in,
            last_inout,
            last_out,
            args,
        }
    }

    /// The `diet_generic_desc_set` analog.
    pub fn set_arg(&mut self, index: usize, tag: ArgTag) -> Result<(), DietError> {
        if index >= self.args.len() {
            return Err(DietError::BadArgIndex {
                index,
                last_out: self.last_out.max(0) as usize,
            });
        }
        self.args[index].type_tag = tag;
        Ok(())
    }

    pub fn mode_of(&self, index: usize) -> Option<ArgMode> {
        self.args.get(index).map(|a| a.mode)
    }

    pub fn n_args(&self) -> usize {
        self.args.len()
    }

    /// Check a concrete profile instance against this description.
    pub fn validate(&self, p: &Profile) -> Result<(), DietError> {
        if p.service != self.service {
            return Err(DietError::ProfileMismatch {
                service: self.service.clone(),
                detail: format!("service name {} vs {}", p.service, self.service),
            });
        }
        if p.values.len() != self.args.len() {
            return Err(DietError::ProfileMismatch {
                service: self.service.clone(),
                detail: format!(
                    "argument count {} vs declared {}",
                    p.values.len(),
                    self.args.len()
                ),
            });
        }
        for (i, (v, d)) in p.values.iter().zip(&self.args).enumerate() {
            match d.mode {
                ArgMode::In | ArgMode::InOut => {
                    if v.is_null() {
                        return Err(DietError::ProfileMismatch {
                            service: self.service.clone(),
                            detail: format!("IN/INOUT argument {i} is null"),
                        });
                    }
                    if !d.type_tag.matches(v) {
                        return Err(DietError::ProfileMismatch {
                            service: self.service.clone(),
                            detail: format!("argument {i} has type {}", v.type_name()),
                        });
                    }
                }
                // OUT arguments "should be declared even if their values is
                // set to NULL" — anything (including Null) is fine pre-call.
                ArgMode::Out => {}
            }
        }
        Ok(())
    }
}

/// A concrete call instance (the `diet_profile_t` analog).
///
/// ```
/// use diet_core::profile::{ProfileDesc, Profile, ArgTag};
/// use diet_core::data::{DietValue, Persistence};
///
/// // The paper's ramsesZoom2: alloc("ramsesZoom2", 6, 6, 8).
/// let mut desc = ProfileDesc::alloc("ramsesZoom2", 6, 6, 8);
/// desc.set_arg(1, ArgTag::Scalar).unwrap();
/// let mut profile = Profile::alloc(&desc);
/// profile.set(1, DietValue::ScalarI32(128), Persistence::Volatile).unwrap();
/// assert_eq!(profile.get_i32(1).unwrap(), 128);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    pub service: String,
    pub values: Vec<DietValue>,
    pub persistence: Vec<Persistence>,
}

impl Profile {
    /// The `diet_profile_alloc` analog: every slot starts Null/Volatile.
    pub fn alloc(desc: &ProfileDesc) -> Self {
        Profile {
            service: desc.service.clone(),
            values: vec![DietValue::Null; desc.n_args()],
            persistence: vec![Persistence::Volatile; desc.n_args()],
        }
    }

    /// The `diet_*_set` analog.
    pub fn set(
        &mut self,
        index: usize,
        value: DietValue,
        mode: Persistence,
    ) -> Result<(), DietError> {
        if index >= self.values.len() {
            return Err(DietError::BadArgIndex {
                index,
                last_out: self.values.len().saturating_sub(1),
            });
        }
        self.values[index] = value;
        self.persistence[index] = mode;
        Ok(())
    }

    /// The `diet_*_get` analog.
    pub fn get(&self, index: usize) -> Result<&DietValue, DietError> {
        self.values.get(index).ok_or(DietError::BadArgIndex {
            index,
            last_out: self.values.len().saturating_sub(1),
        })
    }

    /// Typed getter for scalars, with a descriptive error.
    pub fn get_i32(&self, index: usize) -> Result<i32, DietError> {
        let v = self.get(index)?;
        v.as_i32().ok_or(DietError::TypeMismatch {
            index,
            expected: "scalar i32",
            got: v.type_name(),
        })
    }

    pub fn get_f64(&self, index: usize) -> Result<f64, DietError> {
        let v = self.get(index)?;
        v.as_f64().ok_or(DietError::TypeMismatch {
            index,
            expected: "scalar f64",
            got: v.type_name(),
        })
    }

    pub fn get_file(&self, index: usize) -> Result<(&str, &bytes::Bytes), DietError> {
        let v = self.get(index)?;
        v.as_file().ok_or(DietError::TypeMismatch {
            index,
            expected: "file",
            got: v.type_name(),
        })
    }

    /// Total bytes the client ships to the server (IN + INOUT payloads).
    pub fn upload_bytes(&self, desc: &ProfileDesc) -> u64 {
        self.values
            .iter()
            .zip(&desc.args)
            .filter(|(_, d)| matches!(d.mode, ArgMode::In | ArgMode::InOut))
            .map(|(v, _)| v.payload_bytes())
            .sum()
    }

    /// Total bytes the server ships back (INOUT + OUT payloads).
    pub fn download_bytes(&self, desc: &ProfileDesc) -> u64 {
        self.values
            .iter()
            .zip(&desc.args)
            .filter(|(_, d)| matches!(d.mode, ArgMode::InOut | ArgMode::Out))
            .map(|(v, _)| v.payload_bytes())
            .sum()
    }

    /// Ids of every grid-data reference argument — what a data-aware MA
    /// feeds into the replica catalog's locality query.
    pub fn data_ref_ids(&self) -> Vec<String> {
        self.values
            .iter()
            .filter_map(|v| v.as_data_ref().map(str::to_string))
            .collect()
    }
}

/// The paper's `ramsesZoom2` profile description, exactly as §4.2.1 builds
/// it: `alloc("ramsesZoom2", 6, 6, 8)` with a namelist file, six scalars, an
/// OUT result tarball and an OUT error code.
pub fn ramses_zoom2_desc() -> ProfileDesc {
    let mut d = ProfileDesc::alloc("ramsesZoom2", 6, 6, 8);
    d.set_arg(0, ArgTag::File).unwrap(); // parameter (namelist) file
    d.set_arg(1, ArgTag::Scalar).unwrap(); // resolution
    d.set_arg(2, ArgTag::Scalar).unwrap(); // IC size (Mpc/h)
    d.set_arg(3, ArgTag::Scalar).unwrap(); // centre cx
    d.set_arg(4, ArgTag::Scalar).unwrap(); // centre cy
    d.set_arg(5, ArgTag::Scalar).unwrap(); // centre cz
    d.set_arg(6, ArgTag::Scalar).unwrap(); // number of zoom levels (nbBox)
    d.set_arg(7, ArgTag::File).unwrap(); // OUT: result tarball
    d.set_arg(8, ArgTag::Scalar).unwrap(); // OUT: error code
    d
}

/// The first-part service: a namelist file in, halo catalog + error out.
pub fn ramses_zoom1_desc() -> ProfileDesc {
    let mut d = ProfileDesc::alloc("ramsesZoom1", 1, 1, 3);
    d.set_arg(0, ArgTag::File).unwrap(); // namelist
    d.set_arg(1, ArgTag::Scalar).unwrap(); // resolution
    d.set_arg(2, ArgTag::File).unwrap(); // OUT: halo catalog tarball
    d.set_arg(3, ArgTag::Scalar).unwrap(); // OUT: error code
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn alloc_assigns_modes_by_ranges() {
        let d = ProfileDesc::alloc("svc", 1, 2, 4);
        assert_eq!(d.mode_of(0), Some(ArgMode::In));
        assert_eq!(d.mode_of(1), Some(ArgMode::In));
        assert_eq!(d.mode_of(2), Some(ArgMode::InOut));
        assert_eq!(d.mode_of(3), Some(ArgMode::Out));
        assert_eq!(d.mode_of(4), Some(ArgMode::Out));
        assert_eq!(d.mode_of(5), None);
        assert_eq!(d.n_args(), 5);
    }

    #[test]
    fn no_in_args_profile() {
        let d = ProfileDesc::alloc("gen", -1, -1, 0);
        assert_eq!(d.mode_of(0), Some(ArgMode::Out));
        assert_eq!(d.n_args(), 1);
    }

    #[test]
    #[should_panic]
    fn inconsistent_indices_panic() {
        ProfileDesc::alloc("bad", 3, 1, 5);
    }

    #[test]
    fn ramses_zoom2_matches_paper() {
        let d = ramses_zoom2_desc();
        assert_eq!(d.service, "ramsesZoom2");
        assert_eq!(d.n_args(), 9);
        assert_eq!(d.last_in, 6);
        assert_eq!(d.last_inout, 6);
        assert_eq!(d.last_out, 8);
        for i in 0..=6 {
            assert_eq!(d.mode_of(i), Some(ArgMode::In));
        }
        assert_eq!(d.mode_of(7), Some(ArgMode::Out));
        assert_eq!(d.mode_of(8), Some(ArgMode::Out));
    }

    fn filled_zoom2() -> (ProfileDesc, Profile) {
        let d = ramses_zoom2_desc();
        let mut p = Profile::alloc(&d);
        p.set(
            0,
            DietValue::File {
                name: "ramses.nml".into(),
                data: Bytes::from_static(b"&RUN ncpu=32 /"),
            },
            Persistence::Volatile,
        )
        .unwrap();
        for (i, v) in [(1, 128), (2, 100), (3, 50), (4, 50), (5, 50), (6, 2)] {
            p.set(i, DietValue::ScalarI32(v), Persistence::Volatile)
                .unwrap();
        }
        (d, p)
    }

    #[test]
    fn validation_accepts_null_out_args() {
        let (d, p) = filled_zoom2();
        d.validate(&p).unwrap();
    }

    #[test]
    fn validation_rejects_null_in_arg() {
        let d = ramses_zoom2_desc();
        let p = Profile::alloc(&d); // everything Null
        assert!(matches!(
            d.validate(&p),
            Err(DietError::ProfileMismatch { .. })
        ));
    }

    #[test]
    fn validation_rejects_wrong_type() {
        let (d, mut p) = filled_zoom2();
        // Argument 0 must be a file.
        p.set(0, DietValue::ScalarI32(1), Persistence::Volatile)
            .unwrap();
        assert!(d.validate(&p).is_err());
    }

    #[test]
    fn validation_rejects_wrong_service_name() {
        let (d, mut p) = filled_zoom2();
        p.service = "other".into();
        assert!(d.validate(&p).is_err());
    }

    #[test]
    fn typed_getters() {
        let (_, p) = filled_zoom2();
        assert_eq!(p.get_i32(1).unwrap(), 128);
        assert!(p.get_f64(1).is_err());
        let (name, data) = p.get_file(0).unwrap();
        assert_eq!(name, "ramses.nml");
        assert!(!data.is_empty());
        assert!(matches!(p.get_i32(99), Err(DietError::BadArgIndex { .. })));
    }

    #[test]
    fn upload_download_split() {
        let (d, mut p) = filled_zoom2();
        let up = p.upload_bytes(&d);
        // 7 IN args: file (10+14 bytes) + 6 scalars (24 bytes).
        assert_eq!(up, (10 + 14 + 24) as u64);
        assert_eq!(p.download_bytes(&d), 0);
        p.set(
            7,
            DietValue::File {
                name: "out.tgz".into(),
                data: Bytes::from(vec![0u8; 100]),
            },
            Persistence::Volatile,
        )
        .unwrap();
        p.set(8, DietValue::ScalarI32(0), Persistence::Volatile)
            .unwrap();
        assert_eq!(p.download_bytes(&d), 107 + 4);
    }
}
