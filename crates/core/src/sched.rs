//! Plug-in schedulers.
//!
//! The paper's conclusion about its own experiment: "the schedule is not
//! optimal. The equal distribution of the requests does not take into
//! account the machines processing power ... A better makespan could be
//! attained by writing a plug-in scheduler \[2\]." This module provides the
//! plug-in interface and four concrete policies:
//!
//! * [`RoundRobin`] — DIET's observed default behaviour in the paper: with
//!   no execution history, requests are spread evenly over the SeDs
//!   (9 each, one getting 10).
//! * [`RandomSched`] — uniform random pick (a common baseline).
//! * [`MinQueue`] — pick the shortest queue; with heterogeneous speeds this
//!   already beats round-robin on makespan once queues drain unevenly.
//! * [`WeightedSpeed`] — pick the minimum expected-finish-time estimate
//!   (queue backlog / speed), the plug-in the paper hints at.
//! * [`DataLocal`] — data-aware policy (DAGDA lineage): minimize expected
//!   finish *plus* the cost of pulling the request's persistent inputs, so
//!   SeDs already holding the data win unless they are badly backlogged.
//!
//! Schedulers are deliberately pure: `select` reads estimates and returns an
//! index, so the same implementations drive both the live middleware and the
//! campaign simulator — and can be benchmarked head-to-head (experiment E7).

use crate::monitor::Estimate;
use parking_lot::Mutex;

/// The plug-in interface.
pub trait Scheduler: Send + Sync {
    /// Choose one of `candidates` (guaranteed non-empty, all declaring the
    /// service). Returns an index into the slice.
    fn select(&self, candidates: &[Estimate]) -> usize;

    /// Human-readable name for traces and experiment tables.
    fn name(&self) -> &'static str;
}

/// Even spreading in arrival order.
///
/// The cursor is keyed by candidate *identity* (server label), not by a
/// global counter taken modulo `candidates.len()`: a plain counter skews
/// badly the moment the candidate set changes size (a SeD dies or joins),
/// because every pick after the change lands on a shifted index. Tracking
/// when each label was last chosen and always picking the least recently
/// used one preserves exact cyclic order over a stable set and stays evenly
/// spread over whatever set is offered.
#[derive(Debug, Default)]
pub struct RoundRobin {
    state: Mutex<RrState>,
}

#[derive(Debug, Default)]
struct RrState {
    /// Monotonic pick counter; 0 means "never chosen".
    tick: u64,
    /// Label → tick at which it was last chosen.
    last_used: std::collections::HashMap<String, u64>,
}

impl RoundRobin {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn select(&self, candidates: &[Estimate]) -> usize {
        let mut st = self.state.lock();
        let pick = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                (
                    st.last_used.get(&c.server).copied().unwrap_or(0),
                    c.server.clone(),
                )
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        st.tick += 1;
        let tick = st.tick;
        st.last_used.insert(candidates[pick].server.clone(), tick);
        pick
    }

    fn name(&self) -> &'static str {
        "round_robin"
    }
}

/// Uniform random selection with an internal deterministic PRNG (xorshift):
/// reproducible experiments without threading a RNG through the call path.
#[derive(Debug)]
pub struct RandomSched {
    state: Mutex<u64>,
}

impl RandomSched {
    pub fn new(seed: u64) -> Self {
        RandomSched {
            state: Mutex::new(seed.max(1)),
        }
    }
}

impl Scheduler for RandomSched {
    fn select(&self, candidates: &[Estimate]) -> usize {
        let mut s = self.state.lock();
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        (x % candidates.len() as u64) as usize
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Shortest queue first; ties broken by server label for determinism.
#[derive(Debug, Default)]
pub struct MinQueue;

impl Scheduler for MinQueue {
    fn select(&self, candidates: &[Estimate]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.queue_length
                    .cmp(&b.queue_length)
                    .then_with(|| a.server.cmp(&b.server))
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "min_queue"
    }
}

/// Minimum expected finish time: `(queue+1) · task_time / speed`. Uses the
/// observed mean duration when available, otherwise falls back to pure
/// speed ranking — so it behaves sensibly even on the paper's cold start.
#[derive(Debug, Default)]
pub struct WeightedSpeed;

impl Scheduler for WeightedSpeed {
    fn select(&self, candidates: &[Estimate]) -> usize {
        // Durations from different servers are only comparable when every
        // candidate has one; on a (partially) cold start fall back to the
        // unit-cost ranking for all of them, otherwise the one server that
        // happens to have history is ranked in different units from the
        // rest. Both rankings live in `Estimate` — never inline the formula.
        let all_known = candidates.iter().all(|c| c.known_mean_duration.is_some());
        let key = |c: &Estimate| -> f64 {
            if all_known {
                c.expected_finish()
            } else {
                c.expected_finish_unit()
            }
        };
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                key(a)
                    .partial_cmp(&key(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.server.cmp(&b.server))
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "weighted_speed"
    }
}

/// Data-aware selection: minimum transfer-cost-adjusted expected finish,
/// `expected_finish + data_miss_bytes / bandwidth`. A SeD that already holds
/// a request's persistent inputs has `data_miss_bytes == 0` and pays no
/// transfer term, so locality wins whenever queues are comparable; with no
/// catalog information every candidate's term is zero and the policy
/// degrades to plain minimum expected finish. Ties break by label.
#[derive(Debug)]
pub struct DataLocal {
    /// Assumed SeD-to-SeD bandwidth, bytes/second, used to convert missing
    /// bytes into seconds comparable with `expected_finish`.
    pub bandwidth_bps: f64,
}

impl DataLocal {
    pub fn new(bandwidth_bps: f64) -> Self {
        DataLocal { bandwidth_bps }
    }
}

impl Default for DataLocal {
    /// 1 Gbit/s — the paper's VTHD-era inter-site links.
    fn default() -> Self {
        DataLocal::new(125e6)
    }
}

impl Scheduler for DataLocal {
    fn select(&self, candidates: &[Estimate]) -> usize {
        // Same comparability guard as WeightedSpeed: mixed known/unknown
        // durations are not in the same units, so fall back to unit-cost
        // ranking for the compute term — the transfer term always applies.
        // The compute term is `Estimate`'s, not a local re-derivation: an
        // inline copy here once dropped `probe_rtt` and drifted from
        // `expected_finish` (see `monitor.rs`).
        let all_known = candidates.iter().all(|c| c.known_mean_duration.is_some());
        let key = |c: &Estimate| -> f64 {
            let compute = if all_known {
                c.expected_finish()
            } else {
                c.expected_finish_unit()
            };
            compute + c.data_miss_bytes as f64 / self.bandwidth_bps.max(1.0)
        };
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                key(a)
                    .partial_cmp(&key(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.server.cmp(&b.server))
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "data_local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(server: &str, speed: f64, queue: usize) -> Estimate {
        Estimate {
            server: server.into(),
            speed_factor: speed,
            free_memory: 1 << 30,
            queue_length: queue,
            ..Estimate::default()
        }
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let s = RoundRobin::new();
        let c = vec![est("a", 1.0, 0), est("b", 1.0, 0), est("c", 1.0, 0)];
        let picks: Vec<usize> = (0..9).map(|_| s.select(&c)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_100_over_11_gives_paper_distribution() {
        // The paper's Figure 4: "each SED received 9 requests (one of them
        // received 10)".
        let s = RoundRobin::new();
        let c: Vec<Estimate> = (0..11).map(|i| est(&format!("s{i}"), 1.0, 0)).collect();
        let mut counts = [0usize; 11];
        for _ in 0..100 {
            counts[s.select(&c)] += 1;
        }
        counts.sort_unstable();
        assert_eq!(counts[..10], [9; 10]);
        assert_eq!(counts[10], 10);
    }

    #[test]
    fn round_robin_stays_even_when_candidate_set_shrinks() {
        // Regression: the old `global_counter % candidates.len()` cursor
        // skewed as soon as the set changed size — after removing one of
        // three servers, the survivors were no longer alternated evenly.
        let s = RoundRobin::new();
        let full = vec![est("a", 1.0, 0), est("b", 1.0, 0), est("c", 1.0, 0)];
        // Two picks over the full set, then "a" dies.
        assert_eq!(s.select(&full), 0);
        assert_eq!(s.select(&full), 1);
        let survivors = vec![est("b", 1.0, 0), est("c", 1.0, 0)];
        let mut counts = [0usize; 2];
        for _ in 0..50 {
            counts[s.select(&survivors)] += 1;
        }
        assert_eq!(counts, [25, 25], "survivors must alternate evenly");
    }

    #[test]
    fn round_robin_cycles_after_candidate_rejoins() {
        let s = RoundRobin::new();
        let full = vec![est("a", 1.0, 0), est("b", 1.0, 0), est("c", 1.0, 0)];
        let shrunk = vec![est("a", 1.0, 0), est("c", 1.0, 0)];
        for _ in 0..6 {
            s.select(&shrunk);
        }
        // "b" has been out of rotation; on rejoin it is the least recently
        // used label and must be picked first.
        assert_eq!(s.select(&full), 1);
    }

    #[test]
    fn min_queue_picks_shortest() {
        let s = MinQueue;
        let c = vec![est("a", 1.0, 5), est("b", 1.0, 1), est("c", 1.0, 3)];
        assert_eq!(s.select(&c), 1);
    }

    #[test]
    fn min_queue_breaks_ties_by_label() {
        let s = MinQueue;
        let c = vec![est("zz", 1.0, 2), est("aa", 1.0, 2)];
        assert_eq!(s.select(&c), 1);
    }

    #[test]
    fn weighted_speed_prefers_fast_server_on_cold_start() {
        let s = WeightedSpeed;
        let c = vec![est("slow", 0.8, 0), est("fast", 1.15, 0)];
        assert_eq!(s.select(&c), 1);
    }

    #[test]
    fn weighted_speed_accounts_for_backlog() {
        let s = WeightedSpeed;
        // fast but deep queue vs slow but idle: (4+1)/1.15 = 4.3 vs 1/0.8 = 1.25.
        let c = vec![est("fast", 1.15, 4), est("slow", 0.8, 0)];
        assert_eq!(s.select(&c), 1);
    }

    #[test]
    fn weighted_speed_uses_known_durations() {
        let s = WeightedSpeed;
        let mut a = est("a", 1.0, 1);
        a.known_mean_duration = Some(100.0); // (1+1)*100 = 200
        let mut b = est("b", 1.0, 0);
        b.known_mean_duration = Some(300.0); // (0+1)*300 = 300
        assert_eq!(s.select(&[a, b]), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let c: Vec<Estimate> = (0..5).map(|i| est(&format!("s{i}"), 1.0, 0)).collect();
        let a: Vec<usize> = {
            let s = RandomSched::new(7);
            (0..20).map(|_| s.select(&c)).collect()
        };
        let b: Vec<usize> = {
            let s = RandomSched::new(7);
            (0..20).map(|_| s.select(&c)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 5));
        // Not all identical (it does spread).
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn data_local_prefers_the_holder() {
        let s = DataLocal::new(100e6);
        // Both idle and equally fast, but "far" would pull 500 MB (5 s at
        // 100 MB/s) while "near" holds the data.
        let mut near = est("near", 1.0, 0);
        near.data_local_bytes = 500 << 20;
        let mut far = est("far", 1.0, 0);
        far.data_miss_bytes = 500 << 20;
        assert_eq!(s.select(&[far.clone(), near.clone()]), 1);
        // A deep enough backlog on the holder flips the decision: 9 queued
        // unit tasks (~9 s) beat the ~5.2 s transfer.
        near.queue_length = 9;
        assert_eq!(s.select(&[far, near]), 0);
    }

    #[test]
    fn data_local_without_catalog_info_is_expected_finish() {
        let s = DataLocal::default();
        // No data terms anywhere: degenerates to WeightedSpeed's cold-start
        // ranking — the faster idle server wins.
        let c = vec![est("slow", 0.8, 0), est("fast", 1.15, 0)];
        assert_eq!(s.select(&c), 1);
        let c = vec![est("fast", 1.15, 4), est("slow", 0.8, 0)];
        assert_eq!(s.select(&c), 1);
    }

    #[test]
    fn data_local_fallback_is_exactly_expected_finish_unit() {
        // Regression for the formula drift: with no catalog info the
        // DataLocal compute term must equal `Estimate::expected_finish_unit`
        // — including the probe_rtt term an inline copy once dropped. A
        // nearby slow server must beat a distant fast one when the rtt gap
        // dominates the speed gap.
        let s = DataLocal::default();
        let mut near = est("near", 1.0, 0); // 1.0 + 0.0 = 1.0
        near.probe_rtt = 0.0;
        let mut far = est("far", 1.25, 0); // 0.8 + 0.5 = 1.3
        far.probe_rtt = 0.5;
        assert_eq!(s.select(&[far.clone(), near.clone()]), 1);
        // WeightedSpeed ranks the same pair identically: one formula.
        assert_eq!(WeightedSpeed.select(&[far.clone(), near.clone()]), 1);
        assert_eq!(near.expected_finish_unit(), 1.0);
        assert_eq!(far.expected_finish_unit(), 0.8 + 0.5);
        // With an unknown duration, expected_finish degenerates to the unit
        // ranking too — the fallback is the same function, not a copy.
        assert_eq!(near.expected_finish(), near.expected_finish_unit());
    }

    #[test]
    fn data_local_breaks_ties_by_label() {
        let s = DataLocal::default();
        let c = vec![est("zz", 1.0, 0), est("aa", 1.0, 0)];
        assert_eq!(s.select(&c), 1);
    }

    #[test]
    fn schedulers_have_names() {
        assert_eq!(RoundRobin::new().name(), "round_robin");
        assert_eq!(MinQueue.name(), "min_queue");
        assert_eq!(WeightedSpeed.name(), "weighted_speed");
        assert_eq!(RandomSched::new(1).name(), "random");
        assert_eq!(DataLocal::default().name(), "data_local");
    }
}
