//! Standalone campaign jobserver — the durable task-queue process.
//!
//! Usage:
//! `diet_jobserver --dir DIR --ma ADDR [--listen ADDR] [--sed LABEL=ADDR]...
//!                 [--workers N] [--max-attempts N] [--snapshot-every N]
//!                 [--heartbeat-ms N] [--attempt-timeout-ms N] [--telemetry ADDR]`
//!
//! Recovers the campaign store under `DIR` (WAL + snapshot), connects to
//! the MA at `--ma` for finding, registers each `--sed LABEL=ADDR` pair in
//! its SeD pool for solving, and serves the campaign protocol
//! (SubmitTasks / AttachCampaign / CampaignProgress / TaskStatus) on
//! `--listen` (default `127.0.0.1:0`; the bound address is printed, so a
//! parent process can scrape it from stdout). Kill it at any point:
//! restarting with the same `--dir` resumes the campaigns — completed
//! tasks stay done, in-flight tasks are re-dispatched.

use diet_core::jobserver::{serve_jobserver_over_tcp, JobServer, JobServerConfig};
use diet_core::transport::{ServerConfig, TcpSedPool};
use diet_core::{Obs, RemoteAgentClient, TelemetryConfig, TelemetryFlusher};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: diet_jobserver --dir DIR --ma ADDR [--listen ADDR] [--sed LABEL=ADDR]...\n\
         \x20                     [--workers N] [--max-attempts N] [--snapshot-every N]\n\
         \x20                     [--heartbeat-ms N] [--attempt-timeout-ms N] [--telemetry ADDR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut dir = None;
    let mut ma_addr = None;
    let mut seds: Vec<(String, String)> = Vec::new();
    let mut workers = 4usize;
    let mut max_attempts = 8u32;
    let mut snapshot_every = 4096u64;
    let mut heartbeat_ms = 500u64;
    let mut attempt_timeout_ms = 10_000u64;
    let mut telemetry: Option<String> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut next = || argv.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--listen" => listen = next(),
            "--dir" => dir = Some(next()),
            "--ma" => ma_addr = Some(next()),
            "--sed" => {
                let spec = next();
                let Some((label, addr)) = spec.split_once('=') else {
                    usage()
                };
                seds.push((label.to_string(), addr.to_string()));
            }
            "--workers" => workers = next().parse().unwrap_or_else(|_| usage()),
            "--max-attempts" => max_attempts = next().parse().unwrap_or_else(|_| usage()),
            "--snapshot-every" => snapshot_every = next().parse().unwrap_or_else(|_| usage()),
            "--heartbeat-ms" => heartbeat_ms = next().parse().unwrap_or_else(|_| usage()),
            "--attempt-timeout-ms" => {
                attempt_timeout_ms = next().parse().unwrap_or_else(|_| usage())
            }
            "--telemetry" => telemetry = Some(next()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    let Some(ma_addr) = ma_addr else { usage() };
    let ma_addr: std::net::SocketAddr = ma_addr.parse().unwrap_or_else(|e| {
        eprintln!("diet_jobserver: bad --ma address: {e}");
        std::process::exit(2);
    });

    let obs = Arc::new(Obs::new());
    let ma = RemoteAgentClient::with_timeout("ma", ma_addr, Duration::from_secs(5));
    let pool = Arc::new(TcpSedPool::new());
    for (label, addr) in &seds {
        match addr.parse() {
            Ok(a) => pool.register(label, a),
            Err(e) => {
                eprintln!("diet_jobserver: bad --sed address {addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = JobServerConfig::new(&dir);
    cfg.workers = workers.max(1);
    cfg.max_task_attempts = max_attempts.max(1);
    cfg.snapshot_every = snapshot_every.max(1);
    cfg.retry.attempt_timeout = Duration::from_millis(attempt_timeout_ms.max(1));
    cfg.heartbeat = (heartbeat_ms > 0).then(|| Duration::from_millis(heartbeat_ms));

    let js = JobServer::spawn(cfg, ma, pool, obs.clone()).unwrap_or_else(|e| {
        eprintln!("diet_jobserver: cannot open store under {dir}: {e}");
        std::process::exit(1);
    });
    let server = serve_jobserver_over_tcp(
        js,
        &listen,
        ServerConfig {
            workers: 4,
            obs: Some(obs.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("diet_jobserver: cannot bind {listen}: {e}");
        std::process::exit(1);
    });

    let _flusher = telemetry.as_ref().and_then(|addr| {
        let collector: std::net::SocketAddr = addr.parse().ok()?;
        Some(TelemetryFlusher::spawn(
            obs.clone(),
            TelemetryConfig::new(collector, "jobserver", "jobserver/0")
                .interval(Duration::from_millis(500)),
        ))
    });

    // The parent (or operator) scrapes this line for the bound port.
    println!("diet_jobserver listening on {}", server.local_addr);

    // Serve until killed; dispatchers, heartbeat, and the reactor do the
    // work. Recovery after `kill -9` is the tested path.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
