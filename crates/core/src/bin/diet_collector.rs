//! Standalone telemetry collector — the deployment's LogCentral process.
//!
//! Usage: `diet_collector [--listen ADDR] [--workers N]`
//!
//! Binds the collector on `ADDR` (default `127.0.0.1:9464`, port 0 picks an
//! ephemeral port and prints it) and serves until killed. Every DIET
//! process configured with a `TelemetryFlusher` pointed here ships its
//! spans and metric deltas; scrape the merged state with a correlated
//! `DumpMetricsRid` request — `""`/`"prometheus"`, `"chrome"`, or
//! `"topology"`.

use diet_core::transport::ServerConfig;
use diet_core::{serve_collector_over_tcp, Collector};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: diet_collector [--listen ADDR] [--workers N]");
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:9464".to_string();
    let mut workers = 4usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--listen" => listen = argv.next().unwrap_or_else(|| usage()),
            "--workers" => {
                workers = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let collector = Arc::new(Collector::new());
    let server = serve_collector_over_tcp(
        collector,
        &listen,
        ServerConfig {
            workers: workers.max(1),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("diet_collector: cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    println!("diet_collector listening on {}", server.local_addr);

    // Serve until killed; the reactor does all the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
