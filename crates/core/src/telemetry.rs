//! Per-process telemetry shipping — the LogComponent half of the paper's
//! LogService/LogCentral stack.
//!
//! Since PR 6 split the MA/LA tree into separate TCP processes, each
//! component's [`Obs`] is an island: spans and metrics are visible only to
//! whoever holds that process's `Arc`. A [`TelemetryFlusher`] reconnects
//! the islands: a background thread drains the process's span ring
//! ([`Obs::drain_spans`]) and metric deltas ([`obs::Registry::delta_since`])
//! on an interval — and once more on shutdown — and ships them to the
//! collector process (`crate::collector`) as [`Message::PushSpans`] /
//! [`Message::PushMetricDeltas`] batches tagged with this process's
//! identity ([`ProcessSource`]).
//!
//! Delivery rides one multiplexed connection: pushes carry correlation ids
//! and the collector acks each batch with [`Message::PushAck`], so
//! [`TelemetryFlusher::flush_now`] is synchronous — after it returns `Ok`,
//! the collector has merged the batch. Failed flushes count into the local
//! `diet_telemetry_flush_errors_total` counter (which itself ships on the
//! next successful flush); the spans drained for a failed push are lost,
//! which the span-drop accounting makes visible rather than silent.

use crate::codec::{Message, ProcessSource};
use crate::error::DietError;
use crate::transport::MuxConn;
use obs::{DeltaTracker, Obs};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where and as whom a process reports its telemetry.
#[derive(Clone)]
pub struct TelemetryConfig {
    /// Address of the collector process.
    pub collector: SocketAddr,
    /// Component kind: "ma", "la", "sed", "client".
    pub role: String,
    /// Component label (a SeD's `lyon/0`, an agent's site name, …).
    pub label: String,
    /// Deployment site, for the collector's topology view (may be empty).
    pub site: String,
    /// How often the background thread flushes.
    pub interval: Duration,
}

impl TelemetryConfig {
    pub fn new(collector: SocketAddr, role: &str, label: &str) -> Self {
        TelemetryConfig {
            collector,
            role: role.to_string(),
            label: label.to_string(),
            site: String::new(),
            interval: Duration::from_millis(500),
        }
    }

    pub fn site(mut self, site: &str) -> Self {
        self.site = site.to_string();
        self
    }

    pub fn interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }
}

struct FlusherShared {
    obs: Arc<Obs>,
    source: ProcessSource,
    collector: SocketAddr,
    /// Pooled connection to the collector, redialed when dead. The flush
    /// thread and any `flush_now` caller share it.
    mux: Mutex<Option<Arc<MuxConn>>>,
    /// Cumulative-value memory for delta shipping; held across flushes so
    /// every increment ships exactly once.
    tracker: Mutex<DeltaTracker>,
    next_id: AtomicU64,
    flush_errors: AtomicU64,
}

impl FlusherShared {
    fn mux(&self) -> Result<Arc<MuxConn>, DietError> {
        let mut slot = self.mux.lock();
        if let Some(mux) = slot.as_ref() {
            if !mux.is_dead() {
                return Ok(mux.clone());
            }
        }
        let fresh = Arc::new(MuxConn::connect(self.collector)?);
        *slot = Some(fresh.clone());
        Ok(fresh)
    }

    fn rid(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn push(&self, m: &Message, request_id: u64) -> Result<(), DietError> {
        let mux = self.mux()?;
        match mux.request(m, request_id, Duration::from_secs(5))? {
            Message::PushAck { .. } => Ok(()),
            Message::Busy { .. } => Err(DietError::Busy),
            other => Err(DietError::Transport(format!(
                "unexpected reply to telemetry push: {other:?}"
            ))),
        }
    }

    /// One flush: drain spans, compute metric deltas, ship both, wait for
    /// the acks. Spans ship first so the delta batch includes any
    /// span-drop accounting the drain just updated.
    fn flush(&self) -> Result<(), DietError> {
        let spans = self.obs.drain_spans();
        if !spans.is_empty() {
            let request_id = self.rid();
            self.push(
                &Message::PushSpans {
                    request_id,
                    source: self.source.clone(),
                    spans,
                },
                request_id,
            )?;
        }
        let deltas = {
            let mut tracker = self.tracker.lock();
            self.obs.metrics.delta_since(&mut tracker)
        };
        if !deltas.is_empty() {
            let request_id = self.rid();
            self.push(
                &Message::PushMetricDeltas {
                    request_id,
                    source: self.source.clone(),
                    deltas,
                },
                request_id,
            )?;
        }
        Ok(())
    }

    fn flush_counted(&self) {
        if self.flush().is_err() {
            self.flush_errors.fetch_add(1, Ordering::Relaxed);
            self.obs
                .metrics
                .counter("diet_telemetry_flush_errors_total")
                .inc();
        }
    }
}

/// Background flusher for one process's [`Obs`]. Construct with
/// [`TelemetryFlusher::spawn`]; drop (or call
/// [`shutdown`](TelemetryFlusher::shutdown)) to stop the thread after one
/// final flush, so short-lived processes still report their tail.
pub struct TelemetryFlusher {
    shared: Arc<FlusherShared>,
    stop_tx: Option<Sender<()>>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryFlusher {
    /// Start flushing `obs` to `cfg.collector` every `cfg.interval`.
    pub fn spawn(obs: Arc<Obs>, cfg: TelemetryConfig) -> Self {
        let shared = Arc::new(FlusherShared {
            obs,
            source: ProcessSource {
                role: cfg.role,
                label: cfg.label,
                pid: std::process::id(),
                site: cfg.site,
            },
            collector: cfg.collector,
            mux: Mutex::new(None),
            tracker: Mutex::new(DeltaTracker::new()),
            next_id: AtomicU64::new(0),
            flush_errors: AtomicU64::new(0),
        });
        let (stop_tx, stop_rx) = channel::<()>();
        let worker = shared.clone();
        let interval = cfg.interval;
        let thread = std::thread::spawn(move || loop {
            match stop_rx.recv_timeout(interval) {
                // Stop requested (or the flusher was leaked and its sender
                // dropped): one final flush ships the tail, then exit.
                Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                    worker.flush_counted();
                    return;
                }
                Err(RecvTimeoutError::Timeout) => worker.flush_counted(),
            }
        });
        TelemetryFlusher {
            shared,
            stop_tx: Some(stop_tx),
            thread: Some(thread),
        }
    }

    /// The identity batches from this flusher carry.
    pub fn source(&self) -> &ProcessSource {
        &self.shared.source
    }

    /// Synchronous flush: drains and ships now, returning once the
    /// collector has acked (or the push failed). Deterministic tests hang
    /// off this instead of sleeping for the interval.
    pub fn flush_now(&self) -> Result<(), DietError> {
        self.shared.flush()
    }

    /// Flushes that failed end to end (connect, push, or ack).
    pub fn flush_errors(&self) -> u64 {
        self.shared.flush_errors.load(Ordering::Relaxed)
    }

    /// Stop the background thread after one final flush. Called by `Drop`;
    /// explicit calls make shutdown ordering visible in deployment code.
    pub fn shutdown(&mut self) {
        if let Some(tx) = self.stop_tx.take() {
            let _ = tx.send(());
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TelemetryFlusher {
    fn drop(&mut self) {
        self.shutdown();
    }
}
