//! Deployment descriptions.
//!
//! "For performance reasons, the hierarchy of agents should be deployed
//! depending on the underlying network topology." A [`DeploymentSpec`]
//! captures the mapping the paper used on Grid'5000 — one MA, one LA per
//! cluster, two SeDs per cluster (one for a restricted cluster) — validates
//! it, and instantiates the live hierarchy given a service-table factory.

use crate::agent::{AgentNode, MasterAgent};
use crate::error::DietError;
use crate::sched::Scheduler;
use crate::sed::{SedConfig, SedHandle, ServiceTable};
use std::collections::HashSet;
use std::sync::Arc;

/// One SeD placement.
#[derive(Debug, Clone)]
pub struct SedSpec {
    pub label: String,
    pub speed_factor: f64,
}

/// One Local Agent with its SeDs.
#[derive(Debug, Clone)]
pub struct LaSpec {
    pub name: String,
    pub seds: Vec<SedSpec>,
}

/// A full deployment: MA + LAs.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    pub ma_name: String,
    pub las: Vec<LaSpec>,
}

impl DeploymentSpec {
    /// The paper's deployment shape: 6 LAs (2 Lyon clusters, Lille, Nancy,
    /// Toulouse, Sophia), 11 SeDs with the given per-cluster speed factors.
    pub fn paper_shape(speeds: &[(&str, f64, usize)]) -> Self {
        let las = speeds
            .iter()
            .map(|(name, speed, n_seds)| LaSpec {
                name: format!("LA-{name}"),
                seds: (0..*n_seds)
                    .map(|i| SedSpec {
                        label: format!("{name}/{i}"),
                        speed_factor: *speed,
                    })
                    .collect(),
            })
            .collect();
        DeploymentSpec {
            ma_name: "MA".into(),
            las,
        }
    }

    pub fn total_seds(&self) -> usize {
        self.las.iter().map(|l| l.seds.len()).sum()
    }

    /// Validate: non-empty, unique labels, positive speeds, every LA serves.
    pub fn validate(&self) -> Result<(), DietError> {
        if self.las.is_empty() {
            return Err(DietError::Deployment("no local agents".into()));
        }
        let mut labels = HashSet::new();
        for la in &self.las {
            if la.seds.is_empty() {
                return Err(DietError::Deployment(format!(
                    "local agent {} has no SeDs",
                    la.name
                )));
            }
            for sed in &la.seds {
                if sed.speed_factor <= 0.0 {
                    return Err(DietError::Deployment(format!(
                        "SeD {} has non-positive speed",
                        sed.label
                    )));
                }
                if !labels.insert(sed.label.clone()) {
                    return Err(DietError::Deployment(format!(
                        "duplicate SeD label {}",
                        sed.label
                    )));
                }
            }
        }
        Ok(())
    }

    /// Instantiate the hierarchy: spawn every SeD with a service table from
    /// `table_for`, group them under their LAs, and stand up the MA with the
    /// given scheduler. Returns the MA and all SeD handles (for shutdown).
    pub fn instantiate(
        &self,
        scheduler: Arc<dyn Scheduler>,
        mut table_for: impl FnMut(&SedSpec) -> ServiceTable,
    ) -> Result<(Arc<MasterAgent>, Vec<Arc<SedHandle>>), DietError> {
        self.validate()?;
        let mut all = Vec::new();
        let mut las = Vec::new();
        for la in &self.las {
            let mut seds = Vec::new();
            for spec in &la.seds {
                let sed = SedHandle::spawn(
                    SedConfig::new(&spec.label, spec.speed_factor),
                    table_for(spec),
                );
                all.push(sed.clone());
                seds.push(sed);
            }
            las.push(AgentNode::leaf(&la.name, seds));
        }
        Ok((MasterAgent::new(&self.ma_name, las, scheduler), all))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobin;

    fn paper_spec() -> DeploymentSpec {
        DeploymentSpec::paper_shape(&[
            ("lyon-capricorne", 0.80, 2),
            ("lyon-sagittaire", 1.00, 1),
            ("lille-chti", 0.90, 2),
            ("nancy-grelon", 1.15, 2),
            ("toulouse-violette", 0.80, 2),
            ("sophia-helios", 1.10, 2),
        ])
    }

    #[test]
    fn paper_shape_has_eleven_seds_and_six_las() {
        let d = paper_spec();
        assert_eq!(d.las.len(), 6);
        assert_eq!(d.total_seds(), 11);
        d.validate().unwrap();
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut d = paper_spec();
        d.las[0].seds[0].label = d.las[1].seds[0].label.clone();
        assert!(matches!(d.validate(), Err(DietError::Deployment(_))));
    }

    #[test]
    fn empty_la_rejected() {
        let mut d = paper_spec();
        d.las[2].seds.clear();
        assert!(d.validate().is_err());
    }

    #[test]
    fn non_positive_speed_rejected() {
        let mut d = paper_spec();
        d.las[0].seds[0].speed_factor = 0.0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn instantiate_builds_working_hierarchy() {
        let d = paper_spec();
        let (ma, seds) = d
            .instantiate(Arc::new(RoundRobin::new()), |_| ServiceTable::init(1))
            .unwrap();
        assert_eq!(ma.sed_count(), 11);
        assert_eq!(seds.len(), 11);
        // No services registered: submit must say not-found.
        assert!(ma.submit("anything").is_err());
        for s in seds {
            s.shutdown();
        }
    }
}
