//! Deployment descriptions.
//!
//! "For performance reasons, the hierarchy of agents should be deployed
//! depending on the underlying network topology." A [`DeploymentSpec`]
//! captures the mapping the paper used on Grid'5000 — one MA, one LA per
//! cluster, two SeDs per cluster (one for a restricted cluster) — validates
//! it, and instantiates the live hierarchy given a service-table factory.

use crate::agent::{AgentNode, MasterAgent};
use crate::dag::{DagEngine, DagEngineConfig};
use crate::dagda::ReplicaCatalog;
use crate::error::DietError;
use crate::hierarchy::{
    serve_agent_over_tcp, serve_ma_over_tcp_with_dag, serve_sed_over_tcp, AgentConfig,
    RemoteAgentClient,
};
use crate::sched::Scheduler;
use crate::sed::{SedConfig, SedHandle, ServiceTable};
use crate::telemetry::{TelemetryConfig, TelemetryFlusher};
use crate::transport::{TcpSedPool, TcpServer};
use obs::Obs;
use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// One SeD placement.
#[derive(Debug, Clone)]
pub struct SedSpec {
    pub label: String,
    pub speed_factor: f64,
}

/// One Local Agent with its SeDs.
#[derive(Debug, Clone)]
pub struct LaSpec {
    pub name: String,
    pub seds: Vec<SedSpec>,
}

/// A full deployment: MA + LAs.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    pub ma_name: String,
    pub las: Vec<LaSpec>,
}

impl DeploymentSpec {
    /// The paper's deployment shape: 6 LAs (2 Lyon clusters, Lille, Nancy,
    /// Toulouse, Sophia), 11 SeDs with the given per-cluster speed factors.
    pub fn paper_shape(speeds: &[(&str, f64, usize)]) -> Self {
        let las = speeds
            .iter()
            .map(|(name, speed, n_seds)| LaSpec {
                name: format!("LA-{name}"),
                seds: (0..*n_seds)
                    .map(|i| SedSpec {
                        label: format!("{name}/{i}"),
                        speed_factor: *speed,
                    })
                    .collect(),
            })
            .collect();
        DeploymentSpec {
            ma_name: "MA".into(),
            las,
        }
    }

    pub fn total_seds(&self) -> usize {
        self.las.iter().map(|l| l.seds.len()).sum()
    }

    /// Validate: non-empty, unique labels, positive speeds, every LA serves.
    pub fn validate(&self) -> Result<(), DietError> {
        if self.las.is_empty() {
            return Err(DietError::Deployment("no local agents".into()));
        }
        let mut labels = HashSet::new();
        for la in &self.las {
            if la.seds.is_empty() {
                return Err(DietError::Deployment(format!(
                    "local agent {} has no SeDs",
                    la.name
                )));
            }
            for sed in &la.seds {
                if sed.speed_factor <= 0.0 {
                    return Err(DietError::Deployment(format!(
                        "SeD {} has non-positive speed",
                        sed.label
                    )));
                }
                if !labels.insert(sed.label.clone()) {
                    return Err(DietError::Deployment(format!(
                        "duplicate SeD label {}",
                        sed.label
                    )));
                }
            }
        }
        Ok(())
    }

    /// Instantiate the hierarchy: spawn every SeD with a service table from
    /// `table_for`, group them under their LAs, and stand up the MA with the
    /// given scheduler. Returns the MA and all SeD handles (for shutdown).
    pub fn instantiate(
        &self,
        scheduler: Arc<dyn Scheduler>,
        mut table_for: impl FnMut(&SedSpec) -> ServiceTable,
    ) -> Result<(Arc<MasterAgent>, Vec<Arc<SedHandle>>), DietError> {
        self.validate()?;
        let mut all = Vec::new();
        let mut las = Vec::new();
        for la in &self.las {
            let mut seds = Vec::new();
            for spec in &la.seds {
                let sed = SedHandle::spawn(
                    SedConfig::new(&spec.label, spec.speed_factor),
                    table_for(spec),
                );
                all.push(sed.clone());
                seds.push(sed);
            }
            las.push(AgentNode::leaf(&la.name, seds));
        }
        Ok((MasterAgent::new(&self.ma_name, las, scheduler), all))
    }
}

// ------------------------------------------------------- distributed topology

/// How a distributed deployment reports to a telemetry collector: every
/// component (MA, each LA, each SeD) gets its own private [`Obs`] and a
/// [`TelemetryFlusher`] shipping it to `collector` every `interval`.
#[derive(Debug, Clone)]
pub struct TelemetrySpec {
    pub collector: SocketAddr,
    pub interval: Duration,
}

/// The SeD-spawning callback threaded through the recursive site builder:
/// spawns and serves one site's SeDs, returning their local handles.
type SpawnSeds<'a> = dyn FnMut(
        &str,
        &[SedSpec],
        &mut Vec<Arc<SedHandle>>,
        &mut Vec<TcpServer>,
        &mut Vec<TelemetryFlusher>,
    ) -> Result<Vec<Arc<SedHandle>>, DietError>
    + 'a;

/// One simulated site in a distributed topology: an agent process serving
/// its local SeD processes and the agents of its child sites. Nesting
/// `children` builds arbitrarily deep trees (the paper's multi-site
/// Grid'5000 shape).
#[derive(Debug, Clone)]
pub struct TcpSiteSpec {
    pub name: String,
    pub seds: Vec<SedSpec>,
    pub children: Vec<TcpSiteSpec>,
}

/// A whole multi-site deployment to stand up as local TCP processes: one
/// MA process at the top (optionally with MA-local SeDs — a depth-1
/// hierarchy), one agent process per site, one server per SeD. Every edge
/// is a real socket; nothing shares memory except through the wire.
#[derive(Debug, Clone)]
pub struct TcpTopologySpec {
    pub ma_name: String,
    /// SeDs attached directly to the MA (depth-1 deployments).
    pub ma_seds: Vec<SedSpec>,
    pub sites: Vec<TcpSiteSpec>,
    /// Per-agent concurrent-forward cap (the `Busy` backpressure bound).
    pub admission_limit: Option<usize>,
    /// Per-hop deadline: how long any agent waits on one child subtree.
    pub child_timeout_ms: u64,
}

impl TcpTopologySpec {
    /// A linear chain of the given depth with `seds_per_leaf` SeDs at the
    /// bottom — the shape the finding-depth experiment sweeps. Depth 1 is
    /// an MA with local SeDs; depth `d` adds `d - 1` agent hops above them.
    pub fn chain(depth: usize, seds_per_leaf: usize) -> Self {
        let seds = |d: usize| {
            (0..seds_per_leaf)
                .map(|i| SedSpec {
                    label: format!("d{d}/s{i}"),
                    speed_factor: 1.0,
                })
                .collect::<Vec<_>>()
        };
        let mut spec = TcpTopologySpec {
            ma_name: format!("MA-d{depth}"),
            ma_seds: vec![],
            sites: vec![],
            admission_limit: None,
            child_timeout_ms: 2_000,
        };
        if depth <= 1 {
            spec.ma_seds = seds(depth);
            return spec;
        }
        // Build the chain bottom-up: the leaf site holds the SeDs, each
        // level above wraps it as its only child.
        let mut site = TcpSiteSpec {
            name: format!("la{}", depth - 1),
            seds: seds(depth),
            children: vec![],
        };
        for level in (1..depth - 1).rev() {
            site = TcpSiteSpec {
                name: format!("la{level}"),
                seds: vec![],
                children: vec![site],
            };
        }
        spec.sites = vec![site];
        spec
    }

    /// Validate: at least one SeD somewhere, unique labels and site names,
    /// positive speeds, no empty sites (a site must hold SeDs or children).
    pub fn validate(&self) -> Result<(), DietError> {
        fn walk(
            site: &TcpSiteSpec,
            labels: &mut HashSet<String>,
            names: &mut HashSet<String>,
        ) -> Result<usize, DietError> {
            if !names.insert(site.name.clone()) {
                return Err(DietError::Deployment(format!(
                    "duplicate site name {}",
                    site.name
                )));
            }
            if site.seds.is_empty() && site.children.is_empty() {
                return Err(DietError::Deployment(format!(
                    "site {} has neither SeDs nor children",
                    site.name
                )));
            }
            let mut count = 0;
            for sed in &site.seds {
                check_sed(sed, labels)?;
                count += 1;
            }
            for child in &site.children {
                count += walk(child, labels, names)?;
            }
            Ok(count)
        }
        fn check_sed(sed: &SedSpec, labels: &mut HashSet<String>) -> Result<(), DietError> {
            if sed.speed_factor <= 0.0 {
                return Err(DietError::Deployment(format!(
                    "SeD {} has non-positive speed",
                    sed.label
                )));
            }
            if !labels.insert(sed.label.clone()) {
                return Err(DietError::Deployment(format!(
                    "duplicate SeD label {}",
                    sed.label
                )));
            }
            Ok(())
        }
        let mut labels = HashSet::new();
        let mut names = HashSet::new();
        let mut total = 0;
        for sed in &self.ma_seds {
            check_sed(sed, &mut labels)?;
            total += 1;
        }
        for site in &self.sites {
            total += walk(site, &mut labels, &mut names)?;
        }
        if total == 0 {
            return Err(DietError::Deployment("topology has no SeDs".into()));
        }
        Ok(())
    }

    /// Stand the whole topology up as local TCP processes, bottom-up: SeD
    /// servers first, then each site's agent server (its node holding local
    /// SeD handles plus [`RemoteAgentClient`] stubs for its children), the
    /// MA process last. One shared [`Obs`] sink means a single trace
    /// snapshot shows every hop of a finding phase.
    pub fn deploy(
        &self,
        scheduler: Arc<dyn Scheduler>,
        table_for: impl FnMut(&SedSpec) -> ServiceTable,
    ) -> Result<TcpDeployment, DietError> {
        self.deploy_inner(scheduler, table_for, None)
    }

    /// Like [`deploy`](Self::deploy), but distributed-observability style:
    /// instead of one shared in-memory sink, every component keeps a
    /// *private* [`Obs`] and reports it to `telemetry.collector` through its
    /// own [`TelemetryFlusher`] — the shape a real multi-host deployment
    /// has, where nothing but the wire connects the processes. The unified
    /// view lives at the collector; [`TcpDeployment::obs`] only sees the
    /// MA's slice.
    pub fn deploy_with_telemetry(
        &self,
        scheduler: Arc<dyn Scheduler>,
        table_for: impl FnMut(&SedSpec) -> ServiceTable,
        telemetry: &TelemetrySpec,
    ) -> Result<TcpDeployment, DietError> {
        self.deploy_inner(scheduler, table_for, Some(telemetry))
    }

    fn deploy_inner(
        &self,
        scheduler: Arc<dyn Scheduler>,
        mut table_for: impl FnMut(&SedSpec) -> ServiceTable,
        telemetry: Option<&TelemetrySpec>,
    ) -> Result<TcpDeployment, DietError> {
        self.validate()?;
        let obs = Arc::new(Obs::new());
        let pool = Arc::new(TcpSedPool::new());
        let timeout = Duration::from_millis(self.child_timeout_ms.max(1));
        let agent_cfg = AgentConfig {
            admission_limit: self.admission_limit,
            obs: obs.clone(),
            ..AgentConfig::default()
        };
        let mut seds = Vec::new();
        let mut sed_servers = Vec::new();
        let mut agent_servers = Vec::new();
        let mut flushers = Vec::new();

        let flusher_for = |component_obs: Arc<Obs>, role: &str, label: &str, site: &str| {
            telemetry.map(|t| {
                TelemetryFlusher::spawn(
                    component_obs,
                    TelemetryConfig::new(t.collector, role, label)
                        .site(site)
                        .interval(t.interval),
                )
            })
        };

        let spawn_seds = |site: &str,
                          specs: &[SedSpec],
                          table_for: &mut dyn FnMut(&SedSpec) -> ServiceTable,
                          seds: &mut Vec<Arc<SedHandle>>,
                          sed_servers: &mut Vec<TcpServer>,
                          flushers: &mut Vec<TelemetryFlusher>|
         -> Result<Vec<Arc<SedHandle>>, DietError> {
            let mut local = Vec::new();
            for spec in specs {
                // Telemetry mode: the SeD records into its own island of
                // state and ships it; shared mode: everyone writes the one
                // deployment-wide sink directly.
                let sed_obs = match telemetry {
                    Some(_) => Arc::new(Obs::new()),
                    None => obs.clone(),
                };
                let sed = SedHandle::spawn_with_obs(
                    SedConfig::new(&spec.label, spec.speed_factor),
                    table_for(spec),
                    sed_obs.clone(),
                );
                let server = serve_sed_over_tcp(sed.clone())?;
                if let Some(f) = flusher_for(sed_obs, "sed", &spec.label, site) {
                    flushers.push(f);
                }
                pool.register(&spec.label, server.local_addr);
                sed_servers.push(server);
                seds.push(sed.clone());
                local.push(sed);
            }
            Ok(local)
        };

        // Recursion over the site tree threads every accumulator explicitly
        // (it can't capture: `spawn_seds` is already a &mut closure).
        #[allow(clippy::too_many_arguments)]
        fn build_site(
            site: &TcpSiteSpec,
            timeout: Duration,
            agent_cfg: &AgentConfig,
            per_component_obs: bool,
            spawn_seds: &mut SpawnSeds<'_>,
            seds: &mut Vec<Arc<SedHandle>>,
            sed_servers: &mut Vec<TcpServer>,
            agent_servers: &mut Vec<(String, TcpServer)>,
            agent_obs: &mut Vec<(String, Arc<Obs>)>,
            flushers: &mut Vec<TelemetryFlusher>,
        ) -> Result<Arc<RemoteAgentClient>, DietError> {
            let mut child_stubs = Vec::new();
            for child in &site.children {
                child_stubs.push(build_site(
                    child,
                    timeout,
                    agent_cfg,
                    per_component_obs,
                    spawn_seds,
                    seds,
                    sed_servers,
                    agent_servers,
                    agent_obs,
                    flushers,
                )?);
            }
            let local = spawn_seds(&site.name, &site.seds, seds, sed_servers, flushers)?;
            let node = AgentNode::leaf(&site.name, local);
            for stub in child_stubs {
                node.add_remote(stub);
            }
            let site_cfg = if per_component_obs {
                AgentConfig {
                    obs: Arc::new(Obs::new()),
                    ..agent_cfg.clone()
                }
            } else {
                agent_cfg.clone()
            };
            agent_obs.push((site.name.clone(), site_cfg.obs.clone()));
            let server = serve_agent_over_tcp(node, site_cfg)?;
            let stub = RemoteAgentClient::with_timeout(&site.name, server.local_addr, timeout);
            agent_servers.push((site.name.clone(), server));
            Ok(stub)
        }

        // Agent flushers are attached after the recursive build — the
        // builder only records which Obs each site's agent got.
        let mut agent_obs: Vec<(String, Arc<Obs>)> = Vec::new();
        let mut site_stubs = Vec::new();
        for site in &self.sites {
            site_stubs.push(build_site(
                site,
                timeout,
                &agent_cfg,
                telemetry.is_some(),
                &mut |site_name, specs, seds, servers, flushers| {
                    spawn_seds(site_name, specs, &mut table_for, seds, servers, flushers)
                },
                &mut seds,
                &mut sed_servers,
                &mut agent_servers,
                &mut agent_obs,
                &mut flushers,
            )?);
        }
        for (name, site_obs) in agent_obs {
            if let Some(f) = flusher_for(site_obs, "la", &name, &name) {
                flushers.push(f);
            }
        }
        let ma_local = spawn_seds(
            &self.ma_name,
            &self.ma_seds,
            &mut table_for,
            &mut seds,
            &mut sed_servers,
            &mut flushers,
        )?;
        let root = AgentNode::leaf(&format!("{}/local", self.ma_name), ma_local);
        for stub in site_stubs {
            root.add_remote(stub);
        }
        let ma_obs = match telemetry {
            Some(_) => Arc::new(Obs::new()),
            None => obs.clone(),
        };
        let ma = MasterAgent::new_with_obs(&self.ma_name, vec![root], scheduler, ma_obs.clone());
        ma.set_collect_timeout(timeout);
        // Grid-wide data plane: one replica catalog shared by every SeD in
        // the topology (remote-subtree SeDs included — `register_catalog`
        // alone only reaches the MA-local ones), with the endpoint pool as
        // the SeD-to-SeD transfer resolver. This is what lets the workflow
        // engine keep intermediates on the grid.
        let catalog = Arc::new(ReplicaCatalog::new());
        for sed in &seds {
            sed.attach_catalog(catalog.clone());
            sed.set_resolver(pool.clone());
        }
        ma.register_catalog(catalog);
        let dag = DagEngine::new(ma.clone(), pool.clone(), DagEngineConfig::default());
        let ma_cfg = AgentConfig {
            obs: ma_obs.clone(),
            ..agent_cfg
        };
        let ma_server =
            serve_ma_over_tcp_with_dag(ma.clone(), vec![], "127.0.0.1:0", ma_cfg, dag.clone())?;
        if let Some(f) = flusher_for(ma_obs.clone(), "ma", &self.ma_name, &self.ma_name) {
            flushers.push(f);
        }
        let ma_client =
            RemoteAgentClient::with_timeout(&self.ma_name, ma_server.local_addr, timeout);
        Ok(TcpDeployment {
            obs: match telemetry {
                Some(_) => ma_obs,
                None => obs,
            },
            ma,
            ma_client,
            ma_server,
            agent_servers,
            pool,
            seds,
            sed_servers,
            flushers,
            dag,
        })
    }
}

/// A running multi-site topology of local TCP processes: every agent and
/// SeD behind its own listener, held together only by sockets. Tests kill
/// individual servers (via [`TcpDeployment::kill_agent`]) to simulate site
/// failures.
pub struct TcpDeployment {
    /// With [`TcpTopologySpec::deploy`]: the one sink every component
    /// records into. With
    /// [`deploy_with_telemetry`](TcpTopologySpec::deploy_with_telemetry):
    /// just the MA's private slice — the unified view is at the collector.
    pub obs: Arc<Obs>,
    /// The MA's in-process handle (for heartbeat monitors and assertions).
    pub ma: Arc<MasterAgent>,
    /// Client stub for the MA process — what submits go through.
    pub ma_client: Arc<RemoteAgentClient>,
    pub ma_server: TcpServer,
    /// `(site name, server)` per agent process, leaf-to-root order.
    pub agent_servers: Vec<(String, TcpServer)>,
    /// Endpoint registry for every SeD in the topology (clients call the
    /// chosen SeD directly through this).
    pub pool: Arc<TcpSedPool>,
    pub seds: Vec<Arc<SedHandle>>,
    pub sed_servers: Vec<TcpServer>,
    /// One per component when deployed with telemetry; empty otherwise.
    pub flushers: Vec<TelemetryFlusher>,
    /// The MA-side workflow engine `SubmitDag` frames land in (also usable
    /// directly by in-process tests: expander registration, assertions).
    pub dag: Arc<DagEngine>,
}

impl TcpDeployment {
    /// The listening address of the named site's agent process.
    pub fn agent_addr(&self, name: &str) -> Option<SocketAddr> {
        self.agent_servers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.local_addr)
    }

    /// Crash the named site's agent process: stop accepting and sever every
    /// live connection, exactly like the host dying. The SeDs below it keep
    /// running (clients already holding their labels can still call them);
    /// only the finding path through this agent goes dark.
    pub fn kill_agent(&self, name: &str) -> bool {
        match self.agent_servers.iter().find(|(n, _)| n == name) {
            Some((_, server)) => {
                server.kill();
                true
            }
            None => false,
        }
    }

    /// Push every component's pending telemetry to the collector right now
    /// (tests call this instead of sleeping out the flush interval).
    /// Returns how many component flushes failed.
    pub fn flush_telemetry(&self) -> usize {
        self.flushers
            .iter()
            .filter(|f| f.flush_now().is_err())
            .count()
    }

    /// Orderly teardown: agents first (no new findings), then the SeDs,
    /// then the telemetry flushers (each ships its final batch on the way
    /// out, so the collector sees the tail of the run).
    pub fn shutdown(mut self) {
        self.dag.shutdown();
        self.ma_server.kill();
        for (_, server) in &self.agent_servers {
            server.kill();
        }
        for server in &self.sed_servers {
            server.kill();
        }
        for sed in &self.seds {
            sed.shutdown();
        }
        for flusher in &mut self.flushers {
            flusher.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobin;

    fn paper_spec() -> DeploymentSpec {
        DeploymentSpec::paper_shape(&[
            ("lyon-capricorne", 0.80, 2),
            ("lyon-sagittaire", 1.00, 1),
            ("lille-chti", 0.90, 2),
            ("nancy-grelon", 1.15, 2),
            ("toulouse-violette", 0.80, 2),
            ("sophia-helios", 1.10, 2),
        ])
    }

    #[test]
    fn paper_shape_has_eleven_seds_and_six_las() {
        let d = paper_spec();
        assert_eq!(d.las.len(), 6);
        assert_eq!(d.total_seds(), 11);
        d.validate().unwrap();
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut d = paper_spec();
        d.las[0].seds[0].label = d.las[1].seds[0].label.clone();
        assert!(matches!(d.validate(), Err(DietError::Deployment(_))));
    }

    #[test]
    fn empty_la_rejected() {
        let mut d = paper_spec();
        d.las[2].seds.clear();
        assert!(d.validate().is_err());
    }

    #[test]
    fn non_positive_speed_rejected() {
        let mut d = paper_spec();
        d.las[0].seds[0].speed_factor = 0.0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn instantiate_builds_working_hierarchy() {
        let d = paper_spec();
        let (ma, seds) = d
            .instantiate(Arc::new(RoundRobin::new()), |_| ServiceTable::init(1))
            .unwrap();
        assert_eq!(ma.sed_count(), 11);
        assert_eq!(seds.len(), 11);
        // No services registered: submit must say not-found.
        assert!(ma.submit("anything").is_err());
        for s in seds {
            s.shutdown();
        }
    }
}
