//! The client API.
//!
//! "In the DIET architecture, a client is an application which uses DIET to
//! request a service. The goal of the client is to connect to a Master Agent
//! in order to dispose of a SeD which will be able to solve the problem.
//! Then the client sends input data to the chosen SED and, after the end of
//! computation, retrieve output data."
//!
//! The API follows the GridRPC shape the paper highlights:
//! `initialize` / `call` / `async_call` + wait / `finalize`, with per-call
//! measurements of *finding time* (MA traversal) and *latency* (data send +
//! service initiation + queue wait) — the two quantities of Figure 5.

use crate::agent::MasterAgent;
use crate::dag::{DagEventRec, DagOutcome, WorkflowSpec};
use crate::data::{DietValue, Persistence};
use crate::error::DietError;
use crate::hierarchy::RemoteAgentClient;
use crate::profile::Profile;
use crate::sed::{SedHandle, SolveOutcome};
use crate::transport::TcpSedPool;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use obs::{Obs, TraceCtx};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-call measurements — the client-side view the paper instruments.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallStats {
    /// Time for the MA to return a suitable SeD ("finding time").
    pub finding: f64,
    /// Client → SeD submission (data send) time.
    pub send: f64,
    /// Time the request waited in the SeD queue before starting.
    pub queue_wait: f64,
    /// Solve execution time on the SeD.
    pub solve: f64,
    /// End-to-end wall time of the call.
    pub total: f64,
    /// How many times the call was resubmitted through the MA after a
    /// failed attempt (0 = first attempt succeeded).
    pub retries: u32,
    /// Trace id of this call (0 when the path was untraced). One id spans
    /// every attempt of the call, including resubmissions to other SeDs.
    pub trace_id: u64,
}

impl CallStats {
    /// The paper's "latency": everything between submission and the start of
    /// service execution (data transfer + initiation + queue wait).
    pub fn latency(&self) -> f64 {
        self.send + self.queue_wait
    }

    /// Middleware overhead excluding queue wait (finding + send) — the
    /// ≈70 ms/request quantity of Section 5.2.
    pub fn overhead(&self) -> f64 {
        self.finding + self.send
    }
}

/// Handle to a workflow DAG admitted by a remote MA's engine
/// ([`DietClient::submit_dag`]): the engine-assigned dag id plus the
/// workflow trace id every node span stitches under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagHandle {
    pub dag_id: u64,
    pub trace_id: u64,
}

/// Per-call fault-tolerance knobs for [`DietClient::call_with_retry`] and
/// [`DietClient::call_over_tcp`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Deadline for each individual attempt (send + queue + solve).
    pub attempt_timeout: Duration,
    /// How many times to resubmit after the first attempt fails.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Fraction of each backoff randomised away (0.0 = deterministic,
    /// 0.5 = sleep anywhere in [0.5·backoff, backoff]). Jitter decorrelates
    /// clients that were all told `Busy` at the same instant, so the
    /// retries do not arrive as a synchronised second stampede.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempt_timeout: Duration::from_secs(2),
            max_retries: 3,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            jitter: 0.0,
        }
    }
}

impl RetryPolicy {
    /// Bounded exponential backoff before retry number `retry` (0-based):
    /// `base · 2^retry`, capped.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.backoff_base
            .checked_mul(factor)
            .map_or(self.backoff_cap, |d| d.min(self.backoff_cap))
    }

    /// [`backoff`](Self::backoff) scaled into `[1 - jitter, 1]` of itself by
    /// a deterministic hash of `(salt, retry)` — reproducible for a given
    /// call (the salt is its trace id) yet decorrelated across calls.
    pub fn backoff_jittered(&self, retry: u32, salt: u64) -> Duration {
        let d = self.backoff(retry);
        if self.jitter <= 0.0 {
            return d;
        }
        // splitmix64-style scramble: cheap, stateless, well distributed.
        let mut x = salt.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(retry as u64 + 1));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let scale = 1.0 - self.jitter.clamp(0.0, 1.0) * unit;
        Duration::from_secs_f64(d.as_secs_f64() * scale)
    }
}

/// Is this failure worth resubmitting elsewhere? Transport losses and
/// deadline expiries are; application-level failures (bad profile, solve
/// status, unknown service) would fail identically on any server.
fn is_retryable(e: &DietError) -> bool {
    matches!(e, DietError::Transport(_) | DietError::Timeout { .. })
}

/// Did the attempt fail because a referenced grid-data item could not be
/// found anywhere (its holders evicted it or died)? Over TCP the SeD's
/// `DataNotFound` travels back as a rejection string, so match the display
/// text too.
fn is_data_not_found(e: &DietError) -> bool {
    match e {
        DietError::DataNotFound(_) => true,
        DietError::Rejected(msg) => msg.contains("persistent data not found"),
        _ => false,
    }
}

/// Handle for an asynchronous call (the GridRPC `grpc_call_async` analog).
pub struct CallHandle {
    server: String,
    issued: Instant,
    stats: CallStats,
    rx: Receiver<SolveOutcome>,
}

impl CallHandle {
    /// Which SeD the request was mapped to.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Block until the result arrives (the `grpc_wait` analog).
    pub fn wait(self) -> Result<(Profile, CallStats), DietError> {
        let outcome = self
            .rx
            .recv()
            .map_err(|_| DietError::Transport("SeD dropped the reply channel".into()))?;
        self.finish(outcome)
    }

    /// Wait with a timeout.
    pub fn wait_timeout(self, d: Duration) -> Result<(Profile, CallStats), DietError> {
        match self.rx.recv_timeout(d) {
            Ok(outcome) => self.finish(outcome),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(DietError::Timeout {
                after_secs: d.as_secs_f64(),
            }),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(DietError::Transport("SeD dropped the reply channel".into()))
            }
        }
    }

    /// Non-blocking probe (the `grpc_probe` analog): Some when complete.
    pub fn try_wait(self) -> Result<Result<(Profile, CallStats), DietError>, CallHandle> {
        match self.rx.try_recv() {
            Ok(outcome) => Ok(self.finish(outcome)),
            Err(crossbeam::channel::TryRecvError::Empty) => Err(self),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Ok(Err(DietError::Transport(
                "SeD dropped the reply channel".into(),
            ))),
        }
    }

    fn finish(mut self, outcome: SolveOutcome) -> Result<(Profile, CallStats), DietError> {
        self.stats.queue_wait = outcome.queue_wait;
        self.stats.solve = outcome.solve_time;
        self.stats.total = self.issued.elapsed().as_secs_f64();
        outcome.result.map(|p| (p, self.stats))
    }
}

/// A DIET client session (the `diet_initialize` … `diet_finalize` span).
pub struct DietClient {
    ma: Option<Arc<MasterAgent>>,
    /// Completed calls' stats, in completion order.
    history: parking_lot::Mutex<Vec<(String, CallStats)>>,
    /// Tracing + metrics sink for the request path.
    obs: Arc<Obs>,
    /// Payloads stored on the grid by this client, kept so a call whose
    /// reference turns up missing (every holder evicted it or died) can
    /// re-ship the data inline instead of failing.
    stored: parking_lot::Mutex<HashMap<String, DietValue>>,
}

impl DietClient {
    /// `diet_initialize(configuration_file, ...)` — the configuration here
    /// is simply the MA reference that the config file would name.
    pub fn initialize(ma: Arc<MasterAgent>) -> Self {
        Self::initialize_with_obs(ma, Arc::new(Obs::new()))
    }

    /// Like [`DietClient::initialize`] but recording into an injected
    /// observability sink — share one `Arc<Obs>` with the SeDs/MA to get a
    /// single trace covering all five request phases.
    pub fn initialize_with_obs(ma: Arc<MasterAgent>, obs: Arc<Obs>) -> Self {
        DietClient {
            ma: Some(ma),
            history: parking_lot::Mutex::new(Vec::new()),
            obs,
            stored: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// A session with no in-process MA: every finding phase must go through
    /// a remote Master Agent process via
    /// [`call_distributed`](Self::call_distributed). The in-process entry
    /// points (`call`, `call_with_retry`, …) answer
    /// [`DietError::NotInitialized`].
    pub fn initialize_distributed(obs: Arc<Obs>) -> Self {
        DietClient {
            ma: None,
            history: parking_lot::Mutex::new(Vec::new()),
            obs,
            stored: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// A lightweight handle to grid data previously stored with
    /// [`DietClient::store_data`]: what a profile carries instead of the
    /// payload (only the id crosses the wire).
    pub fn data_ref(&self, id: &str) -> DietValue {
        DietValue::data_ref(id)
    }

    /// Store `value` on the grid under `id` (DAGDA's `dagda_put_data`): the
    /// hosting SeD retains it and publishes a replica-catalog entry, and the
    /// client keeps a local copy for the re-ship fallback. Returns the label
    /// of the hosting SeD. `Volatile` data is refused — there is nothing to
    /// persist.
    pub fn store_data(
        &self,
        id: &str,
        value: DietValue,
        mode: Persistence,
    ) -> Result<String, DietError> {
        let ma = self.ma()?;
        let mut seds = ma.all_seds();
        seds.sort_by(|a, b| a.config.label.cmp(&b.config.label));
        let sed = seds
            .first()
            .ok_or_else(|| DietError::Rejected("no SeD to host grid data".into()))?;
        if !sed.store_data(id, value.clone(), mode) {
            return Err(DietError::Rejected(format!(
                "store_data({id}): volatile data is not retained"
            )));
        }
        self.note_stored(id, value);
        Ok(sed.config.label.clone())
    }

    /// [`DietClient::store_data`] with the data path over real TCP: ships
    /// the payload to the SeD behind `label` as a `PutData` frame.
    pub fn store_data_over_tcp(
        &self,
        pool: &TcpSedPool,
        label: &str,
        id: &str,
        value: DietValue,
        mode: Persistence,
        deadline: Duration,
    ) -> Result<(), DietError> {
        pool.put_data(label, id, value.clone(), mode, deadline)?;
        self.note_stored(id, value);
        Ok(())
    }

    fn note_stored(&self, id: &str, value: DietValue) {
        self.obs
            .metrics
            .counter("diet_client_data_stored_bytes_total")
            .add(value.payload_bytes());
        self.stored.lock().insert(id.to_string(), value);
    }

    /// Every referenced payload this client still holds, or `None` if any
    /// id is unknown here — then re-shipping cannot help.
    fn cached_payloads(&self, ids: &[String]) -> Option<Vec<(String, DietValue)>> {
        if ids.is_empty() {
            return None;
        }
        let stored = self.stored.lock();
        ids.iter()
            .map(|id| stored.get(id).map(|v| (id.clone(), v.clone())))
            .collect()
    }

    /// Repair lost grid data by re-shipping every cached payload to `sed`
    /// under its original id (so the catalog entry reappears where the next
    /// attempt will look for it). False when any id is uncached or a ship
    /// fails — the caller then surfaces the original error.
    fn try_reship(
        &self,
        sed: &Arc<SedHandle>,
        ids: &[String],
        reship: &impl Fn(&Arc<SedHandle>, &str, DietValue) -> Result<(), DietError>,
    ) -> bool {
        let Some(payloads) = self.cached_payloads(ids) else {
            return false;
        };
        payloads
            .into_iter()
            .all(|(id, v)| reship(sed, &id, v).is_ok())
    }

    /// This client's observability sink.
    pub fn obs(&self) -> Arc<Obs> {
        self.obs.clone()
    }

    /// This client's metrics registry (convenience for assertions/dumps).
    pub fn metrics(&self) -> &obs::Registry {
        &self.obs.metrics
    }

    /// The full `diet_initialize` path: parse the configuration file text,
    /// resolve its `MAName` through the name server, open the session.
    pub fn initialize_from_config(
        config_text: &str,
        names: &crate::naming::NameServer,
    ) -> Result<Self, DietError> {
        let cfg = crate::config::DietConfig::parse(config_text)?;
        let ma = names.resolve(cfg.ma_name()?)?;
        Ok(Self::initialize(ma))
    }

    fn ma(&self) -> Result<&Arc<MasterAgent>, DietError> {
        self.ma.as_ref().ok_or(DietError::NotInitialized)
    }

    /// Submit a problem asynchronously: find a SeD, ship the data, return a
    /// handle. The profile's service name selects the problem.
    pub fn async_call(&self, profile: Profile) -> Result<CallHandle, DietError> {
        let ma = self.ma()?;
        let t0 = Instant::now();
        let sed = ma.submit(&profile.service)?;
        let finding = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let rx = sed.submit(profile)?;
        let send = t1.elapsed().as_secs_f64();

        Ok(CallHandle {
            server: sed.config.label.clone(),
            issued: t0,
            stats: CallStats {
                finding,
                send,
                ..Default::default()
            },
            rx,
        })
    }

    /// Synchronous call (the `diet_call` analog): the profile is consumed
    /// and returned with OUT arguments filled by the server.
    pub fn call(&self, profile: Profile) -> Result<(Profile, CallStats), DietError> {
        let service = profile.service.clone();
        let handle = self.async_call(profile)?;
        let server = handle.server().to_string();
        let res = handle.wait();
        if let Ok((_, stats)) = &res {
            self.history.lock().push((server, *stats));
        } else {
            let _ = service;
        }
        res
    }

    /// Fault-tolerant synchronous call over the in-process path: each
    /// attempt is bounded by `policy.attempt_timeout`; on a transport
    /// failure or timeout the failed SeD is reported to the MA (which may
    /// deregister it), excluded, and the request resubmitted through the MA
    /// after a bounded exponential backoff. Application-level errors are
    /// returned immediately — retrying them elsewhere cannot help.
    pub fn call_with_retry(
        &self,
        profile: Profile,
        policy: &RetryPolicy,
    ) -> Result<(Profile, CallStats), DietError> {
        self.retry_call(
            profile,
            policy,
            |sed, profile, timeout, ctx| {
                let rx = sed.submit_traced(profile, ctx)?;
                match rx.recv_timeout(timeout) {
                    Ok(outcome) => outcome
                        .result
                        .map(|p| (p, outcome.queue_wait, outcome.solve_time)),
                    Err(RecvTimeoutError::Timeout) => Err(DietError::Timeout {
                        after_secs: timeout.as_secs_f64(),
                    }),
                    Err(RecvTimeoutError::Disconnected) => {
                        Err(DietError::Transport("SeD dropped the reply channel".into()))
                    }
                }
            },
            |sed, id, value| {
                if sed.store_data(id, value, Persistence::Persistent) {
                    Ok(())
                } else {
                    Err(DietError::Rejected(format!("re-ship of {id} refused")))
                }
            },
        )
    }

    /// Fault-tolerant synchronous call where the data path runs over real
    /// TCP: finding still goes through the MA (which must share labels with
    /// `pool`'s registry), the solve goes through [`TcpSedPool::call`], and
    /// failures resubmit exactly like [`call_with_retry`](Self::call_with_retry).
    pub fn call_over_tcp(
        &self,
        pool: &TcpSedPool,
        profile: Profile,
        policy: &RetryPolicy,
    ) -> Result<(Profile, CallStats), DietError> {
        self.retry_call(
            profile,
            policy,
            |sed, profile, timeout, ctx| pool.call_traced(&sed.config.label, profile, timeout, ctx),
            |sed, id, value| {
                pool.put_data(
                    &sed.config.label,
                    id,
                    value,
                    Persistence::Persistent,
                    policy.attempt_timeout,
                )
            },
        )
    }

    /// Fault-tolerant synchronous call over the *fully distributed* path:
    /// finding goes through a remote Master Agent process (`ma`, speaking
    /// `Submit`/`SubmitReply` frames over its multiplexed connection), the
    /// solve goes directly to the chosen SeD through `pool` — the DIET
    /// shortcut where data never relays through the agents. Needs no
    /// in-process MA, so it works from a bare
    /// [`DietClient::initialize_distributed`] session.
    ///
    /// Retry semantics mirror [`call_with_retry`](Self::call_with_retry):
    /// `Busy` (from the MA's or the SeD's admission control) backs off
    /// without blaming anyone; transport faults and timeouts exclude the
    /// failed label and resubmit; an MA answering `SubmitReply(None)` — no
    /// candidate *right now*, e.g. a subtree momentarily marked
    /// unavailable — also backs off and resubmits, since the next attempt
    /// may find a recovered or alternative subtree.
    pub fn call_distributed(
        &self,
        ma: &crate::hierarchy::RemoteAgentClient,
        pool: &TcpSedPool,
        profile: Profile,
        policy: &RetryPolicy,
    ) -> Result<(Profile, CallStats), DietError> {
        let tracer = &self.obs.tracer;
        let m = &self.obs.metrics;
        let m_requests = m.counter("diet_client_requests_total");
        let m_failures = m.counter("diet_client_failures_total");
        let m_resubmits = m.counter("diet_client_resubmissions_total");
        let m_busy = m.counter("diet_client_busy_total");
        let service = profile.service.clone();
        let issued = Instant::now();
        let trace_id = tracer.new_trace();
        let mut excluded: Vec<String> = Vec::new();
        let mut finding_total = 0.0;
        let mut last_err: Option<DietError> = None;
        for attempt_no in 0..=policy.max_retries {
            if attempt_no > 0 {
                std::thread::sleep(policy.backoff_jittered(attempt_no - 1, trace_id));
                m_resubmits.inc();
            }
            let attempt_span = tracer.span(trace_id, 0, "attempt", "client");
            let ctx = attempt_span.ctx();
            let finding_start_ns = tracer.now_ns();
            let t0 = Instant::now();
            let label = match ma.submit(&service, &excluded, ctx) {
                Ok(Some(label)) => label,
                Ok(None) => {
                    last_err = Some(DietError::NoServerAvailable(service.clone()));
                    continue;
                }
                Err(e @ DietError::Busy) => {
                    m_busy.inc();
                    last_err = Some(e);
                    continue;
                }
                Err(e) if is_retryable(&e) => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => {
                    m_failures.inc();
                    return Err(e);
                }
            };
            finding_total += t0.elapsed().as_secs_f64();
            tracer.record_window(
                trace_id,
                attempt_span.id(),
                "Finding",
                "agents",
                finding_start_ns,
                tracer.now_ns(),
            );
            let submit_start_ns = tracer.now_ns();
            let t1 = Instant::now();
            match pool.call_traced(&label, profile.clone(), policy.attempt_timeout, ctx) {
                Ok((out, queue_wait, solve)) => {
                    let attempt_time = t1.elapsed().as_secs_f64();
                    let send = (attempt_time - queue_wait - solve).max(0.0);
                    tracer.record_window(
                        trace_id,
                        attempt_span.id(),
                        "Submission",
                        &label,
                        submit_start_ns,
                        submit_start_ns + (send * 1e9) as u64,
                    );
                    drop(attempt_span);
                    let stats = CallStats {
                        finding: finding_total,
                        send,
                        queue_wait,
                        solve,
                        total: issued.elapsed().as_secs_f64(),
                        retries: attempt_no,
                        trace_id,
                    };
                    m_requests.inc();
                    m.histogram("diet_client_finding_seconds")
                        .observe(stats.finding);
                    m.histogram("diet_client_latency_seconds")
                        .observe(stats.latency());
                    m.histogram("diet_client_solve_seconds")
                        .observe(stats.solve);
                    m.histogram("diet_client_total_seconds")
                        .observe(stats.total);
                    self.history.lock().push((label.clone(), stats));
                    return Ok((out, stats));
                }
                Err(e @ DietError::Busy) => {
                    m_busy.inc();
                    last_err = Some(e);
                }
                Err(e) if is_retryable(&e) => {
                    // The sunk data-shipping time still leaves a footprint
                    // in the trace; the label is blamed and excluded so the
                    // resubmit must route elsewhere.
                    tracer.record_window(
                        trace_id,
                        attempt_span.id(),
                        "Submission",
                        &label,
                        submit_start_ns,
                        tracer.now_ns(),
                    );
                    excluded.push(label);
                    last_err = Some(e);
                }
                Err(e) => {
                    m_failures.inc();
                    return Err(e);
                }
            }
        }
        m_failures.inc();
        Err(DietError::RetriesExhausted {
            service,
            attempts: policy.max_retries + 1,
            last: last_err.map(|e| e.to_string()).unwrap_or_default(),
        })
    }

    /// Ship a workflow DAG to a remote MA's engine. Returns immediately
    /// with a [`DagHandle`]; the engine schedules every node inside the
    /// hierarchy (intermediates move SeD-to-SeD, never through this
    /// client) while the caller polls with [`poll_dag`](Self::poll_dag) or
    /// blocks in [`wait_dag`](Self::wait_dag). The handle's trace id is
    /// the workflow trace every node span stitches under.
    pub fn submit_dag(
        &self,
        ma: &RemoteAgentClient,
        spec: &WorkflowSpec,
    ) -> Result<DagHandle, DietError> {
        let trace_id = self.obs.tracer.new_trace();
        let ctx = TraceCtx {
            trace_id,
            parent_span: 0,
        };
        let dag_id = ma.submit_dag(spec, ctx)?;
        self.obs.metrics.counter("diet_client_dags_total").inc();
        Ok(DagHandle { dag_id, trace_id })
    }

    /// One progress poll: events after the `since` cursor plus the outcome
    /// once the dag finished.
    pub fn poll_dag(
        &self,
        ma: &RemoteAgentClient,
        dag_id: u64,
        since: u64,
    ) -> Result<(Vec<DagEventRec>, Option<DagOutcome>), DietError> {
        ma.dag_status(dag_id, since)
    }

    /// Block until the dag finishes (polling the event stream) or `timeout`
    /// elapses. Returns the outcome and every event observed.
    pub fn wait_dag(
        &self,
        ma: &RemoteAgentClient,
        handle: &DagHandle,
        timeout: Duration,
    ) -> Result<(DagOutcome, Vec<DagEventRec>), DietError> {
        let deadline = Instant::now() + timeout;
        let mut seen: Vec<DagEventRec> = Vec::new();
        let mut cursor = 0u64;
        loop {
            let (events, outcome) = ma.dag_status(handle.dag_id, cursor)?;
            if let Some(last) = events.last() {
                cursor = last.seq;
            }
            seen.extend(events);
            if let Some(outcome) = outcome {
                return Ok((outcome, seen));
            }
            if Instant::now() >= deadline {
                return Err(DietError::Timeout {
                    after_secs: timeout.as_secs_f64(),
                });
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// The shared retry engine. `attempt` runs one bounded attempt against
    /// the chosen SeD and returns `(out_profile, queue_wait, solve_time)`.
    ///
    /// Tracing: one trace id is allocated per logical call and reused across
    /// every resubmission; each attempt gets its own `attempt` span (fresh
    /// span id) that remote phases parent under via the [`TraceCtx`] handed
    /// to the closure. `Finding` and `Submission` windows are recorded per
    /// attempt so a failed attempt still leaves its footprint in the trace.
    fn retry_call(
        &self,
        profile: Profile,
        policy: &RetryPolicy,
        attempt: impl Fn(
            &Arc<SedHandle>,
            Profile,
            Duration,
            TraceCtx,
        ) -> Result<(Profile, f64, f64), DietError>,
        reship: impl Fn(&Arc<SedHandle>, &str, DietValue) -> Result<(), DietError>,
    ) -> Result<(Profile, CallStats), DietError> {
        let ma = self.ma()?;
        let tracer = &self.obs.tracer;
        let m = &self.obs.metrics;
        let m_requests = m.counter("diet_client_requests_total");
        let m_failures = m.counter("diet_client_failures_total");
        let m_resubmits = m.counter("diet_client_resubmissions_total");
        let m_reships = m.counter("diet_client_data_reships_total");
        let m_busy = m.counter("diet_client_busy_total");
        let service = profile.service.clone();
        let issued = Instant::now();
        let trace_id = tracer.new_trace();
        // Grid-data references the request carries: the MA turns these into
        // the locality terms a data-aware scheduler minimizes.
        let data_ids = profile.data_ref_ids();
        let mut excluded: Vec<String> = Vec::new();
        let mut finding_total = 0.0;
        let mut last_err: Option<DietError> = None;
        for attempt_no in 0..=policy.max_retries {
            if attempt_no > 0 {
                std::thread::sleep(policy.backoff_jittered(attempt_no - 1, trace_id));
                m_resubmits.inc();
            }
            let attempt_span = tracer.span(trace_id, 0, "attempt", "client");
            let finding_start_ns = tracer.now_ns();
            let t0 = Instant::now();
            let sed = match ma.submit_with_data(&service, &data_ids, &excluded) {
                Ok(sed) => sed,
                Err(e) if attempt_no == 0 => {
                    m_failures.inc();
                    return Err(e);
                }
                Err(e) => {
                    // Mid-retry the hierarchy ran out of candidates.
                    m_failures.inc();
                    return Err(DietError::RetriesExhausted {
                        service,
                        attempts: attempt_no,
                        last: last_err.unwrap_or(e).to_string(),
                    });
                }
            };
            let finding_this = t0.elapsed().as_secs_f64();
            finding_total += finding_this;
            tracer.record_window(
                trace_id,
                attempt_span.id(),
                "Finding",
                "agents",
                finding_start_ns,
                tracer.now_ns(),
            );
            let ctx = attempt_span.ctx();
            let submit_start_ns = tracer.now_ns();
            let t1 = Instant::now();
            match attempt(&sed, profile.clone(), policy.attempt_timeout, ctx) {
                Ok((out, queue_wait, solve)) => {
                    let attempt_time = t1.elapsed().as_secs_f64();
                    let send = (attempt_time - queue_wait - solve).max(0.0);
                    // Retroactive: the data-shipping slice of the attempt
                    // window, excluding remote queueing and execution.
                    tracer.record_window(
                        trace_id,
                        attempt_span.id(),
                        "Submission",
                        &sed.config.label,
                        submit_start_ns,
                        submit_start_ns + (send * 1e9) as u64,
                    );
                    drop(attempt_span);
                    let stats = CallStats {
                        finding: finding_total,
                        send,
                        queue_wait,
                        solve,
                        total: issued.elapsed().as_secs_f64(),
                        retries: attempt_no,
                        trace_id,
                    };
                    m_requests.inc();
                    m.histogram("diet_client_finding_seconds")
                        .observe(stats.finding);
                    m.histogram("diet_client_latency_seconds")
                        .observe(stats.latency());
                    m.histogram("diet_client_solve_seconds")
                        .observe(stats.solve);
                    m.histogram("diet_client_total_seconds")
                        .observe(stats.total);
                    self.history.lock().push((sed.config.label.clone(), stats));
                    return Ok((out, stats));
                }
                Err(e) if is_data_not_found(&e) && self.try_reship(&sed, &data_ids, &reship) => {
                    // Every holder of a referenced item evicted it or died.
                    // The SeD itself is healthy (no blame, no exclusion):
                    // re-ship the cached payloads to it under their original
                    // ids — re-hosted and re-published, the next attempt
                    // finds them in the catalog again.
                    m_reships.inc();
                    last_err = Some(e);
                }
                Err(e @ DietError::Busy) => {
                    // Admission control pushed back: the SeD is healthy, its
                    // queue is just full. Back off (with jitter, so a herd of
                    // rejected clients de-synchronises) and resubmit — but do
                    // NOT blame the server or exclude it; by the next attempt
                    // its queue may well have drained.
                    m_busy.inc();
                    last_err = Some(e);
                }
                Err(e) if is_retryable(&e) => {
                    // A failed attempt still records its Submission window —
                    // the time sunk shipping data to a SeD that never replied.
                    tracer.record_window(
                        trace_id,
                        attempt_span.id(),
                        "Submission",
                        &sed.config.label,
                        submit_start_ns,
                        tracer.now_ns(),
                    );
                    ma.report_failure(&sed);
                    excluded.push(sed.config.label.clone());
                    last_err = Some(e);
                }
                Err(e) => {
                    m_failures.inc();
                    return Err(e);
                }
            }
        }
        m_failures.inc();
        Err(DietError::RetriesExhausted {
            service,
            attempts: policy.max_retries + 1,
            last: last_err.map(|e| e.to_string()).unwrap_or_default(),
        })
    }

    /// Record an async call's stats into the session history (callers of
    /// `async_call`/`wait` do this by hand; `call` does it automatically).
    pub fn record(&self, server: &str, stats: CallStats) {
        self.history.lock().push((server.to_string(), stats));
    }

    /// Completed-call history: (server label, stats).
    pub fn history(&self) -> Vec<(String, CallStats)> {
        self.history.lock().clone()
    }

    /// `diet_finalize()` — drops the MA reference; further calls error.
    pub fn finalize(&mut self) {
        self.ma = None;
    }

    pub fn is_initialized(&self) -> bool {
        self.ma.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentNode;
    use crate::data::{DietValue, Persistence};
    use crate::profile::{ArgTag, ProfileDesc};
    use crate::sched::RoundRobin;
    use crate::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};

    fn square_table(delay_ms: u64) -> ServiceTable {
        let mut d = ProfileDesc::alloc("square", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(move |p: &mut Profile| {
            if delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            let x = p.get_i32(0)?;
            p.set(1, DietValue::ScalarI32(x * x), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(2);
        t.add(d, solve).unwrap();
        t
    }

    fn session(delay_ms: u64, n_seds: usize) -> (DietClient, Vec<Arc<SedHandle>>) {
        let seds: Vec<Arc<SedHandle>> = (0..n_seds)
            .map(|i| {
                SedHandle::spawn(
                    SedConfig::new(&format!("sed{i}"), 1.0),
                    square_table(delay_ms),
                )
            })
            .collect();
        let la = AgentNode::leaf("LA", seds.clone());
        let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()));
        (DietClient::initialize(ma), seds)
    }

    fn square_profile(x: i32) -> Profile {
        let d = ProfileDesc::alloc("square", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
            .unwrap();
        p
    }

    #[test]
    fn sync_call_returns_out_args_and_stats() {
        let (client, seds) = session(0, 1);
        let (p, stats) = client.call(square_profile(9)).unwrap();
        assert_eq!(p.get_i32(1).unwrap(), 81);
        assert!(stats.total >= stats.solve);
        assert!(stats.finding >= 0.0 && stats.send >= 0.0);
        assert_eq!(client.history().len(), 1);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn async_calls_overlap() {
        let (client, seds) = session(50, 2);
        let t0 = Instant::now();
        let h1 = client.async_call(square_profile(2)).unwrap();
        let h2 = client.async_call(square_profile(3)).unwrap();
        let (p1, _) = h1.wait().unwrap();
        let (p2, _) = h2.wait().unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(p1.get_i32(1).unwrap(), 4);
        assert_eq!(p2.get_i32(1).unwrap(), 9);
        // Two 50 ms solves on two SeDs should take well under 100 ms.
        assert!(
            elapsed < Duration::from_millis(95),
            "calls did not overlap: {elapsed:?}"
        );
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn queueing_shows_up_in_latency() {
        let (client, seds) = session(40, 1);
        let h1 = client.async_call(square_profile(1)).unwrap();
        let h2 = client.async_call(square_profile(2)).unwrap();
        let (_, s1) = h1.wait().unwrap();
        let (_, s2) = h2.wait().unwrap();
        assert!(
            s2.latency() > s1.latency() + 0.03,
            "second call should queue behind the first: {} vs {}",
            s2.latency(),
            s1.latency()
        );
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn try_wait_polls() {
        let (client, seds) = session(30, 1);
        let h = client.async_call(square_profile(4)).unwrap();
        let mut h = match h.try_wait() {
            Err(h) => h, // not ready yet
            Ok(done) => {
                // Extremely fast machine: accept immediate completion.
                assert_eq!(done.unwrap().0.get_i32(1).unwrap(), 16);
                for s in seds {
                    s.shutdown();
                }
                return;
            }
        };
        loop {
            match h.try_wait() {
                Ok(done) => {
                    assert_eq!(done.unwrap().0.get_i32(1).unwrap(), 16);
                    break;
                }
                Err(again) => {
                    h = again;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn wait_timeout_fires() {
        let (client, seds) = session(200, 1);
        let h = client.async_call(square_profile(5)).unwrap();
        match h.wait_timeout(Duration::from_millis(20)) {
            Err(DietError::Timeout { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(120),
            ..Default::default()
        };
        assert_eq!(p.backoff(0), Duration::from_millis(25));
        assert_eq!(p.backoff(1), Duration::from_millis(50));
        assert_eq!(p.backoff(2), Duration::from_millis(100));
        assert_eq!(p.backoff(3), Duration::from_millis(120)); // capped
        assert_eq!(p.backoff(31), Duration::from_millis(120));
    }

    #[test]
    fn jittered_backoff_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(10),
            jitter: 0.5,
            ..Default::default()
        };
        for retry in 0..4 {
            let full = p.backoff(retry);
            let j = p.backoff_jittered(retry, 0xDEAD_BEEF);
            assert!(j <= full, "jitter must only shrink: {j:?} > {full:?}");
            let floor = Duration::from_secs_f64(full.as_secs_f64() * 0.5);
            assert!(j >= floor, "jitter below floor: {j:?} < {floor:?}");
            // Same (salt, retry) → same delay; reruns are reproducible.
            assert_eq!(j, p.backoff_jittered(retry, 0xDEAD_BEEF));
        }
        // Different salts de-synchronise (overwhelmingly likely to differ).
        assert_ne!(p.backoff_jittered(0, 1), p.backoff_jittered(0, 2));
        // jitter = 0 is the exact deterministic schedule.
        let plain = RetryPolicy { jitter: 0.0, ..p };
        assert_eq!(plain.backoff_jittered(2, 7), plain.backoff(2));
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            attempt_timeout: Duration::from_millis(500),
            max_retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            jitter: 0.0,
        }
    }

    #[test]
    fn retry_resubmits_through_ma_after_sed_crash() {
        let (client, seds) = session(0, 3);
        // LRU round-robin visits labels in lexicographic order on a cold
        // start, so "sed0" receives the first request — and dies on it.
        seds[0].faults().kill_at_request(1);
        let (p, stats) = client
            .call_with_retry(square_profile(7), &fast_policy())
            .unwrap();
        assert_eq!(p.get_i32(1).unwrap(), 49);
        assert_eq!(stats.retries, 1);
        // The MA noticed the corpse and deregistered it.
        let ma = client.ma().unwrap();
        assert_eq!(ma.deregistered(), vec!["sed0".to_string()]);
        assert_eq!(ma.sed_count(), 2);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn burst_with_mid_burst_kill_loses_no_requests() {
        let (client, seds) = session(0, 3);
        // The victim dies on its 4th request, mid-burst.
        seds[1].faults().kill_at_request(4);
        let policy = fast_policy();
        let mut total_retries = 0;
        for x in 0..30 {
            let (p, stats) = client
                .call_with_retry(square_profile(x), &policy)
                .unwrap_or_else(|e| panic!("request {x} lost: {e}"));
            assert_eq!(p.get_i32(1).unwrap(), x * x);
            total_retries += stats.retries;
        }
        assert!(total_retries >= 1, "the killed request must have retried");
        let ma = client.ma().unwrap();
        assert_eq!(ma.deregistered(), vec!["sed1".to_string()]);
        // Survivors kept absorbing the load.
        assert_eq!(client.history().len(), 30);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn application_errors_are_not_retried() {
        // A solve that fails with a status code fails identically anywhere:
        // the client must return it immediately, not burn the retry budget.
        let mut d = ProfileDesc::alloc("bad", 0, 0, 0);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|_| Ok(3));
        let mut t = ServiceTable::init(1);
        t.add(d.clone(), solve).unwrap();
        let seds: Vec<Arc<SedHandle>> = (0..2)
            .map(|i| SedHandle::spawn(SedConfig::new(&format!("bad{i}"), 1.0), t.clone()))
            .collect();
        let la = AgentNode::leaf("LA", seds.clone());
        let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()));
        let client = DietClient::initialize(ma.clone());
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(1), Persistence::Volatile)
            .unwrap();
        match client.call_with_retry(p, &fast_policy()) {
            Err(DietError::SolveFailed { status: 3, .. }) => {}
            other => panic!("expected SolveFailed, got {other:?}"),
        }
        // No SeD was blamed for an application error.
        assert_eq!(ma.sed_count(), 2);
        assert!(ma.deregistered().is_empty());
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn retries_exhaust_when_every_server_fails() {
        let (client, seds) = session(0, 2);
        seds[0].faults().kill_at_request(1);
        seds[1].faults().kill_at_request(1);
        let policy = RetryPolicy {
            max_retries: 4,
            ..fast_policy()
        };
        match client.call_with_retry(square_profile(2), &policy) {
            // Both SeDs die and get excluded; the MA runs out of candidates
            // before the budget does.
            Err(DietError::RetriesExhausted { attempts, .. }) => assert!(attempts >= 2),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn slow_sed_times_out_and_request_lands_elsewhere() {
        let (client, seds) = session(0, 2);
        // sed0 wedges: every request stalls far beyond the attempt timeout.
        seds[0].faults().set_stall(Duration::from_secs(5));
        let policy = RetryPolicy {
            attempt_timeout: Duration::from_millis(80),
            ..fast_policy()
        };
        let (p, stats) = client.call_with_retry(square_profile(6), &policy).unwrap();
        assert_eq!(p.get_i32(1).unwrap(), 36);
        assert_eq!(stats.retries, 1);
        for s in seds {
            s.shutdown();
        }
    }

    fn sum_table() -> ServiceTable {
        let mut d = ProfileDesc::alloc("sum", 0, 0, 1);
        d.set_arg(0, ArgTag::Vector).unwrap();
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            let s: f64 = match p.get(0)? {
                DietValue::VectorF64(xs) => xs.iter().sum(),
                _ => return Err(DietError::Rejected("expected f64 vector".into())),
            };
            p.set(1, DietValue::ScalarF64(s), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(2);
        t.add(d, solve).unwrap();
        t
    }

    fn sum_ref_profile(client: &DietClient, id: &str) -> Profile {
        let d = ProfileDesc::alloc("sum", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, client.data_ref(id), Persistence::Persistent)
            .unwrap();
        p
    }

    fn data_session() -> (DietClient, Vec<Arc<SedHandle>>) {
        let seds: Vec<Arc<SedHandle>> = (0..2)
            .map(|i| SedHandle::spawn(SedConfig::new(&format!("sed{i}"), 1.0), sum_table()))
            .collect();
        let la = AgentNode::leaf("LA", seds.clone());
        let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()))
            .with_scheduler(Arc::new(crate::sched::DataLocal::default()));
        ma.register_catalog(Arc::new(crate::dagda::ReplicaCatalog::new()));
        (DietClient::initialize(ma), seds)
    }

    #[test]
    fn stored_data_is_scheduled_onto_its_holder() {
        let (client, seds) = data_session();
        let host = client
            .store_data(
                "xs",
                DietValue::vec_f64(vec![1.0, 2.0, 3.5]),
                Persistence::Persistent,
            )
            .unwrap();
        assert_eq!(host, "sed0");
        // Volatile refusal surfaces as an application error.
        assert!(client
            .store_data("tmp", DietValue::ScalarI32(1), Persistence::Volatile)
            .is_err());
        // Repeated ref calls all land on the holder — only the id travels.
        for _ in 0..4 {
            let (p, _) = client
                .call_with_retry(sum_ref_profile(&client, "xs"), &fast_policy())
                .unwrap();
            assert_eq!(p.get_f64(1).unwrap(), 6.5);
        }
        let hist = client.history();
        assert_eq!(hist.len(), 4);
        assert!(hist.iter().all(|(server, _)| server == "sed0"));
        assert_eq!(
            client
                .metrics()
                .counter_value("diet_client_data_reships_total"),
            0
        );
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn lost_holder_triggers_inline_reship_and_no_lost_request() {
        let (client, seds) = data_session();
        client
            .store_data(
                "xs",
                DietValue::vec_f64(vec![4.0, 0.5]),
                Persistence::Persistent,
            )
            .unwrap();
        // The hosting SeD dies: the MA drops it and its catalog entries.
        let ma = client.ma().unwrap().clone();
        seds[0].shutdown();
        assert!(ma.deregister("sed0"));
        assert!(ma.catalog().unwrap().locate("xs").is_none());
        // The call lands on sed1, which cannot resolve the ref anywhere;
        // the client re-ships the cached payload inline and succeeds.
        let (p, stats) = client
            .call_with_retry(sum_ref_profile(&client, "xs"), &fast_policy())
            .unwrap();
        assert_eq!(p.get_f64(1).unwrap(), 4.5);
        assert_eq!(stats.retries, 1);
        assert_eq!(
            client
                .metrics()
                .counter_value("diet_client_data_reships_total"),
            1
        );
        // The re-shipped payload was re-hosted and re-published by sed1.
        assert_eq!(ma.catalog().unwrap().holders("xs"), vec!["sed1"]);
        let (p, stats) = client
            .call_with_retry(sum_ref_profile(&client, "xs"), &fast_policy())
            .unwrap();
        assert_eq!(p.get_f64(1).unwrap(), 4.5);
        assert_eq!(stats.retries, 0);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn unknown_ref_is_not_reshipped() {
        // A reference this client never stored cannot be repaired locally:
        // the DataNotFound surfaces to the caller instead of looping.
        let (client, seds) = data_session();
        match client.call_with_retry(sum_ref_profile(&client, "ghost"), &fast_policy()) {
            Err(DietError::DataNotFound(id)) => assert_eq!(id, "ghost"),
            other => panic!("expected DataNotFound, got {other:?}"),
        }
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn initialize_from_config_resolves_the_ma() {
        let (client0, seds) = session(0, 1);
        // Re-register the same MA under a name server and connect via config.
        let ma = client0.ma().unwrap().clone();
        let ns = crate::naming::NameServer::new();
        ns.register(ma);
        let client =
            DietClient::initialize_from_config("MAName = MA\ntraceLevel = 2\n", &ns).unwrap();
        let (p, _) = client.call(square_profile(6)).unwrap();
        assert_eq!(p.get_i32(1).unwrap(), 36);
        // Bad config / unknown MA both error.
        assert!(DietClient::initialize_from_config("traceLevel = 2", &ns).is_err());
        assert!(DietClient::initialize_from_config("MAName = nope", &ns).is_err());
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn finalize_blocks_further_calls() {
        let (mut client, seds) = session(0, 1);
        assert!(client.is_initialized());
        client.finalize();
        assert!(!client.is_initialized());
        assert!(matches!(
            client.call(square_profile(1)),
            Err(DietError::NotInitialized)
        ));
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn unknown_service_surfaces_not_found() {
        let (client, seds) = session(0, 1);
        let d = ProfileDesc::alloc("missing", -1, -1, 0);
        let p = Profile::alloc(&d);
        assert!(matches!(client.call(p), Err(DietError::ServiceNotFound(_))));
        for s in seds {
            s.shutdown();
        }
    }
}
