//! The client API.
//!
//! "In the DIET architecture, a client is an application which uses DIET to
//! request a service. The goal of the client is to connect to a Master Agent
//! in order to dispose of a SeD which will be able to solve the problem.
//! Then the client sends input data to the chosen SED and, after the end of
//! computation, retrieve output data."
//!
//! The API follows the GridRPC shape the paper highlights:
//! `initialize` / `call` / `async_call` + wait / `finalize`, with per-call
//! measurements of *finding time* (MA traversal) and *latency* (data send +
//! service initiation + queue wait) — the two quantities of Figure 5.

use crate::agent::MasterAgent;
use crate::error::DietError;
use crate::profile::Profile;
use crate::sed::SolveOutcome;
use crossbeam::channel::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-call measurements — the client-side view the paper instruments.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallStats {
    /// Time for the MA to return a suitable SeD ("finding time").
    pub finding: f64,
    /// Client → SeD submission (data send) time.
    pub send: f64,
    /// Time the request waited in the SeD queue before starting.
    pub queue_wait: f64,
    /// Solve execution time on the SeD.
    pub solve: f64,
    /// End-to-end wall time of the call.
    pub total: f64,
}

impl CallStats {
    /// The paper's "latency": everything between submission and the start of
    /// service execution (data transfer + initiation + queue wait).
    pub fn latency(&self) -> f64 {
        self.send + self.queue_wait
    }

    /// Middleware overhead excluding queue wait (finding + send) — the
    /// ≈70 ms/request quantity of Section 5.2.
    pub fn overhead(&self) -> f64 {
        self.finding + self.send
    }
}

/// Handle for an asynchronous call (the GridRPC `grpc_call_async` analog).
pub struct CallHandle {
    server: String,
    issued: Instant,
    stats: CallStats,
    rx: Receiver<SolveOutcome>,
}

impl CallHandle {
    /// Which SeD the request was mapped to.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Block until the result arrives (the `grpc_wait` analog).
    pub fn wait(self) -> Result<(Profile, CallStats), DietError> {
        let outcome = self
            .rx
            .recv()
            .map_err(|_| DietError::Transport("SeD dropped the reply channel".into()))?;
        self.finish(outcome)
    }

    /// Wait with a timeout.
    pub fn wait_timeout(self, d: Duration) -> Result<(Profile, CallStats), DietError> {
        match self.rx.recv_timeout(d) {
            Ok(outcome) => self.finish(outcome),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(DietError::Timeout {
                after_secs: d.as_secs_f64(),
            }),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(DietError::Transport("SeD dropped the reply channel".into()))
            }
        }
    }

    /// Non-blocking probe (the `grpc_probe` analog): Some when complete.
    pub fn try_wait(self) -> Result<Result<(Profile, CallStats), DietError>, CallHandle> {
        match self.rx.try_recv() {
            Ok(outcome) => Ok(self.finish(outcome)),
            Err(crossbeam::channel::TryRecvError::Empty) => Err(self),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Ok(Err(
                DietError::Transport("SeD dropped the reply channel".into()),
            )),
        }
    }

    fn finish(mut self, outcome: SolveOutcome) -> Result<(Profile, CallStats), DietError> {
        self.stats.queue_wait = outcome.queue_wait;
        self.stats.solve = outcome.solve_time;
        self.stats.total = self.issued.elapsed().as_secs_f64();
        outcome.result.map(|p| (p, self.stats))
    }
}

/// A DIET client session (the `diet_initialize` … `diet_finalize` span).
pub struct DietClient {
    ma: Option<Arc<MasterAgent>>,
    /// Completed calls' stats, in completion order.
    history: parking_lot::Mutex<Vec<(String, CallStats)>>,
}

impl DietClient {
    /// `diet_initialize(configuration_file, ...)` — the configuration here
    /// is simply the MA reference that the config file would name.
    pub fn initialize(ma: Arc<MasterAgent>) -> Self {
        DietClient {
            ma: Some(ma),
            history: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// The full `diet_initialize` path: parse the configuration file text,
    /// resolve its `MAName` through the name server, open the session.
    pub fn initialize_from_config(
        config_text: &str,
        names: &crate::naming::NameServer,
    ) -> Result<Self, DietError> {
        let cfg = crate::config::DietConfig::parse(config_text)?;
        let ma = names.resolve(cfg.ma_name()?)?;
        Ok(Self::initialize(ma))
    }

    fn ma(&self) -> Result<&Arc<MasterAgent>, DietError> {
        self.ma.as_ref().ok_or(DietError::NotInitialized)
    }

    /// Submit a problem asynchronously: find a SeD, ship the data, return a
    /// handle. The profile's service name selects the problem.
    pub fn async_call(&self, profile: Profile) -> Result<CallHandle, DietError> {
        let ma = self.ma()?;
        let t0 = Instant::now();
        let sed = ma.submit(&profile.service)?;
        let finding = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let rx = sed.submit(profile)?;
        let send = t1.elapsed().as_secs_f64();

        Ok(CallHandle {
            server: sed.config.label.clone(),
            issued: t0,
            stats: CallStats {
                finding,
                send,
                ..Default::default()
            },
            rx,
        })
    }

    /// Synchronous call (the `diet_call` analog): the profile is consumed
    /// and returned with OUT arguments filled by the server.
    pub fn call(&self, profile: Profile) -> Result<(Profile, CallStats), DietError> {
        let service = profile.service.clone();
        let handle = self.async_call(profile)?;
        let server = handle.server().to_string();
        let res = handle.wait();
        if let Ok((_, stats)) = &res {
            self.history.lock().push((server, *stats));
        } else {
            let _ = service;
        }
        res
    }

    /// Record an async call's stats into the session history (callers of
    /// `async_call`/`wait` do this by hand; `call` does it automatically).
    pub fn record(&self, server: &str, stats: CallStats) {
        self.history.lock().push((server.to_string(), stats));
    }

    /// Completed-call history: (server label, stats).
    pub fn history(&self) -> Vec<(String, CallStats)> {
        self.history.lock().clone()
    }

    /// `diet_finalize()` — drops the MA reference; further calls error.
    pub fn finalize(&mut self) {
        self.ma = None;
    }

    pub fn is_initialized(&self) -> bool {
        self.ma.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentNode;
    use crate::data::{DietValue, Persistence};
    use crate::profile::{ArgTag, ProfileDesc};
    use crate::sched::RoundRobin;
    use crate::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};

    fn square_table(delay_ms: u64) -> ServiceTable {
        let mut d = ProfileDesc::alloc("square", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(move |p: &mut Profile| {
            if delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            let x = p.get_i32(0)?;
            p.set(1, DietValue::ScalarI32(x * x), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(2);
        t.add(d, solve).unwrap();
        t
    }

    fn session(delay_ms: u64, n_seds: usize) -> (DietClient, Vec<Arc<SedHandle>>) {
        let seds: Vec<Arc<SedHandle>> = (0..n_seds)
            .map(|i| {
                SedHandle::spawn(
                    SedConfig::new(&format!("sed{i}"), 1.0),
                    square_table(delay_ms),
                )
            })
            .collect();
        let la = AgentNode::leaf("LA", seds.clone());
        let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()));
        (DietClient::initialize(ma), seds)
    }

    fn square_profile(x: i32) -> Profile {
        let d = ProfileDesc::alloc("square", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
            .unwrap();
        p
    }

    #[test]
    fn sync_call_returns_out_args_and_stats() {
        let (client, seds) = session(0, 1);
        let (p, stats) = client.call(square_profile(9)).unwrap();
        assert_eq!(p.get_i32(1).unwrap(), 81);
        assert!(stats.total >= stats.solve);
        assert!(stats.finding >= 0.0 && stats.send >= 0.0);
        assert_eq!(client.history().len(), 1);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn async_calls_overlap() {
        let (client, seds) = session(50, 2);
        let t0 = Instant::now();
        let h1 = client.async_call(square_profile(2)).unwrap();
        let h2 = client.async_call(square_profile(3)).unwrap();
        let (p1, _) = h1.wait().unwrap();
        let (p2, _) = h2.wait().unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(p1.get_i32(1).unwrap(), 4);
        assert_eq!(p2.get_i32(1).unwrap(), 9);
        // Two 50 ms solves on two SeDs should take well under 100 ms.
        assert!(
            elapsed < Duration::from_millis(95),
            "calls did not overlap: {elapsed:?}"
        );
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn queueing_shows_up_in_latency() {
        let (client, seds) = session(40, 1);
        let h1 = client.async_call(square_profile(1)).unwrap();
        let h2 = client.async_call(square_profile(2)).unwrap();
        let (_, s1) = h1.wait().unwrap();
        let (_, s2) = h2.wait().unwrap();
        assert!(
            s2.latency() > s1.latency() + 0.03,
            "second call should queue behind the first: {} vs {}",
            s2.latency(),
            s1.latency()
        );
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn try_wait_polls() {
        let (client, seds) = session(30, 1);
        let h = client.async_call(square_profile(4)).unwrap();
        let mut h = match h.try_wait() {
            Err(h) => h, // not ready yet
            Ok(done) => {
                // Extremely fast machine: accept immediate completion.
                assert_eq!(done.unwrap().0.get_i32(1).unwrap(), 16);
                for s in seds {
                    s.shutdown();
                }
                return;
            }
        };
        loop {
            match h.try_wait() {
                Ok(done) => {
                    assert_eq!(done.unwrap().0.get_i32(1).unwrap(), 16);
                    break;
                }
                Err(again) => {
                    h = again;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn wait_timeout_fires() {
        let (client, seds) = session(200, 1);
        let h = client.async_call(square_profile(5)).unwrap();
        match h.wait_timeout(Duration::from_millis(20)) {
            Err(DietError::Timeout { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn initialize_from_config_resolves_the_ma() {
        let (client0, seds) = session(0, 1);
        // Re-register the same MA under a name server and connect via config.
        let ma = client0.ma().unwrap().clone();
        let ns = crate::naming::NameServer::new();
        ns.register(ma);
        let client = DietClient::initialize_from_config(
            "MAName = MA\ntraceLevel = 2\n",
            &ns,
        )
        .unwrap();
        let (p, _) = client.call(square_profile(6)).unwrap();
        assert_eq!(p.get_i32(1).unwrap(), 36);
        // Bad config / unknown MA both error.
        assert!(DietClient::initialize_from_config("traceLevel = 2", &ns).is_err());
        assert!(DietClient::initialize_from_config("MAName = nope", &ns).is_err());
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn finalize_blocks_further_calls() {
        let (mut client, seds) = session(0, 1);
        assert!(client.is_initialized());
        client.finalize();
        assert!(!client.is_initialized());
        assert!(matches!(
            client.call(square_profile(1)),
            Err(DietError::NotInitialized)
        ));
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn unknown_service_surfaces_not_found() {
        let (client, seds) = session(0, 1);
        let d = ProfileDesc::alloc("missing", -1, -1, 0);
        let p = Profile::alloc(&d);
        assert!(matches!(
            client.call(p),
            Err(DietError::ServiceNotFound(_))
        ));
        for s in seds {
            s.shutdown();
        }
    }
}
