//! The Zel'dovich pancake — the canonical validation problem for
//! cosmological PM codes (e.g. RAMSES's own test suite).
//!
//! A single plane-wave perturbation in an Einstein–de-Sitter universe has an
//! *exact* solution up to shell crossing:
//!
//! ```text
//!   x(q, a) = q + (D(a)/D(a_c)) · sin(2πq) / (2π) · A
//! ```
//!
//! choosing the amplitude so caustics form at `a_c`. Before `a_c` the PM
//! integrator must track the analytic trajectories; we start at `a_i = 0.1`,
//! evolve to `a = 0.5` with collapse scheduled at `a_c = 1.0`, and compare
//! positions against the analytic map.

use grafic::CosmoParams;
use ramses::cosmology::Cosmology;
use ramses::gravity::{drift, kick, PmGravity, StepControl};
use ramses::particles::Particles;

/// EdS-like cosmology (Ωm = 1) so D(a) = a exactly.
fn eds() -> CosmoParams {
    CosmoParams {
        omega_m: 1.0,
        omega_l: 0.0,
        omega_b: 0.0,
        h: 0.7,
        n_s: 1.0,
        sigma8: 0.8,
        a_init: 0.1,
    }
}

/// Analytic comoving position and canonical momentum at expansion factor `a`
/// for Lagrangian coordinate `q`, with caustic at `a_c`.
fn analytic(q: f64, a: f64, a_c: f64, cosmo: &Cosmology) -> (f64, f64) {
    let amp = 1.0 / (2.0 * std::f64::consts::PI);
    let d_ratio = a / a_c; // EdS: D ∝ a
    let s = (2.0 * std::f64::consts::PI * q).sin();
    let x = (q + d_ratio * amp * s).rem_euclid(1.0);
    // p = a² dx/dt = a² (dD/dt) ψ/D(a_c); EdS: D = a, dD/dt = ȧ = a·H(a),
    // so p = a³ H(a) ψ / a_c.
    let hub = cosmo.hubble(a);
    let p = a * a * a * hub * (1.0 / a_c) * amp * s;
    (x, p)
}

#[test]
fn pancake_tracks_analytic_solution_before_shell_crossing() {
    let params = eds();
    let cosmo = Cosmology::new(params.clone());
    let a_i = 0.1;
    let a_c = 1.0;
    let a_end = 0.5;
    let n = 32; // particles along x
                // Transverse sampling must match the mesh: sparser sampling turns the
                // planes into rod lattices whose self-structure biases the plane force.
    let ny = 32;

    // Build the plane-wave load exactly on the analytic solution at a_i.
    let mut parts = Particles::default();
    let mut id = 0u64;
    for i in 0..n {
        let q = (i as f64 + 0.5) / n as f64;
        let (x, p) = analytic(q, a_i, a_c, &cosmo);
        for j in 0..ny {
            for k in 0..ny {
                parts.push(
                    [
                        x,
                        (j as f64 + 0.5) / ny as f64,
                        (k as f64 + 0.5) / ny as f64,
                    ],
                    [p, 0.0, 0.0],
                    1.0 / (n * ny * ny) as f64,
                    id,
                );
                id += 1;
            }
        }
    }

    // Integrate with the production PM machinery on a 32-mesh.
    let gravity = PmGravity::new(32);
    let sc = StepControl {
        courant_cells: 0.5,
        freefall: 0.3,
        max_dln_a: 0.02,
    };
    let mut a = a_i;
    let mut steps = 0;
    while a < a_end - 1e-12 && steps < 2000 {
        let field = gravity.field(&parts, &cosmo, a);
        let rho_max = field.rho.data.iter().cloned().fold(0.0f64, f64::max);
        let acc = gravity.accelerations(&parts, &field);
        let t_now = cosmo.t_of_a(a);
        let mut dt = sc.dt(&parts, rho_max, &cosmo, a, 32);
        dt = dt.min(cosmo.t_of_a(a_end) - t_now);
        kick(&mut parts, &acc, a, dt / 2.0);
        let a_mid = cosmo.a_of_t(t_now + dt / 2.0);
        drift(&mut parts, a_mid, dt);
        let a_new = cosmo.a_of_t(t_now + dt);
        let field2 = gravity.field(&parts, &cosmo, a_new);
        let acc2 = gravity.accelerations(&parts, &field2);
        kick(&mut parts, &acc2, a_new, dt / 2.0);
        a = a_new;
        steps += 1;
    }
    assert!(a >= a_end - 1e-6, "integration stalled at a = {a}");

    // Compare against the analytic map (displacement-level accuracy: a
    // fraction of a mesh cell).
    let mut max_err = 0.0f64;
    let mut rms = 0.0;
    for i in 0..n {
        let q = (i as f64 + 0.5) / n as f64;
        let (x_exact, _) = analytic(q, a_end, a_c, &cosmo);
        // Average the ny² particles sharing this q (they remain a plane).
        let mut x_num = 0.0;
        for jk in 0..(ny * ny) {
            let idx = i * ny * ny + jk;
            let mut dx = parts.pos[idx][0] - x_exact;
            if dx > 0.5 {
                dx -= 1.0;
            }
            if dx < -0.5 {
                dx += 1.0;
            }
            x_num += dx;
        }
        let err = (x_num / (ny * ny) as f64).abs();
        max_err = max_err.max(err);
        rms += err * err;
    }
    rms = (rms / n as f64).sqrt();
    let cell = 1.0 / 32.0;
    assert!(
        max_err < 0.5 * cell,
        "max position error {max_err:.5} exceeds half a mesh cell ({:.5})",
        0.5 * cell
    );
    assert!(
        rms < 0.2 * cell,
        "rms position error {rms:.5} exceeds 0.2 mesh cells"
    );
}

#[test]
fn pancake_plane_symmetry_is_preserved() {
    // Transverse coordinates must not move at all: the problem is 1-D.
    let params = eds();
    let cosmo = Cosmology::new(params);
    let n = 16;
    let ny = 4;
    let mut parts = Particles::default();
    let mut id = 0;
    for i in 0..n {
        let q = (i as f64 + 0.5) / n as f64;
        let (x, p) = analytic(q, 0.1, 1.0, &cosmo);
        for j in 0..ny {
            for k in 0..ny {
                parts.push(
                    [
                        x,
                        (j as f64 + 0.5) / ny as f64,
                        (k as f64 + 0.5) / ny as f64,
                    ],
                    [p, 0.0, 0.0],
                    1.0 / (n * ny * ny) as f64,
                    id,
                );
                id += 1;
            }
        }
    }
    let y0: Vec<f64> = parts.pos.iter().map(|p| p[1]).collect();
    let gravity = PmGravity::new(16);
    let mut a = 0.1;
    for _ in 0..20 {
        let field = gravity.field(&parts, &cosmo, a);
        let acc = gravity.accelerations(&parts, &field);
        let t = cosmo.t_of_a(a);
        let dt = 0.002;
        kick(&mut parts, &acc, a, dt / 2.0);
        drift(&mut parts, a, dt);
        let a_new = cosmo.a_of_t(t + dt);
        let field2 = gravity.field(&parts, &cosmo, a_new);
        let acc2 = gravity.accelerations(&parts, &field2);
        kick(&mut parts, &acc2, a_new, dt / 2.0);
        a = a_new;
    }
    for (p, y) in parts.pos.iter().zip(&y0) {
        assert!(
            (p[1] - y).abs() < 1e-10,
            "transverse drift detected: {} -> {}",
            y,
            p[1]
        );
    }
}
