//! Property tests for the simulation kernel's structural invariants.

use proptest::prelude::*;
use ramses::amr::{AmrParams, Octree};
use ramses::io;
use ramses::nbody::Snapshot;
use ramses::particles::{cic_deposit, wrap01, Particles};
use ramses::peano;
use ramses::units::Units;

fn arb_particles(max_n: usize) -> impl Strategy<Value = Particles> {
    prop::collection::vec(
        (
            (0.0f64..1.0),
            (0.0f64..1.0),
            (0.0f64..1.0),
            (-2.0f64..2.0),
            (1e-6f64..1.0),
        ),
        1..max_n,
    )
    .prop_map(|rows| {
        let mut p = Particles::default();
        for (i, (x, y, z, v, m)) in rows.into_iter().enumerate() {
            p.push([x, y, z], [v, -v, v * 0.5], m, i as u64);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Peano-Hilbert encode/decode are mutual inverses for any coordinates.
    #[test]
    fn peano_bijective(order in 1u32..12, x in 0u64..4096, y in 0u64..4096, z in 0u64..4096) {
        let n = 1u64 << order;
        let (x, y, z) = (x % n, y % n, z % n);
        let k = peano::encode(x, y, z, order);
        prop_assert!(order == 21 || k < 1u64 << (3 * order));
        prop_assert_eq!(peano::decode(k, order), (x, y, z));
    }

    /// Adjacent keys decode to adjacent cells (unit Manhattan step).
    #[test]
    fn peano_continuity(order in 1u32..6, k in 0u64..32768) {
        let kmax = (1u64 << (3 * order)) - 1;
        let k = k % kmax;
        let a = peano::decode(k, order);
        let b = peano::decode(k + 1, order);
        let d = (a.0 as i64 - b.0 as i64).abs()
            + (a.1 as i64 - b.1 as i64).abs()
            + (a.2 as i64 - b.2 as i64).abs();
        prop_assert_eq!(d, 1);
    }

    /// Every key belongs to exactly one domain, and domains are ordered.
    #[test]
    fn peano_domains_partition(keys in prop::collection::vec(0u64..4096, 1..200), ndom in 1usize..9) {
        let order = 4;
        let cuts = peano::domain_cuts(keys.clone(), ndom, order);
        prop_assert_eq!(cuts.len(), ndom);
        for w in cuts.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for k in keys {
            let d = peano::domain_of(k, &cuts);
            prop_assert!(d < ndom);
            if d > 0 {
                prop_assert!(k >= cuts[d - 1]);
            }
        }
    }

    /// CIC deposit conserves total mass exactly for arbitrary particle sets.
    #[test]
    fn cic_mass_conservation(parts in arb_particles(200), nbits in 2u32..5) {
        let n = 1usize << nbits;
        let mesh = cic_deposit(&parts, n);
        let total = mesh.sum() / (n as f64).powi(3);
        prop_assert!((total - parts.total_mass()).abs() < 1e-9 * (1.0 + parts.total_mass()));
        // Density is non-negative everywhere.
        for &v in &mesh.data {
            prop_assert!(v >= -1e-12);
        }
    }

    /// wrap01 always lands in [0, 1) and is periodic.
    #[test]
    fn wrap01_properties(x in -1e3f64..1e3) {
        let w = wrap01(x);
        prop_assert!((0.0..1.0).contains(&w));
        let w2 = wrap01(x + 7.0);
        prop_assert!((w - w2).abs() < 1e-9 || (1.0 - (w - w2).abs()) < 1e-9);
    }

    /// The octree preserves particle count, places particles only on leaves,
    /// and respects parent/child geometry, for arbitrary particle clouds.
    #[test]
    fn octree_invariants(parts in arb_particles(300)) {
        let tree = Octree::build(
            &parts,
            AmrParams {
                max_particles_per_cell: 4,
                max_level: 7,
                base_level: 1,
            },
        );
        prop_assert!(tree.check_invariants(&parts).is_ok());
        prop_assert_eq!(tree.total_leaf_particles(), parts.len());
    }

    /// Hilbert-ordered decomposition assigns each leaf exactly once.
    #[test]
    fn octree_decompose_partition(parts in arb_particles(150), ndom in 1usize..6) {
        let tree = Octree::build(&parts, AmrParams::default());
        let domains = tree.decompose(ndom);
        let mut all: Vec<_> = domains.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut leaves = tree.leaves();
        leaves.sort_unstable();
        prop_assert_eq!(all, leaves);
    }

    /// Snapshot encode/decode round-trips arbitrary particle data exactly.
    #[test]
    fn snapshot_roundtrip(parts in arb_particles(100), a in 0.01f64..1.0, step in 0usize..10_000) {
        let snap = Snapshot {
            a,
            t: a * 0.9,
            step,
            particles: parts,
            units: Units::new(100.0, 0.71, 0.27),
        };
        let bytes = io::encode_snapshot(&snap);
        let back = io::decode_snapshot(bytes).unwrap();
        prop_assert_eq!(back.particles, snap.particles);
        prop_assert_eq!(back.step, snap.step);
        prop_assert!((back.a - snap.a).abs() < 1e-15);
    }

    /// Any truncation of a valid snapshot is rejected, never mis-decoded.
    #[test]
    fn snapshot_truncation_detected(parts in arb_particles(20), frac in 0.0f64..0.99) {
        let snap = Snapshot {
            a: 0.5,
            t: 0.4,
            step: 1,
            particles: parts,
            units: Units::new(100.0, 0.71, 0.27),
        };
        let bytes = io::encode_snapshot(&snap);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let sliced = bytes.slice(0..cut);
        prop_assert!(io::decode_snapshot(sliced).is_err());
    }
}
