//! Property tests for the finite-volume Euler solver: conservation,
//! positivity and Riemann-solver consistency over random states.

use proptest::prelude::*;
use ramses::hydro::{riemann_flux, HydroGrid, Prim, Riemann, GAMMA_DEFAULT};

fn arb_prim() -> impl Strategy<Value = Prim> {
    (
        0.05f64..10.0,
        -3.0f64..3.0,
        -3.0f64..3.0,
        -3.0f64..3.0,
        0.01f64..10.0,
    )
        .prop_map(|(rho, u, v, w, p)| Prim {
            rho,
            vel: [u, v, w],
            p,
        })
}

/// A smooth random field: a handful of Fourier modes with bounded amplitude
/// so the initial state is positive everywhere.
fn arb_smooth_grid() -> impl Strategy<Value = HydroGrid> {
    (0.1f64..0.45, 0.1f64..0.45, 1u64..4, 1u64..4, 0.2f64..2.0).prop_map(
        |(arho, ap, mx, my, p0)| {
            HydroGrid::from_fn(8, GAMMA_DEFAULT, |x| Prim {
                rho: 1.0 + arho * (2.0 * std::f64::consts::PI * mx as f64 * x[0]).sin(),
                vel: [
                    0.3 * (2.0 * std::f64::consts::PI * my as f64 * x[1]).cos(),
                    -0.2,
                    0.1,
                ],
                p: p0 * (1.0 + ap * (2.0 * std::f64::consts::PI * x[2]).sin()),
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mass, momentum and energy are conserved to round-off over several
    /// steps, for both Riemann solvers, on arbitrary smooth states.
    #[test]
    fn conservation(mut g in arb_smooth_grid(), hllc in any::<bool>()) {
        let solver = if hllc { Riemann::Hllc } else { Riemann::Hll };
        let m0 = g.total_mass();
        let e0 = g.total_energy();
        let p0 = g.total_momentum();
        for _ in 0..5 {
            let dt = g.max_dt(0.4);
            prop_assert!(dt.is_finite() && dt > 0.0);
            g.step(dt, solver);
        }
        prop_assert!((g.total_mass() - m0).abs() < 1e-11 * m0.max(1.0));
        prop_assert!((g.total_energy() - e0).abs() < 1e-10 * e0.abs().max(1.0));
        for (m, p) in g.total_momentum().into_iter().zip(p0) {
            prop_assert!((m - p).abs() < 1e-10);
        }
    }

    /// Density stays positive through evolution (positivity of the scheme
    /// under the CFL bound, for smooth initial data).
    #[test]
    fn density_positivity(mut g in arb_smooth_grid()) {
        for _ in 0..8 {
            let dt = g.max_dt(0.4);
            g.step(dt, Riemann::Hllc);
        }
        for c in &g.cells {
            prop_assert!(c.rho > 0.0, "negative density {}", c.rho);
        }
    }

    /// Riemann consistency: F(w, w) equals the exact physical flux, for any
    /// state, axis and solver.
    #[test]
    fn riemann_consistency(w in arb_prim(), axis in 0usize..3, hllc in any::<bool>()) {
        let solver = if hllc { Riemann::Hllc } else { Riemann::Hll };
        let f = riemann_flux(w, w, axis, 1.4, solver);
        // Reconstruct the exact flux from primitives.
        let u = w.vel[axis];
        let c = w.to_cons(1.4);
        let mut exact_mom = [c.mom[0] * u, c.mom[1] * u, c.mom[2] * u];
        exact_mom[axis] += w.p;
        prop_assert!((f.rho - c.rho * u).abs() < 1e-9 * (1.0 + c.rho.abs()));
        for (fm, em) in f.mom.into_iter().zip(exact_mom) {
            prop_assert!((fm - em).abs() < 1e-9 * (1.0 + em.abs()));
        }
        prop_assert!((f.e - (c.e + w.p) * u).abs() < 1e-9 * (1.0 + c.e.abs()));
    }

    /// Upwinding: fully supersonic flow takes the upwind flux exactly.
    #[test]
    fn riemann_supersonic_upwind(
        mut l in arb_prim(),
        mut r in arb_prim(),
        axis in 0usize..3,
        hllc in any::<bool>(),
    ) {
        // Make both states strongly supersonic in +axis.
        let cl = l.cs(1.4);
        let cr = r.cs(1.4);
        l.vel[axis] = 5.0 * (cl + cr) + 1.0;
        r.vel[axis] = l.vel[axis] + 0.1;
        let solver = if hllc { Riemann::Hllc } else { Riemann::Hll };
        let f = riemann_flux(l, r, axis, 1.4, solver);
        let u = l.vel[axis];
        let c = l.to_cons(1.4);
        prop_assert!((f.rho - c.rho * u).abs() < 1e-9 * (1.0 + (c.rho * u).abs()));
    }

    /// prim ↔ cons is a bijection on the physical region.
    #[test]
    fn prim_cons_bijection(w in arb_prim(), gamma in 1.1f64..2.0) {
        let back = w.to_cons(gamma).to_prim(gamma);
        prop_assert!((back.rho - w.rho).abs() < 1e-10 * w.rho);
        prop_assert!((back.p - w.p).abs() < 1e-9 * w.p.max(1.0));
        for d in 0..3 {
            prop_assert!((back.vel[d] - w.vel[d]).abs() < 1e-10 * (1.0 + w.vel[d].abs()));
        }
    }
}
