//! Determinism regression: the full simulation and the Poisson solver must
//! produce bitwise-identical results at every thread count.
//!
//! The pool's chunk partition is a function of the input length only, and
//! per-chunk results recombine in fixed order, so floating-point reductions
//! cannot be perturbed by parallelism. These tests pin that guarantee at the
//! system level. Run under `RAYON_NUM_THREADS=1` and `=4` in CI; they also
//! sweep thread counts in-process via `ThreadPool::install`.

use grafic::CosmoParams;
use ramses::nbody::{GasParams, RunParams, Simulation};
use ramses::particles::Mesh;
use ramses::poisson::{solve, MgConfig};

fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(f)
}

fn assert_mesh_bits_eq(a: &Mesh, b: &Mesh, what: &str, threads: usize) {
    assert_eq!(a.n, b.n);
    for (ix, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: cell {ix} differs at {threads} threads: {x} vs {y}"
        );
    }
}

#[test]
fn poisson_solve_bitwise_identical_across_thread_counts() {
    let n = 32;
    let mut s = Mesh::zeros(n);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let x = (i as f64 + 0.5) / n as f64;
                let y = (j as f64 + 0.5) / n as f64;
                let z = (k as f64 + 0.5) / n as f64;
                let ix = s.idx(i, j, k);
                s.data[ix] = (2.0 * std::f64::consts::PI * x).sin()
                    * (4.0 * std::f64::consts::PI * y).cos()
                    + (6.0 * std::f64::consts::PI * z).sin();
            }
        }
    }
    let cfg = MgConfig::default();
    let base = at_threads(1, || solve(&s, &cfg));
    for threads in [2, 4] {
        let sol = at_threads(threads, || solve(&s, &cfg));
        assert_eq!(sol.cycles, base.cycles);
        assert_eq!(
            sol.rel_residual.to_bits(),
            base.rel_residual.to_bits(),
            "residual differs at {threads} threads"
        );
        assert_mesh_bits_eq(&base.phi, &sol.phi, "phi", threads);
    }
}

fn run_params(gas: Option<GasParams>) -> RunParams {
    let cosmo = CosmoParams {
        a_init: 0.1,
        ..CosmoParams::default()
    };
    RunParams {
        cosmo,
        mesh_n: 8,
        a_end: 0.2,
        aout: vec![0.15],
        gas,
        ..RunParams::default()
    }
}

fn run_sim(gas: Option<GasParams>) -> Simulation {
    let params = run_params(gas);
    let ics = grafic::generate_single_level(&params.cosmo, 8, params.box_mpc_h, 42).particles;
    let mut sim = Simulation::from_ics(params, &ics);
    sim.run();
    sim
}

fn assert_sim_bits_eq(a: &Simulation, b: &Simulation, threads: usize) {
    assert_eq!(a.step, b.step, "step count differs at {threads} threads");
    assert_eq!(
        a.a.to_bits(),
        b.a.to_bits(),
        "expansion factor differs at {threads} threads"
    );
    for (i, (pa, pb)) in a.parts.pos.iter().zip(&b.parts.pos).enumerate() {
        for d in 0..3 {
            assert_eq!(
                pa[d].to_bits(),
                pb[d].to_bits(),
                "particle {i} pos[{d}] differs at {threads} threads"
            );
        }
    }
    for (i, (va, vb)) in a.parts.vel.iter().zip(&b.parts.vel).enumerate() {
        for d in 0..3 {
            assert_eq!(
                va[d].to_bits(),
                vb[d].to_bits(),
                "particle {i} vel[{d}] differs at {threads} threads"
            );
        }
    }
    match (&a.gas, &b.gas) {
        (None, None) => {}
        (Some(ga), Some(gb)) => {
            for (ix, (ca, cb)) in ga.cells.iter().zip(&gb.cells).enumerate() {
                assert_eq!(
                    ca.rho.to_bits(),
                    cb.rho.to_bits(),
                    "gas cell {ix} rho differs at {threads} threads"
                );
                assert_eq!(
                    ca.e.to_bits(),
                    cb.e.to_bits(),
                    "gas cell {ix} energy differs at {threads} threads"
                );
            }
        }
        _ => panic!("gas presence differs"),
    }
}

#[test]
fn dm_simulation_bitwise_identical_across_thread_counts() {
    let base = at_threads(1, || run_sim(None));
    for threads in [2, 4] {
        let other = at_threads(threads, || run_sim(None));
        assert_sim_bits_eq(&base, &other, threads);
    }
}

#[test]
fn gas_simulation_bitwise_identical_across_thread_counts() {
    let base = at_threads(1, || run_sim(Some(GasParams::default())));
    for threads in [2, 4] {
        let other = at_threads(threads, || run_sim(Some(GasParams::default())));
        assert_sim_bits_eq(&base, &other, threads);
    }
}
