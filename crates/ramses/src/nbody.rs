//! Top-level simulation driver.
//!
//! Mirrors the RAMSES run loop the paper's services execute: read initial
//! conditions (single-level or zoom), advance dark matter with the PM/AMR
//! machinery from `a_init` to `a_end`, and emit snapshots at a prescribed
//! list of expansion factors — "Given a list of time steps (or expansion
//! factor), RAMSES outputs the current state of the universe".

use crate::amr::{AmrParams, Octree};
use crate::cosmology::Cosmology;
use crate::gravity::{drift, kick, PmGravity, StepControl};
use crate::hydro::{HydroGrid, Prim, Riemann, GAMMA_DEFAULT};
use crate::particles::{cic_deposit, Particles};
use crate::units::Units;
use grafic::CosmoParams;
use rayon::prelude::*;

/// Gas (baryon) component configuration. When present, the simulation
/// co-evolves an Eulerian gas fluid on the PM mesh alongside the dark
/// matter, coupled through the same gravitational potential — the
/// "N body solver, coupled to a finite volume Euler solver" of the paper.
///
/// Simplifications relative to full RAMSES (documented in DESIGN.md): the
/// gas is initialised tracing the dark matter with density `f_baryon·ρ_dm`,
/// it feels the dark-matter potential but does not source gravity itself
/// (baryons are ~16% of the matter), and the expansion-drag terms of the
/// supercomoving formulation are dropped.
#[derive(Debug, Clone, Copy)]
pub struct GasParams {
    /// Baryon fraction Ωb/Ωm used to set the initial gas density.
    pub f_baryon: f64,
    /// Adiabatic index.
    pub gamma: f64,
    /// Riemann solver for the Godunov sweeps.
    pub riemann: Riemann,
    /// Initial (uniform) gas pressure in code units — sets the IC
    /// temperature floor.
    pub p_init: f64,
    /// Hydro CFL number.
    pub cfl: f64,
}

impl Default for GasParams {
    fn default() -> Self {
        GasParams {
            f_baryon: 0.16,
            gamma: GAMMA_DEFAULT,
            riemann: Riemann::Hllc,
            p_init: 1e-8,
            cfl: 0.4,
        }
    }
}

/// Run configuration — the analog of the RAMSES namelist file the client
/// ships as the first profile argument.
#[derive(Debug, Clone)]
pub struct RunParams {
    pub cosmo: CosmoParams,
    /// Box size in Mpc/h.
    pub box_mpc_h: f64,
    /// PM base mesh per dimension.
    pub mesh_n: usize,
    /// Final expansion factor.
    pub a_end: f64,
    /// Expansion factors at which to dump snapshots (sorted ascending).
    pub aout: Vec<f64>,
    /// AMR refinement parameters.
    pub amr: AmrParams,
    /// Step controller.
    pub steps: StepControl,
    /// Safety cap on the number of coarse steps.
    pub max_steps: usize,
    /// Optional gas component (None = dark-matter-only run).
    pub gas: Option<GasParams>,
    /// Enable two-level gravity refinement when the densest cell exceeds
    /// this overdensity: particles inside the refined patch get the 2×
    /// finer force (RAMSES's level-by-level gravity, one patch deep).
    pub refine_overdensity: Option<f64>,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            cosmo: CosmoParams::default(),
            box_mpc_h: 100.0,
            mesh_n: 16,
            a_end: 1.0,
            aout: vec![0.25, 0.5, 1.0],
            amr: AmrParams::default(),
            steps: StepControl::default(),
            max_steps: 10_000,
            gas: None,
            refine_overdensity: None,
        }
    }
}

/// A snapshot: the particle state at one expansion factor, plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub a: f64,
    pub t: f64,
    pub step: usize,
    pub particles: Particles,
    pub units: Units,
}

/// Per-step diagnostics the monitoring layer can sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    pub a: f64,
    pub dt: f64,
    pub rho_max: f64,
    pub amr_max_level: u32,
    pub n_leaves: usize,
    /// Particles that received the refined (fine-patch) force this step.
    pub n_refined: usize,
}

/// The simulation state machine.
pub struct Simulation {
    pub params: RunParams,
    pub cosmo: Cosmology,
    pub parts: Particles,
    pub gravity: PmGravity,
    /// Gas state on the PM mesh, when the run has a baryon component.
    pub gas: Option<HydroGrid>,
    pub a: f64,
    pub step: usize,
    pub stats: Vec<StepStats>,
    next_out: usize,
}

impl Simulation {
    /// Initialise from GRAFIC particles (positions in Mpc/h).
    pub fn from_ics(params: RunParams, ics: &grafic::IcParticles) -> Self {
        let cosmo = Cosmology::new(params.cosmo.clone());
        let parts = Particles::from_ics(ics, params.box_mpc_h);
        let a = params.cosmo.a_init;
        let gravity = PmGravity::new(params.mesh_n);
        let gas = params.gas.map(|gp| {
            // Gas traces the dark matter initially: ρ_gas = f_b · ρ_dm,
            // at rest with a small uniform pressure.
            let rho_dm = cic_deposit(&parts, params.mesh_n);
            let n = params.mesh_n;
            let mut ix = 0;
            HydroGrid::from_fn(n, gp.gamma, |_| {
                let rho = (gp.f_baryon * rho_dm.data[ix]).max(1e-10 * gp.f_baryon);
                ix += 1;
                Prim {
                    rho,
                    vel: [0.0; 3],
                    p: gp.p_init,
                }
            })
        });
        Simulation {
            params,
            cosmo,
            parts,
            gravity,
            gas,
            a,
            step: 0,
            stats: Vec::new(),
            next_out: 0,
        }
    }

    pub fn units(&self) -> Units {
        Units::new(
            self.params.box_mpc_h,
            self.params.cosmo.h,
            self.params.cosmo.omega_m,
        )
    }

    /// Advance one KDK step; returns the new expansion factor.
    pub fn advance_step(&mut self) -> f64 {
        let field = self.gravity.field(&self.parts, &self.cosmo, self.a);
        // Parallel max is exact, so this cannot perturb the timestep.
        let rho_max = field
            .rho
            .data
            .par_iter()
            .with_min_len(1024)
            .map(|&v| v)
            .reduce(|| 0.0f64, f64::max);
        let acc = self.gravity.accelerations(&self.parts, &field);

        let mut dt = self.params.steps.dt(
            &self.parts,
            rho_max,
            &self.cosmo,
            self.a,
            self.params.mesh_n,
        );
        // Do not step past the end or past the next output time.
        let t_now = self.cosmo.t_of_a(self.a);
        let t_end = self.cosmo.t_of_a(self.params.a_end);
        dt = dt.min(t_end - t_now).max(0.0);
        if self.next_out < self.params.aout.len() {
            let t_out = self.cosmo.t_of_a(self.params.aout[self.next_out]);
            if t_out > t_now {
                dt = dt.min(t_out - t_now);
            }
        }
        if dt <= 0.0 {
            return self.a;
        }

        // KICK (half), DRIFT (full), refresh a, KICK (half).
        let (acc, _n0) = self.refined_acc(acc, &field, self.a);
        kick(&mut self.parts, &acc, self.a, dt / 2.0);
        let a_mid = self.cosmo.a_of_t(t_now + dt / 2.0);
        drift(&mut self.parts, a_mid, dt);
        let a_new = self.cosmo.a_of_t(t_now + dt);
        let field2 = self.gravity.field(&self.parts, &self.cosmo, a_new);
        let acc2 = self.gravity.accelerations(&self.parts, &field2);
        let (acc2, n_refined) = self.refined_acc(acc2, &field2, a_new);
        kick(&mut self.parts, &acc2, a_new, dt / 2.0);

        // Gas: Godunov sweeps over the comoving interval (the same dt/a²
        // "drift" time the particles see), sub-cycled to the hydro CFL, then
        // the gravity source kick with the particles' dt/a factor.
        if let Some(gas) = &mut self.gas {
            let gp = self.params.gas.expect("gas grid implies gas params");
            let dt_hydro = dt / (a_mid * a_mid);
            let mut t = 0.0;
            let mut sub = 0;
            while t < dt_hydro && sub < 64 {
                let step = gas.max_dt(gp.cfl).min(dt_hydro - t);
                gas.step(step, gp.riemann);
                t += step;
                sub += 1;
            }
            gas.apply_gravity(&field2.accel, dt / a_new);
        }

        self.a = a_new;
        self.step += 1;

        // AMR diagnostics (the tree also drives refinement-aware timesteps
        // through rho_max; a full per-level sub-cycling is out of scope).
        let tree = Octree::build(&self.parts, self.params.amr);
        self.stats.push(StepStats {
            a: self.a,
            dt,
            rho_max,
            amr_max_level: tree.max_level_present(),
            n_leaves: tree.leaves().len(),
            n_refined,
        });
        self.a
    }

    /// Replace base-mesh accelerations with fine-patch values for particles
    /// inside the refinement region (when enabled and triggered). Returns
    /// the (possibly modified) accelerations and the refined-particle count.
    fn refined_acc(
        &self,
        mut acc: Vec<[f64; 3]>,
        field: &crate::gravity::ForceField,
        a: f64,
    ) -> (Vec<[f64; 3]>, usize) {
        let Some(threshold) = self.params.refine_overdensity else {
            return (acc, 0);
        };
        let Some((corner, extent)) = crate::refine::select_patch(&field.rho, threshold) else {
            return (acc, 0);
        };
        let patch = crate::refine::RefinedPatch::solve(
            corner,
            extent,
            &field.phi,
            &self.parts,
            self.cosmo.poisson_factor(a),
            &self.gravity.mg,
        );
        let mut n = 0;
        for (i, pos) in self.parts.pos.iter().enumerate() {
            if let Some(fine) = patch.accel(*pos) {
                acc[i] = fine;
                n += 1;
            }
        }
        (acc, n)
    }

    /// Run to completion, returning snapshots at the requested expansion
    /// factors plus a final snapshot at `a_end`.
    pub fn run(&mut self) -> Vec<Snapshot> {
        let mut snaps = Vec::new();
        while self.a < self.params.a_end - 1e-12 && self.step < self.params.max_steps {
            let a_prev = self.a;
            self.advance_step();
            if self.a <= a_prev {
                break; // dt collapsed to zero
            }
            while self.next_out < self.params.aout.len()
                && self.a >= self.params.aout[self.next_out] - 1e-9
            {
                snaps.push(self.snapshot());
                self.next_out += 1;
            }
        }
        // Final state snapshot if not already captured.
        if snaps
            .last()
            .map(|s| (s.a - self.a).abs() > 1e-9)
            .unwrap_or(true)
        {
            snaps.push(self.snapshot());
        }
        snaps
    }

    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            a: self.a,
            t: self.cosmo.t_of_a(self.a),
            step: self.step,
            particles: self.parts.clone(),
            units: self.units(),
        }
    }

    /// Kinetic + potential energy diagnostic (comoving; used by tests to
    /// check the integrator is not blowing up).
    pub fn kinetic_energy(&self) -> f64 {
        self.parts
            .vel
            .iter()
            .zip(&self.parts.mass)
            .map(|(v, m)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> RunParams {
        let cosmo = CosmoParams {
            a_init: 0.1,
            ..CosmoParams::default()
        };
        RunParams {
            cosmo,
            box_mpc_h: 100.0,
            mesh_n: 8,
            a_end: 0.2,
            aout: vec![0.15],
            amr: AmrParams {
                max_particles_per_cell: 8,
                max_level: 6,
                base_level: 2,
            },
            steps: StepControl::default(),
            max_steps: 500,
            gas: None,
            refine_overdensity: None,
        }
    }

    fn small_ics(seed: u64) -> grafic::IcParticles {
        let cosmo = CosmoParams {
            a_init: 0.1,
            ..CosmoParams::default()
        };
        grafic::generate_single_level(&cosmo, 8, 100.0, seed).particles
    }

    #[test]
    fn simulation_reaches_a_end() {
        let ics = small_ics(1);
        let mut sim = Simulation::from_ics(small_params(), &ics);
        let snaps = sim.run();
        assert!(sim.a >= 0.2 - 1e-6, "stopped at a = {}", sim.a);
        assert!(snaps.len() >= 2, "expected aout snapshot + final");
        assert!((snaps[0].a - 0.15).abs() < 0.02);
    }

    #[test]
    fn mass_is_conserved() {
        let ics = small_ics(2);
        let mut sim = Simulation::from_ics(small_params(), &ics);
        let m0 = sim.parts.total_mass();
        sim.run();
        assert!((sim.parts.total_mass() - m0).abs() < 1e-12);
    }

    #[test]
    fn particles_remain_in_box() {
        let ics = small_ics(3);
        let mut sim = Simulation::from_ics(small_params(), &ics);
        sim.run();
        for p in &sim.parts.pos {
            for x in p {
                assert!((0.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn structure_grows() {
        // Gravitational collapse: density contrast should grow from a_init
        // to a_end. Measure max CIC density before and after.
        let ics = small_ics(4);
        let params = {
            let mut p = small_params();
            p.a_end = 0.5;
            p.aout = vec![];
            p
        };
        let mut sim = Simulation::from_ics(params, &ics);
        let rho0 = crate::particles::cic_deposit(&sim.parts, 8)
            .data
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        sim.run();
        let rho1 = crate::particles::cic_deposit(&sim.parts, 8)
            .data
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!(
            rho1 > rho0,
            "no growth of structure: rho_max {rho0} -> {rho1}"
        );
    }

    #[test]
    fn snapshots_are_ordered_in_a() {
        let ics = small_ics(5);
        let params = {
            let mut p = small_params();
            p.aout = vec![0.12, 0.15, 0.18];
            p
        };
        let mut sim = Simulation::from_ics(params, &ics);
        let snaps = sim.run();
        for w in snaps.windows(2) {
            assert!(w[1].a >= w[0].a - 1e-12);
        }
    }

    #[test]
    fn refined_gravity_activates_on_collapse() {
        let ics = small_ics(10);
        let params = RunParams {
            mesh_n: 16,
            a_end: 0.7,
            aout: vec![],
            refine_overdensity: Some(8.0),
            ..small_params()
        };
        let mut sim = Simulation::from_ics(params, &ics);
        sim.run();
        // By a = 0.5 collapse exceeds the threshold: some steps refined.
        let refined_steps = sim.stats.iter().filter(|s| s.n_refined > 0).count();
        assert!(
            refined_steps > 0,
            "refinement never triggered (rho_max = {:?})",
            sim.stats.last().map(|s| s.rho_max)
        );
        // Mass conservation still holds.
        assert!((sim.parts.total_mass() - 1.0).abs() < 1e-9);
        // Particles stay in the box.
        for p in &sim.parts.pos {
            for x in p {
                assert!((0.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn gas_run_conserves_gas_mass() {
        let ics = small_ics(7);
        let params = RunParams {
            gas: Some(GasParams::default()),
            ..small_params()
        };
        let mut sim = Simulation::from_ics(params, &ics);
        let m0 = sim.gas.as_ref().unwrap().total_mass();
        assert!((m0 - 0.16).abs() < 0.02, "initial gas mass {m0}");
        sim.run();
        let m1 = sim.gas.as_ref().unwrap().total_mass();
        assert!(
            (m1 - m0).abs() < 1e-9 * m0,
            "gas mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn gas_falls_into_dark_matter_wells() {
        // Evolve with gravity coupling: the gas density field must end up
        // positively correlated with the dark-matter density field.
        let ics = small_ics(8);
        let params = RunParams {
            a_end: 0.5,
            aout: vec![],
            gas: Some(GasParams::default()),
            ..small_params()
        };
        let n = params.mesh_n;
        let mut sim = Simulation::from_ics(params, &ics);
        sim.run();
        let dm = crate::particles::cic_deposit(&sim.parts, n);
        let gas = sim.gas.as_ref().unwrap();
        let gm = gas.total_mass();
        // Pearson correlation between gas and DM density.
        let gmean = gm; // mean density = total mass (unit volume)
        let dmean = 1.0;
        let mut num = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (ix, c) in gas.cells.iter().enumerate() {
            let a = c.rho - gmean;
            let b = dm.data[ix] - dmean;
            num += a * b;
            va += a * a;
            vb += b * b;
        }
        let corr = num / (va.sqrt() * vb.sqrt()).max(1e-300);
        assert!(
            corr > 0.3,
            "gas should trace collapsed dark matter, corr = {corr}"
        );
    }

    #[test]
    fn dm_only_run_has_no_gas() {
        let ics = small_ics(9);
        let sim = Simulation::from_ics(small_params(), &ics);
        assert!(sim.gas.is_none());
    }

    #[test]
    fn stats_recorded_each_step() {
        let ics = small_ics(6);
        let mut sim = Simulation::from_ics(small_params(), &ics);
        sim.run();
        assert_eq!(sim.stats.len(), sim.step);
        for s in &sim.stats {
            assert!(s.dt > 0.0 && s.n_leaves > 0);
        }
    }
}
