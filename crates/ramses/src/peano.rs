//! 3-D Peano–Hilbert space-filling curve.
//!
//! RAMSES decomposes its computational volume among MPI processes by sorting
//! cells along the Hilbert curve and cutting the ordered list into
//! equal-work segments ([Teyssier 2002]; the paper's Section 3 cites this
//! "mesh partitioning strategy based on the Peano-Hilbert cell ordering").
//! The curve maps 3-D integer coordinates to a 1-D key such that points close
//! on the key line are close in space, giving compact, low-surface domains.
//!
//! The implementation is the classical transpose-based algorithm (Skilling
//! 2004): convert coordinates to a "transposed" Gray-code representation and
//! back. `encode`/`decode` are exact inverses for any `order ≤ 21`
//! (3·21 = 63 key bits).

/// Maximum supported curve order (bits per dimension).
pub const MAX_ORDER: u32 = 21;

/// Map 3-D lattice coordinates to a Hilbert key. `order` is the number of
/// bits per dimension; coordinates must be `< 2^order`.
///
/// ```
/// use ramses::peano::{encode, decode};
/// let key = encode(3, 5, 7, 4);
/// assert_eq!(decode(key, 4), (3, 5, 7));
/// ```
pub fn encode(x: u64, y: u64, z: u64, order: u32) -> u64 {
    assert!((1..=MAX_ORDER).contains(&order), "order out of range");
    let n = 1u64 << order;
    assert!(x < n && y < n && z < n, "coordinate exceeds 2^order");
    let mut coords = [x, y, z];
    axes_to_transpose(&mut coords, order);
    // Interleave the transposed bits, x high.
    let mut key = 0u64;
    for bit in (0..order).rev() {
        for c in &coords {
            key = (key << 1) | ((c >> bit) & 1);
        }
    }
    key
}

/// Inverse of [`encode`].
pub fn decode(key: u64, order: u32) -> (u64, u64, u64) {
    assert!((1..=MAX_ORDER).contains(&order), "order out of range");
    assert!(
        order == 63 / 3 || key < 1u64 << (3 * order),
        "key exceeds 2^(3·order)"
    );
    let mut coords = [0u64; 3];
    for i in 0..(3 * order) {
        let bit = (key >> (3 * order - 1 - i)) & 1;
        let axis = (i % 3) as usize;
        let pos = order - 1 - i / 3;
        coords[axis] |= bit << pos;
    }
    transpose_to_axes(&mut coords, order);
    (coords[0], coords[1], coords[2])
}

/// Skilling's transform: axes → transposed Hilbert representation.
fn axes_to_transpose(x: &mut [u64; 3], order: u32) {
    let m = 1u64 << (order - 1);
    // Inverse undo excess work.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..3 {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..3 {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u64;
    let mut q = m;
    while q > 1 {
        if x[2] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Skilling's transform: transposed Hilbert representation → axes.
fn transpose_to_axes(x: &mut [u64; 3], order: u32) {
    let n = 2u64 << (order - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[2] >> 1;
    for i in (1..3).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u64;
    while q != n {
        let p = q - 1;
        for i in (0..3).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Hilbert key of a point in the unit cube at a given order.
pub fn key_of_point(p: [f64; 3], order: u32) -> u64 {
    let n = (1u64 << order) as f64;
    let clamp = |v: f64| -> u64 {
        let v = v - v.floor(); // periodic wrap into [0,1)
        ((v * n) as u64).min((1u64 << order) - 1)
    };
    encode(clamp(p[0]), clamp(p[1]), clamp(p[2]), order)
}

/// Split the key space `[0, 2^{3·order})` into `ndomain` contiguous segments
/// with equal particle *work*: returns the key upper-bounds of each domain
/// such that each holds ≈ the same number of the given keys.
///
/// This is exactly RAMSES's load-balancing cut along the curve.
pub fn domain_cuts(mut keys: Vec<u64>, ndomain: usize, order: u32) -> Vec<u64> {
    assert!(ndomain >= 1);
    let key_max = if order >= 21 {
        u64::MAX
    } else {
        1u64 << (3 * order)
    };
    if keys.is_empty() {
        // Uniform cuts.
        return (1..=ndomain as u64)
            .map(|i| (key_max / ndomain as u64).saturating_mul(i))
            .collect();
    }
    keys.sort_unstable();
    let npart = keys.len();
    let mut cuts = Vec::with_capacity(ndomain);
    for d in 1..ndomain {
        let idx = d * npart / ndomain;
        cuts.push(keys[idx.min(npart - 1)]);
    }
    cuts.push(key_max);
    cuts
}

/// Find which domain a key belongs to, given cut upper bounds.
pub fn domain_of(key: u64, cuts: &[u64]) -> usize {
    match cuts.binary_search(&key) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
    .min(cuts.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_orders() {
        for order in 1..=4u32 {
            let n = 1u64 << order;
            let mut seen = std::collections::HashSet::new();
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        let k = encode(x, y, z, order);
                        assert!(k < 1u64 << (3 * order));
                        assert!(seen.insert(k), "duplicate key at ({x},{y},{z})");
                        assert_eq!(decode(k, order), (x, y, z));
                    }
                }
            }
            assert_eq!(seen.len() as u64, n * n * n);
        }
    }

    #[test]
    fn curve_is_continuous() {
        // Successive keys differ by exactly one unit step in space.
        let order = 3;
        let n = 1u64 << (3 * order);
        let mut prev = decode(0, order);
        for k in 1..n {
            let cur = decode(k, order);
            let d = (cur.0 as i64 - prev.0 as i64).abs()
                + (cur.1 as i64 - prev.1 as i64).abs()
                + (cur.2 as i64 - prev.2 as i64).abs();
            assert_eq!(d, 1, "discontinuity between keys {} and {k}", k - 1);
            prev = cur;
        }
    }

    #[test]
    fn key_of_point_wraps_periodically() {
        let a = key_of_point([0.25, 0.5, 0.75], 5);
        let b = key_of_point([1.25, -0.5, 0.75], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn domain_cuts_balance() {
        // 1000 uniformly spread keys into 7 domains: each gets 1000/7 ± a few.
        let order = 7;
        let keys: Vec<u64> = (0..1000u64)
            .map(|i| i * ((1u64 << (3 * order)) / 1000))
            .collect();
        let cuts = domain_cuts(keys.clone(), 7, order);
        assert_eq!(cuts.len(), 7);
        let mut counts = vec![0usize; 7];
        for k in keys {
            counts[domain_of(k, &cuts)] += 1;
        }
        for c in counts {
            assert!((100..=200).contains(&c), "unbalanced domain: {c}");
        }
    }

    #[test]
    fn domain_of_respects_bounds() {
        let cuts = vec![10, 20, u64::MAX];
        assert_eq!(domain_of(0, &cuts), 0);
        assert_eq!(domain_of(10, &cuts), 1); // upper bound exclusive-ish
        assert_eq!(domain_of(15, &cuts), 1);
        assert_eq!(domain_of(25, &cuts), 2);
    }

    #[test]
    fn locality_beats_row_major() {
        // Mean spatial distance between key-neighbours must be far below the
        // row-major curve's (which jumps across the box every row).
        let order = 4;
        let n = 1u64 << order;
        let mut hilbert_dist = 0.0f64;
        let total = (n * n * n - 1) as f64;
        let mut prev = decode(0, order);
        for k in 1..n * n * n {
            let cur = decode(k, order);
            hilbert_dist += ((cur.0 as f64 - prev.0 as f64).powi(2)
                + (cur.1 as f64 - prev.1 as f64).powi(2)
                + (cur.2 as f64 - prev.2 as f64).powi(2))
            .sqrt();
            prev = cur;
        }
        assert!((hilbert_dist / total - 1.0).abs() < 1e-12); // unit steps
    }
}
