//! Particle-mesh gravity and the cosmological leapfrog integrator.
//!
//! The comoving equations of motion in code units (unit box, H0 = 1, total
//! mass normalised to 1) use the canonical momentum `p = a² ẋ` with cosmic
//! time `t` in 1/H0 units:
//!
//! ```text
//!   dx/dt = p / a²
//!   dp/dt = −∇φ,        ∇²φ = (3/2) (Ωm/a) (ρ − ⟨ρ⟩)
//! ```
//!
//! (One can check the linear growing mode directly: with `x = q + D(a)ψ`,
//! `dp/dt = a²(D̈ + 2HḊ)ψ = (3/2)Ωm D ψ / a = −∇φ`, using the growth ODE —
//! all expansion factors live in the Poisson source and the drift, none in
//! the kick.) We integrate with the standard kick–drift–kick leapfrog that
//! RAMSES uses, refreshing `a` at the half steps; time steps are limited by
//! a free-fall/velocity CFL-style criterion. The Zel'dovich-pancake
//! integration test pins this formulation against the exact solution.

use crate::cosmology::Cosmology;
use crate::particles::{cic_deposit, cic_interp_force, Mesh, Particles};
use crate::poisson::{gradient_force, solve, MgConfig};
use rayon::prelude::*;

/// Gravity solver over the periodic base mesh.
#[derive(Debug, Clone)]
pub struct PmGravity {
    /// Base mesh resolution.
    pub n: usize,
    pub mg: MgConfig,
}

/// Output of one force evaluation.
#[derive(Debug, Clone)]
pub struct ForceField {
    /// Acceleration meshes (−∇φ per axis).
    pub accel: [Mesh; 3],
    /// The potential, retained for diagnostics/energy checks.
    pub phi: Mesh,
    /// Density mesh that generated it.
    pub rho: Mesh,
}

impl PmGravity {
    pub fn new(n: usize) -> Self {
        PmGravity {
            n,
            mg: MgConfig::default(),
        }
    }

    /// Evaluate the comoving gravitational field for the particle set at
    /// expansion factor `a`.
    pub fn field(&self, parts: &Particles, cosmo: &Cosmology, a: f64) -> ForceField {
        let rho = cic_deposit(parts, self.n);
        // Poisson source: (3/2)Ωm/a · δ with δ = ρ/⟨ρ⟩ − 1. Total mass is 1
        // and the unit box has volume 1, so ⟨ρ⟩ = 1.
        let factor = cosmo.poisson_factor(a);
        let mut src = rho.clone();
        src.data
            .par_iter_mut()
            .for_each(|v| *v = factor * (*v - 1.0));
        let sol = solve(&src, &self.mg);
        let accel = gradient_force(&sol.phi);
        ForceField {
            accel,
            phi: sol.phi,
            rho,
        }
    }

    /// Interpolate accelerations to particles.
    pub fn accelerations(&self, parts: &Particles, field: &ForceField) -> Vec<[f64; 3]> {
        cic_interp_force(parts, &field.accel)
    }
}

/// Kick: p += g·dt (the canonical-momentum equation has no explicit `a`;
/// the argument is kept for interface symmetry and future drag terms).
pub fn kick(parts: &mut Particles, acc: &[[f64; 3]], _a: f64, dt: f64) {
    parts.vel.par_iter_mut().enumerate().for_each(|(i, v)| {
        for d in 0..3 {
            v[d] += acc[i][d] * dt;
        }
    });
}

/// Drift: x += v·dt/a² , then wrap into the box.
pub fn drift(parts: &mut Particles, a: f64, dt: f64) {
    let f = dt / (a * a);
    let (pos, vel) = (&mut parts.pos, &parts.vel);
    pos.par_iter_mut().enumerate().for_each(|(i, x)| {
        for d in 0..3 {
            x[d] += vel[i][d] * f;
        }
    });
    parts.wrap();
}

/// Timestep limiter: min over particles of
/// `C_v · Δx / (|v|/a²)` (don't cross more than C_v cells per step) and a
/// free-fall bound `C_ff / sqrt(ρ_max · (3/2)Ωm/a³)`, and an expansion bound
/// `Δa/a ≤ C_a`.
#[derive(Debug, Clone, Copy)]
pub struct StepControl {
    pub courant_cells: f64,
    pub freefall: f64,
    pub max_dln_a: f64,
}

impl Default for StepControl {
    fn default() -> Self {
        StepControl {
            courant_cells: 0.8,
            freefall: 0.5,
            max_dln_a: 0.1,
        }
    }
}

impl StepControl {
    pub fn dt(
        &self,
        parts: &Particles,
        rho_max: f64,
        cosmo: &Cosmology,
        a: f64,
        n_mesh: usize,
    ) -> f64 {
        let dx = 1.0 / n_mesh as f64;
        // Velocity bound.
        // Parallel max is exact (max is associative and commutative), so the
        // chunked reduction cannot perturb the result.
        let vmax = parts
            .vel
            .par_iter()
            .with_min_len(1024)
            .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
            .reduce(|| 0.0f64, f64::max);
        let dt_v = if vmax > 0.0 {
            self.courant_cells * dx * a * a / vmax
        } else {
            f64::INFINITY
        };
        // Free-fall bound from the densest cell.
        let g_eff = cosmo.poisson_factor(a) * rho_max.max(1.0) / (a * a);
        let dt_ff = self.freefall / g_eff.sqrt();
        // Expansion bound: da/dt = a²E(a) in conformal-ish units; use
        // dt ≤ C · 1/(a H(a)) scaled.
        let dt_a = self.max_dln_a / (a * cosmo.hubble(a)) * a * a;
        dt_v.min(dt_ff).min(dt_a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafic::CosmoParams;

    fn cosmo() -> Cosmology {
        Cosmology::new(CosmoParams::default())
    }

    /// Two equal point masses must attract each other along their axis.
    #[test]
    fn pm_force_attracts_pairs() {
        let mut parts = Particles::default();
        parts.push([0.4, 0.5, 0.5], [0.0; 3], 0.5, 0);
        parts.push([0.6, 0.5, 0.5], [0.0; 3], 0.5, 1);
        let g = PmGravity::new(16);
        let c = cosmo();
        let f = g.field(&parts, &c, 1.0);
        let acc = g.accelerations(&parts, &f);
        // Particle 0 is pulled +x, particle 1 pulled −x.
        assert!(acc[0][0] > 0.0, "acc0 = {:?}", acc[0]);
        assert!(acc[1][0] < 0.0, "acc1 = {:?}", acc[1]);
        // Transverse components ~ 0 by symmetry.
        assert!(acc[0][1].abs() < 1e-6 && acc[0][2].abs() < 1e-6);
        // Newton's third law (discretised): equal magnitude.
        assert!((acc[0][0] + acc[1][0]).abs() < 1e-6);
    }

    #[test]
    fn uniform_distribution_feels_no_force() {
        let n = 8usize;
        let mut parts = Particles::default();
        let m = 1.0 / (n * n * n) as f64;
        let mut id = 0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    parts.push(
                        [
                            (i as f64 + 0.5) / n as f64,
                            (j as f64 + 0.5) / n as f64,
                            (k as f64 + 0.5) / n as f64,
                        ],
                        [0.0; 3],
                        m,
                        id,
                    );
                    id += 1;
                }
            }
        }
        let g = PmGravity::new(8);
        let c = cosmo();
        let f = g.field(&parts, &c, 0.5);
        let acc = g.accelerations(&parts, &f);
        for a in acc {
            for d in 0..3 {
                assert!(a[d].abs() < 1e-8, "nonzero force on uniform lattice: {a:?}");
            }
        }
    }

    #[test]
    fn kick_and_drift_update_correctly() {
        let mut parts = Particles::default();
        parts.push([0.5, 0.5, 0.5], [0.1, 0.0, 0.0], 1.0, 0);
        kick(&mut parts, &[[1.0, 0.0, 0.0]], 0.5, 0.1);
        // dp = g dt = 0.1
        assert!((parts.vel[0][0] - 0.2).abs() < 1e-12);
        drift(&mut parts, 0.5, 0.1);
        // dx = v dt / a² = 0.2·0.1/0.25 = 0.08
        assert!((parts.pos[0][0] - 0.58).abs() < 1e-12);
    }

    #[test]
    fn drift_wraps_positions() {
        let mut parts = Particles::default();
        parts.push([0.95, 0.5, 0.5], [1.0, 0.0, 0.0], 1.0, 0);
        drift(&mut parts, 1.0, 0.1);
        assert!(parts.pos[0][0] < 1.0 && parts.pos[0][0] >= 0.0);
    }

    #[test]
    fn step_control_shrinks_with_velocity() {
        let c = cosmo();
        let mut slow = Particles::default();
        slow.push([0.5; 3], [0.01, 0.0, 0.0], 1.0, 0);
        let mut fast = Particles::default();
        fast.push([0.5; 3], [10.0, 0.0, 0.0], 1.0, 0);
        let sc = StepControl::default();
        let dt_slow = sc.dt(&slow, 1.0, &c, 0.5, 16);
        let dt_fast = sc.dt(&fast, 1.0, &c, 0.5, 16);
        assert!(dt_fast < dt_slow);
    }

    #[test]
    fn step_control_shrinks_with_density() {
        let c = cosmo();
        let mut p = Particles::default();
        p.push([0.5; 3], [0.0; 3], 1.0, 0);
        let sc = StepControl::default();
        let dt_lo = sc.dt(&p, 1.0, &c, 0.5, 16);
        let dt_hi = sc.dt(&p, 1e6, &c, 0.5, 16);
        assert!(dt_hi < dt_lo);
    }
}
