//! Adaptive mesh refinement octree.
//!
//! RAMSES is a "fully threaded tree" AMR code: space is covered by an octree
//! whose leaves are the active cells; refinement follows a quasi-Lagrangian
//! criterion (split a cell when it contains more than `m` particles) under a
//! 2:1 level-balance constraint so neighbouring leaves never differ by more
//! than one level. Leaves are enumerated in Peano–Hilbert order, which is the
//! ordering used to cut the domain among processes.
//!
//! The octree here is array-backed (node indices rather than `Box` pointers)
//! which keeps it compact and lets tests assert structural invariants
//! directly.

use crate::particles::Particles;
use crate::peano;

/// Index of a node inside the arena.
pub type NodeId = usize;

/// One octree node covering the cube `[origin, origin + size)³`.
#[derive(Debug, Clone)]
pub struct Node {
    /// Refinement level (root = 0, side = 2^-level).
    pub level: u32,
    /// Integer coordinates of the cell at its level (0 .. 2^level).
    pub coord: [u64; 3],
    /// Children ids, present iff the node is refined.
    pub children: Option<[NodeId; 8]>,
    /// Parent id (root has none).
    pub parent: Option<NodeId>,
    /// Particle indices contained in this cell (leaves only; interior nodes
    /// keep their lists empty).
    pub particles: Vec<u32>,
}

impl Node {
    /// Cell side length in box units.
    pub fn size(&self) -> f64 {
        1.0 / (1u64 << self.level) as f64
    }

    /// Lower corner of the cell in box units.
    pub fn origin(&self) -> [f64; 3] {
        let s = self.size();
        [
            self.coord[0] as f64 * s,
            self.coord[1] as f64 * s,
            self.coord[2] as f64 * s,
        ]
    }

    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }

    /// Geometric centre.
    pub fn center(&self) -> [f64; 3] {
        let o = self.origin();
        let h = self.size() / 2.0;
        [o[0] + h, o[1] + h, o[2] + h]
    }
}

/// Parameters governing refinement.
#[derive(Debug, Clone, Copy)]
pub struct AmrParams {
    /// Refine a leaf when it holds more than this many particles
    /// (the quasi-Lagrangian `m_refine` of RAMSES).
    pub max_particles_per_cell: usize,
    /// Hard cap on refinement depth.
    pub max_level: u32,
    /// Base level: the tree is pre-refined everywhere down to this level
    /// (RAMSES's `levelmin`, matching the base PM mesh).
    pub base_level: u32,
}

impl Default for AmrParams {
    fn default() -> Self {
        AmrParams {
            max_particles_per_cell: 8,
            max_level: 10,
            base_level: 2,
        }
    }
}

/// The octree itself.
#[derive(Debug, Clone)]
pub struct Octree {
    pub nodes: Vec<Node>,
    pub params: AmrParams,
}

impl Octree {
    /// Build the tree over a particle set: pre-refine to `base_level`, then
    /// refine any leaf over the particle threshold, then restore the 2:1
    /// level balance.
    pub fn build(parts: &Particles, params: AmrParams) -> Self {
        let mut tree = Octree {
            nodes: vec![Node {
                level: 0,
                coord: [0, 0, 0],
                children: None,
                parent: None,
                particles: (0..parts.len() as u32).collect(),
            }],
            params,
        };
        // Pre-refinement to base level.
        let mut frontier = vec![0usize];
        for _ in 0..params.base_level {
            let mut next = Vec::new();
            for id in frontier {
                tree.refine(id, parts);
                next.extend_from_slice(&tree.nodes[id].children.unwrap());
            }
            frontier = next;
        }
        // Quasi-Lagrangian refinement.
        let mut stack = frontier;
        while let Some(id) = stack.pop() {
            let node = &tree.nodes[id];
            if node.level < params.max_level && node.particles.len() > params.max_particles_per_cell
            {
                tree.refine(id, parts);
                stack.extend_from_slice(&tree.nodes[id].children.unwrap());
            }
        }
        tree.enforce_grading(parts);
        tree
    }

    /// Split a leaf into 8 children and distribute its particles.
    fn refine(&mut self, id: NodeId, parts: &Particles) {
        debug_assert!(self.nodes[id].is_leaf(), "refine of non-leaf");
        let level = self.nodes[id].level + 1;
        let base = [
            self.nodes[id].coord[0] * 2,
            self.nodes[id].coord[1] * 2,
            self.nodes[id].coord[2] * 2,
        ];
        let moved = std::mem::take(&mut self.nodes[id].particles);
        let mut kids = [0usize; 8];
        let scale = (1u64 << level) as f64;
        let mut kid_parts: [Vec<u32>; 8] = Default::default();
        for p in moved {
            let pos = parts.pos[p as usize];
            let mut oct = 0usize;
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                let c = (pos[d] * scale) as u64;
                if c & 1 == 1 {
                    oct |= 1 << d;
                }
            }
            kid_parts[oct].push(p);
        }
        for (oct, kp) in kid_parts.into_iter().enumerate() {
            let coord = [
                base[0] + (oct & 1) as u64,
                base[1] + ((oct >> 1) & 1) as u64,
                base[2] + ((oct >> 2) & 1) as u64,
            ];
            kids[oct] = self.nodes.len();
            self.nodes.push(Node {
                level,
                coord,
                children: None,
                parent: Some(id),
                particles: kp,
            });
        }
        self.nodes[id].children = Some(kids);
    }

    /// Enforce the 2:1 balance: a leaf may not touch a leaf more than one
    /// level finer. We iterate: find violating coarse leaves, refine them,
    /// repeat until stable.
    fn enforce_grading(&mut self, parts: &Particles) {
        loop {
            let leaf_levels = self.leaf_level_map();
            let mut to_refine = Vec::new();
            for (id, node) in self.nodes.iter().enumerate() {
                if !node.is_leaf() || node.level >= self.params.max_level {
                    continue;
                }
                // Check the 6 face-neighbours at level+2 granularity: if any
                // neighbouring region hosts a leaf ≥ level+2, this leaf
                // violates grading.
                if self.neighbour_exceeds(node, &leaf_levels) {
                    to_refine.push(id);
                }
            }
            if to_refine.is_empty() {
                break;
            }
            for id in to_refine {
                if self.nodes[id].is_leaf() {
                    self.refine(id, parts);
                }
            }
        }
    }

    /// Map from (level, coord) of every leaf for neighbour queries.
    fn leaf_level_map(&self) -> std::collections::HashMap<(u32, [u64; 3]), u32> {
        let mut m = std::collections::HashMap::new();
        for node in &self.nodes {
            if node.is_leaf() {
                m.insert((node.level, node.coord), node.level);
            }
        }
        m
    }

    fn neighbour_exceeds(
        &self,
        node: &Node,
        leaves: &std::collections::HashMap<(u32, [u64; 3]), u32>,
    ) -> bool {
        // A face neighbour hosting any leaf at level ≥ node.level + 2 means
        // the grading is violated. We probe the finer lattice: for each face,
        // check whether a descendant-of-neighbour leaf exists at level+2.
        let l2 = node.level + 2;
        if l2 > self.params.max_level {
            return false;
        }
        let n_at = |lvl: u32| 1u64 << lvl;
        for axis in 0..3 {
            for dir in [-1i64, 1i64] {
                let mut nb = [
                    node.coord[0] as i64,
                    node.coord[1] as i64,
                    node.coord[2] as i64,
                ];
                nb[axis] += dir;
                let n = n_at(node.level) as i64;
                let nbw = [
                    nb[0].rem_euclid(n) as u64,
                    nb[1].rem_euclid(n) as u64,
                    nb[2].rem_euclid(n) as u64,
                ];
                // Any leaf at level ≥ level+2 inside the neighbour cell?
                // Probe all level+2 sub-cells on the facing boundary layer.
                let f = 4u64; // 2^(2)
                for a in 0..f {
                    for b in 0..f {
                        let mut sub = [nbw[0] * f, nbw[1] * f, nbw[2] * f];
                        let (u, v) = ((axis + 1) % 3, (axis + 2) % 3);
                        sub[u] += a;
                        sub[v] += b;
                        // The face layer closest to `node`.
                        if dir == 1 {
                            // neighbour is on the + side: facing layer is sub[axis] + 0
                        } else {
                            sub[axis] += f - 1;
                        }
                        if leaves.contains_key(&(l2, sub)) {
                            return true;
                        }
                        // Deeper leaves also violate; approximate by checking
                        // one extra level down on the same footprint corner.
                        let deep = [sub[0] * 2, sub[1] * 2, sub[2] * 2];
                        if l2 < self.params.max_level && leaves.contains_key(&(l2 + 1, deep)) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// All leaf ids.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_leaf())
            .collect()
    }

    /// Leaves sorted by the Peano–Hilbert key of their centre at `max_level`
    /// resolution — the enumeration order used for domain decomposition.
    pub fn leaves_hilbert_order(&self) -> Vec<NodeId> {
        let order = self.params.max_level.min(peano::MAX_ORDER);
        let mut ids = self.leaves();
        ids.sort_by_key(|&i| peano::key_of_point(self.nodes[i].center(), order));
        ids
    }

    /// Partition leaves into `ndomain` contiguous Hilbert segments balanced
    /// by particle count. Returns, per domain, the list of leaf ids.
    pub fn decompose(&self, ndomain: usize) -> Vec<Vec<NodeId>> {
        let ordered = self.leaves_hilbert_order();
        let total: usize = ordered.iter().map(|&i| self.nodes[i].particles.len()).sum();
        let target = (total as f64 / ndomain as f64).max(1.0);
        let mut out = vec![Vec::new(); ndomain];
        let mut dom = 0usize;
        let mut acc = 0.0;
        for id in ordered {
            out[dom].push(id);
            acc += self.nodes[id].particles.len() as f64;
            if acc >= target * (dom + 1) as f64 && dom + 1 < ndomain {
                dom += 1;
            }
        }
        out
    }

    /// Maximum refinement level present.
    pub fn max_level_present(&self) -> u32 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Total particles across leaves (must equal the input count).
    pub fn total_leaf_particles(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.particles.len())
            .sum()
    }

    /// Structural invariant check, used by tests and debug assertions:
    /// parents correctly linked, particles only on leaves, particle containment.
    pub fn check_invariants(&self, parts: &Particles) -> Result<(), String> {
        for (id, node) in self.nodes.iter().enumerate() {
            if let Some(kids) = node.children {
                if !node.particles.is_empty() {
                    return Err(format!("interior node {id} holds particles"));
                }
                for k in kids {
                    let child = &self.nodes[k];
                    if child.parent != Some(id) {
                        return Err(format!("child {k} of {id} has wrong parent"));
                    }
                    if child.level != node.level + 1 {
                        return Err(format!("child {k} level mismatch"));
                    }
                    for d in 0..3 {
                        if child.coord[d] / 2 != node.coord[d] {
                            return Err(format!("child {k} outside parent {id}"));
                        }
                    }
                }
            } else {
                let o = node.origin();
                let s = node.size();
                for &p in &node.particles {
                    let pos = parts.pos[p as usize];
                    for d in 0..3 {
                        if pos[d] < o[d] - 1e-12 || pos[d] >= o[d] + s + 1e-12 {
                            return Err(format!(
                                "particle {p} at {pos:?} outside leaf {id} [{o:?} + {s}]"
                            ));
                        }
                    }
                }
            }
        }
        if self.total_leaf_particles() != parts.len() {
            return Err(format!(
                "particle count mismatch: {} vs {}",
                self.total_leaf_particles(),
                parts.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_parts(n: usize) -> Particles {
        let mut p = Particles::default();
        let mut id = 0u64;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    p.push(
                        [
                            (i as f64 + 0.5) / n as f64,
                            (j as f64 + 0.5) / n as f64,
                            (k as f64 + 0.5) / n as f64,
                        ],
                        [0.0; 3],
                        1.0 / (n * n * n) as f64,
                        id,
                    );
                    id += 1;
                }
            }
        }
        p
    }

    fn clustered_parts(n: usize) -> Particles {
        // Uniform background plus a tight clump near (0.3, 0.3, 0.3).
        let mut p = uniform_parts(n);
        let base = p.len() as u64;
        for i in 0..200u64 {
            let f = i as f64 / 200.0;
            p.push(
                [
                    0.3 + 0.01 * (f - 0.5),
                    0.3 + 0.01 * ((f * 3.0) % 1.0 - 0.5),
                    0.3 + 0.01 * ((f * 7.0) % 1.0 - 0.5),
                ],
                [0.0; 3],
                1e-6,
                base + i,
            );
        }
        p
    }

    #[test]
    fn uniform_load_stays_at_base_level() {
        let parts = uniform_parts(8); // 512 particles
        let params = AmrParams {
            max_particles_per_cell: 8,
            max_level: 8,
            base_level: 3, // 8³ cells → exactly 1 particle per cell
        };
        let tree = Octree::build(&parts, params);
        tree.check_invariants(&parts).unwrap();
        assert_eq!(tree.max_level_present(), 3);
    }

    #[test]
    fn clustered_load_refines_clump() {
        let parts = clustered_parts(4);
        let params = AmrParams {
            max_particles_per_cell: 8,
            max_level: 9,
            base_level: 2,
        };
        let tree = Octree::build(&parts, params);
        tree.check_invariants(&parts).unwrap();
        assert!(
            tree.max_level_present() >= 5,
            "clump not refined: max level {}",
            tree.max_level_present()
        );
        // The deepest leaves must be near the clump.
        let deepest = tree.max_level_present();
        for node in &tree.nodes {
            if node.is_leaf() && node.level == deepest {
                let c = node.center();
                let d = ((c[0] - 0.3).powi(2) + (c[1] - 0.3).powi(2) + (c[2] - 0.3).powi(2)).sqrt();
                assert!(d < 0.1, "deep leaf far from clump at {c:?}");
            }
        }
    }

    #[test]
    fn particle_conservation() {
        let parts = clustered_parts(4);
        let tree = Octree::build(&parts, AmrParams::default());
        assert_eq!(tree.total_leaf_particles(), parts.len());
    }

    #[test]
    fn hilbert_order_is_a_permutation_of_leaves() {
        let parts = clustered_parts(4);
        let tree = Octree::build(&parts, AmrParams::default());
        let mut a = tree.leaves();
        let mut b = tree.leaves_hilbert_order();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn decompose_assigns_every_leaf_once() {
        let parts = clustered_parts(4);
        let tree = Octree::build(&parts, AmrParams::default());
        let domains = tree.decompose(4);
        let mut all: Vec<_> = domains.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut leaves = tree.leaves();
        leaves.sort_unstable();
        assert_eq!(all, leaves);
    }

    #[test]
    fn decompose_balances_particles() {
        let parts = clustered_parts(6);
        let tree = Octree::build(&parts, AmrParams::default());
        let ndom = 4;
        let domains = tree.decompose(ndom);
        let counts: Vec<usize> = domains
            .iter()
            .map(|d| d.iter().map(|&i| tree.nodes[i].particles.len()).sum())
            .collect();
        let total: usize = counts.iter().sum();
        let ideal = total / ndom;
        for (d, &c) in counts.iter().enumerate() {
            assert!(
                c as f64 >= 0.3 * ideal as f64 && c as f64 <= 2.5 * ideal as f64,
                "domain {d} badly unbalanced: {c} of {total} (ideal {ideal})"
            );
        }
    }

    #[test]
    fn grading_no_leaf_pair_differs_by_two_levels_across_faces() {
        let parts = clustered_parts(4);
        let tree = Octree::build(&parts, AmrParams::default());
        // Reconstruct leaf set; for each fine leaf, its face-neighbour region
        // at (level-2) granularity must not be a leaf.
        let leaves: std::collections::HashSet<(u32, [u64; 3])> = tree
            .nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| (n.level, n.coord))
            .collect();
        for node in tree.nodes.iter().filter(|n| n.is_leaf()) {
            if node.level < 2 {
                continue;
            }
            let coarse_level = node.level - 2;
            let n_fine = 1i64 << node.level;
            for axis in 0..3 {
                for dir in [-1i64, 1] {
                    let mut nb = [
                        node.coord[0] as i64,
                        node.coord[1] as i64,
                        node.coord[2] as i64,
                    ];
                    nb[axis] += dir;
                    let nbw = [
                        nb[0].rem_euclid(n_fine) as u64 >> 2,
                        nb[1].rem_euclid(n_fine) as u64 >> 2,
                        nb[2].rem_euclid(n_fine) as u64 >> 2,
                    ];
                    assert!(
                        !leaves.contains(&(coarse_level, nbw)),
                        "grading violation: leaf L{} {:?} touches leaf L{} {:?}",
                        node.level,
                        node.coord,
                        coarse_level,
                        nbw
                    );
                }
            }
        }
    }
}
