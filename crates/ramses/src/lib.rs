//! # ramses — an AMR N-body + hydro cosmological simulation kernel
//!
//! A Rust re-implementation of the numerical core that the paper's grid
//! campaign executes on each cluster: RAMSES (Teyssier 2002), the adaptive
//! mesh refinement N-body and hydrodynamics code used to simulate the
//! formation of cosmic structure.
//!
//! The pieces, bottom-up:
//!
//! * [`cosmology`] — Friedmann integration, expansion factor ↔ time,
//!   supercomoving code units.
//! * [`peano`] — the 3-D Peano–Hilbert space-filling curve RAMSES uses to
//!   decompose the computational domain among processors.
//! * [`domains`] — the decomposition applied: per-rank cuts, load imbalance
//!   and exchange-volume diagnostics, and the rebalance trigger.
//! * [`particles`] — structure-of-arrays particle storage, cloud-in-cell
//!   (CIC) mass deposition and force interpolation.
//! * [`poisson`] — a geometric multigrid solver for the comoving Poisson
//!   equation on the periodic base mesh.
//! * [`refine`] — two-level gravity refinement: a 2× finer Dirichlet patch
//!   around dense regions, boundary-fed from the base solution (RAMSES's
//!   one-way interface, specialised to one patch).
//! * [`gravity`] — particle-mesh force evaluation and the kick-drift-kick
//!   leapfrog integrator with cosmological (comoving) factors.
//! * [`amr`] — the adaptive octree: quasi-Lagrangian refinement on particle
//!   count, 2:1 balance, Peano–Hilbert ordered leaf enumeration.
//! * [`hydro`] — a second-order (MUSCL–Hancock) finite-volume Euler solver
//!   with HLL/HLLC Riemann solvers, as the gas component.
//! * [`nbody`] — the top-level [`nbody::Simulation`] driver: takes GRAFIC
//!   initial conditions, advances them, writes snapshots.
//! * [`io`] — Fortran-record-style binary snapshot files, as produced by the
//!   original code and consumed by the GALICS post-processing chain.
//!
//! Shared-memory parallelism runs on the vendored `rayon` facade's thread
//! pool (see `vendor/rayon` and DESIGN.md §"Threading model"): the hot
//! kernels — red-black Gauss–Seidel smoothing, CIC deposit/interpolation,
//! the Godunov sweeps — execute on `RAYON_NUM_THREADS` threads with
//! bitwise-identical results at any thread count. In the original system MPI
//! ranks within one cluster played this role, while the *grid* level of
//! parallelism (one simulation per cluster) is the middleware's job and
//! lives in `diet-core`.

pub mod amr;
pub mod cosmology;
pub mod domains;
pub mod gravity;
pub mod hydro;
pub mod io;
pub mod nbody;
pub mod particles;
pub mod peano;
pub mod poisson;
pub mod refine;
pub mod units;

pub use cosmology::Cosmology;
pub use nbody::{RunParams, Simulation, Snapshot};
