//! Friedmann background cosmology: expansion history a(t), lookup tables for
//! time ↔ expansion factor, and the "supercomoving" variables RAMSES uses so
//! that the comoving equations of motion look like their non-cosmological
//! counterparts.
//!
//! Code units follow RAMSES conventions: lengths in units of the box size,
//! H0 = 1 time units (so "conformal" times are in 1/H0), total box mass = 1.

use grafic::CosmoParams;

/// Tabulated Friedmann solution for a ΛCDM background.
#[derive(Debug, Clone)]
pub struct Cosmology {
    pub params: CosmoParams,
    /// Expansion factor samples (geometric in a).
    a_tab: Vec<f64>,
    /// Cosmic time t(a) in 1/H0 units.
    t_tab: Vec<f64>,
    /// Conformal time τ(a) = ∫ dt/a², the "super-conformal" time RAMSES uses
    /// as its integration variable for collisionless dynamics.
    tau_tab: Vec<f64>,
}

impl Cosmology {
    /// Build the lookup tables from `a_min` to `a_max` with `n` samples by
    /// trapezoid integration of dt = da / (a E(a)).
    pub fn new(params: CosmoParams) -> Self {
        let a_min: f64 = 1e-4;
        let a_max: f64 = 1.0;
        let n = 4096usize;
        let ratio = (a_max / a_min).powf(1.0 / (n - 1) as f64);

        let mut a_tab = Vec::with_capacity(n);
        let mut a = a_min;
        for _ in 0..n {
            a_tab.push(a);
            a *= ratio;
        }
        // clamp the endpoint exactly
        a_tab[n - 1] = a_max;

        let mut t_tab = vec![0.0; n];
        let mut tau_tab = vec![0.0; n];
        for i in 1..n {
            let a0 = a_tab[i - 1];
            let a1 = a_tab[i];
            let da = a1 - a0;
            let f_t = |a: f64| 1.0 / (a * params.e_of_a(a));
            let f_tau = |a: f64| 1.0 / (a * a * a * params.e_of_a(a));
            t_tab[i] = t_tab[i - 1] + 0.5 * da * (f_t(a0) + f_t(a1));
            tau_tab[i] = tau_tab[i - 1] + 0.5 * da * (f_tau(a0) + f_tau(a1));
        }

        Cosmology {
            params,
            a_tab,
            t_tab,
            tau_tab,
        }
    }

    fn interp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
        let n = xs.len();
        if x <= xs[0] {
            return ys[0];
        }
        if x >= xs[n - 1] {
            return ys[n - 1];
        }
        // binary search for bracketing interval
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let w = (x - xs[lo]) / (xs[hi] - xs[lo]);
        ys[lo] * (1.0 - w) + ys[hi] * w
    }

    /// Cosmic time since a≈0 at expansion factor `a` (units 1/H0).
    pub fn t_of_a(&self, a: f64) -> f64 {
        Self::interp(&self.a_tab, &self.t_tab, a)
    }

    /// Expansion factor at cosmic time `t`.
    pub fn a_of_t(&self, t: f64) -> f64 {
        Self::interp(&self.t_tab, &self.a_tab, t)
    }

    /// Super-conformal time τ(a).
    pub fn tau_of_a(&self, a: f64) -> f64 {
        Self::interp(&self.a_tab, &self.tau_tab, a)
    }

    /// Expansion factor at super-conformal time τ.
    pub fn a_of_tau(&self, tau: f64) -> f64 {
        Self::interp(&self.tau_tab, &self.a_tab, tau)
    }

    /// Hubble rate in H0 units at `a`.
    pub fn hubble(&self, a: f64) -> f64 {
        self.params.e_of_a(a)
    }

    /// Source coefficient of the comoving Poisson equation,
    /// ∇²φ = (3/2) Ωm / a · δ  in supercomoving units.
    pub fn poisson_factor(&self, a: f64) -> f64 {
        1.5 * self.params.omega_m / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosmo() -> Cosmology {
        Cosmology::new(CosmoParams::default())
    }

    #[test]
    fn time_monotone_in_a() {
        let c = cosmo();
        let mut prev = -1.0;
        for i in 0..100 {
            let a = 1e-3 + i as f64 * 0.0099;
            let t = c.t_of_a(a);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn a_of_t_inverts_t_of_a() {
        let c = cosmo();
        for &a in &[0.02, 0.1, 0.33, 0.7, 0.99] {
            let t = c.t_of_a(a);
            let a2 = c.a_of_t(t);
            assert!((a - a2).abs() < 1e-3, "a={a} roundtrip={a2}");
        }
    }

    #[test]
    fn tau_inversion() {
        let c = cosmo();
        for &a in &[0.05, 0.2, 0.5, 0.9] {
            let tau = c.tau_of_a(a);
            let a2 = c.a_of_tau(tau);
            assert!((a - a2).abs() < 1e-3);
        }
    }

    #[test]
    fn age_of_universe_reasonable() {
        // t(a=1) ≈ 0.96/H0 for this ΛCDM — between 0.9 and 1.1.
        let c = cosmo();
        let t0 = c.t_of_a(1.0);
        assert!(t0 > 0.85 && t0 < 1.1, "t0 = {t0}");
    }

    #[test]
    fn eds_early_time_scaling() {
        // In matter domination t ∝ a^{3/2}.
        let c = cosmo();
        let r = c.t_of_a(0.02) / c.t_of_a(0.01);
        assert!((r - 2.0f64.powf(1.5)).abs() < 0.05, "ratio = {r}");
    }

    #[test]
    fn poisson_factor_scales_inverse_a() {
        let c = cosmo();
        let f1 = c.poisson_factor(0.5);
        let f2 = c.poisson_factor(1.0);
        assert!((f1 / f2 - 2.0).abs() < 1e-12);
    }
}
