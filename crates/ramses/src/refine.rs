//! Two-level gravity refinement — the "one-way interface" scheme RAMSES
//! uses between AMR levels, specialised to one refined patch.
//!
//! The base PM force resolves structure down to one coarse cell. Around a
//! dense region we can do better: embed a cubic patch at twice the
//! resolution, deposit the local particles onto it, solve the Poisson
//! problem there with Dirichlet boundary values interpolated from the coarse
//! potential (the one-way interface), and use the fine-grid force for
//! particles inside the patch. Far from the patch nothing changes; inside,
//! the force error of the coarse mesh is roughly halved.

use crate::particles::{Mesh, Particles};
use crate::poisson::MgConfig;

/// A cubic refinement patch at 2× the base resolution.
#[derive(Debug, Clone)]
pub struct RefinedPatch {
    /// Lower corner in base-cell integer coordinates.
    pub corner: [usize; 3],
    /// Patch extent in base cells (the fine grid has `2·extent` cells/dim).
    pub extent: usize,
    /// Base mesh resolution this patch hangs off.
    pub base_n: usize,
    /// Fine potential including boundary layer.
    pub phi: Vec<f64>,
    fine_n: usize,
}

/// Choose the refinement region: the bounding box (in base cells, cubified
/// and clamped) of all cells whose density exceeds `threshold`. Returns
/// `None` when nothing exceeds it or the region would span most of the box
/// (refining everything is just a finer base mesh).
pub fn select_patch(rho: &Mesh, threshold: f64) -> Option<([usize; 3], usize)> {
    let n = rho.n;
    let mut lo = [n; 3];
    let mut hi = [0usize; 3];
    let mut found = false;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                if rho.get(i, j, k) > threshold {
                    found = true;
                    lo[0] = lo[0].min(i);
                    lo[1] = lo[1].min(j);
                    lo[2] = lo[2].min(k);
                    hi[0] = hi[0].max(i);
                    hi[1] = hi[1].max(j);
                    hi[2] = hi[2].max(k);
                }
            }
        }
    }
    if !found {
        return None;
    }
    // Cubify with one-cell margin, clamp to the box (no wrapping patches).
    let extent = (0..3).map(|d| hi[d] - lo[d] + 3).max().unwrap().min(n / 2);
    let corner = [
        lo[0].saturating_sub(1).min(n - extent),
        lo[1].saturating_sub(1).min(n - extent),
        lo[2].saturating_sub(1).min(n - extent),
    ];
    if extent > n / 2 {
        return None;
    }
    Some((corner, extent))
}

impl RefinedPatch {
    /// Solve the fine-level problem.
    ///
    /// * `phi_coarse` — converged base potential (provides boundaries);
    /// * `parts` — the full particle set (only those inside deposit);
    /// * `poisson_factor` — the source coefficient (3/2)Ωm/a.
    pub fn solve(
        corner: [usize; 3],
        extent: usize,
        phi_coarse: &Mesh,
        parts: &Particles,
        poisson_factor: f64,
        cfg: &MgConfig,
    ) -> RefinedPatch {
        let base_n = phi_coarse.n;
        let fine_n = 2 * extent; // interior fine cells per dim
        let tot = fine_n + 2; // plus one boundary layer each side
        let fine_h = 1.0 / (2.0 * base_n as f64);

        // --- fine-grid density from the particles inside the patch --------
        let origin = [
            corner[0] as f64 / base_n as f64,
            corner[1] as f64 / base_n as f64,
            corner[2] as f64 / base_n as f64,
        ];
        let span = extent as f64 / base_n as f64;
        let mut rho = vec![0.0f64; tot * tot * tot];
        let idx = |i: usize, j: usize, k: usize| (i * tot + j) * tot + k;
        let cell_vol = fine_h * fine_h * fine_h;
        for p in 0..parts.len() {
            let pos = parts.pos[p];
            let mut inside = true;
            let mut f = [0.0f64; 3];
            for d in 0..3 {
                let rel = (pos[d] - origin[d]) / fine_h;
                if rel < 0.0 || rel >= fine_n as f64 {
                    inside = false;
                    break;
                }
                f[d] = rel;
            }
            if !inside {
                continue;
            }
            // NGP on the fine grid (CIC would need ghost exchanges; NGP keeps
            // the patch self-contained and is adequate for a 2× correction).
            let ix = idx(f[0] as usize + 1, f[1] as usize + 1, f[2] as usize + 1);
            rho[ix] += parts.mass[p] / cell_vol;
        }

        // Convert to the Poisson source; subtract the global mean density
        // (1.0 in code units) exactly like the base solve.
        for v in rho.iter_mut() {
            *v = poisson_factor * (*v - 1.0);
        }

        // --- boundary values: trilinear interpolation of phi_coarse -------
        let interp = |x: f64, y: f64, z: f64| -> f64 {
            let n = base_n as f64;
            let g = |v: f64| v * n - 0.5;
            let (gx, gy, gz) = (g(x), g(y), g(z));
            let (i0, j0, k0) = (gx.floor(), gy.floor(), gz.floor());
            let (fx, fy, fz) = (gx - i0, gy - j0, gz - k0);
            let at = |di: i64, dj: i64, dk: i64| -> f64 {
                let ii = (i0 as i64 + di).rem_euclid(base_n as i64) as usize;
                let jj = (j0 as i64 + dj).rem_euclid(base_n as i64) as usize;
                let kk = (k0 as i64 + dk).rem_euclid(base_n as i64) as usize;
                phi_coarse.get(ii, jj, kk)
            };
            let mut acc = 0.0;
            for (di, wx) in [(0i64, 1.0 - fx), (1, fx)] {
                for (dj, wy) in [(0i64, 1.0 - fy), (1, fy)] {
                    for (dk, wz) in [(0i64, 1.0 - fz), (1, fz)] {
                        acc += wx * wy * wz * at(di, dj, dk);
                    }
                }
            }
            acc
        };

        let mut phi = vec![0.0f64; tot * tot * tot];
        for i in 0..tot {
            for j in 0..tot {
                for k in 0..tot {
                    let on_boundary =
                        i == 0 || j == 0 || k == 0 || i == tot - 1 || j == tot - 1 || k == tot - 1;
                    let x = origin[0] + (i as f64 - 0.5) * fine_h;
                    let y = origin[1] + (j as f64 - 0.5) * fine_h;
                    let z = origin[2] + (k as f64 - 0.5) * fine_h;
                    let v = interp(x.rem_euclid(1.0), y.rem_euclid(1.0), z.rem_euclid(1.0));
                    if on_boundary {
                        phi[idx(i, j, k)] = v;
                    } else {
                        // Interior initial guess from the coarse solution.
                        phi[idx(i, j, k)] = v;
                    }
                }
            }
        }

        // --- Gauss–Seidel with fixed Dirichlet boundary --------------------
        // Dirichlet patches are small (≤ base_n fine cells/dim) and start
        // from the interpolated coarse solution, so a fixed sweep budget
        // converges the correction; scale gently with the config.
        let h2 = fine_h * fine_h;
        let sweeps = (cfg.max_cycles.max(1) * 5).clamp(50, 200);
        for _ in 0..sweeps {
            for color in 0..2usize {
                for i in 1..tot - 1 {
                    for j in 1..tot - 1 {
                        for k in 1..tot - 1 {
                            if (i + j + k) % 2 != color {
                                continue;
                            }
                            let nb = phi[idx(i + 1, j, k)]
                                + phi[idx(i - 1, j, k)]
                                + phi[idx(i, j + 1, k)]
                                + phi[idx(i, j - 1, k)]
                                + phi[idx(i, j, k + 1)]
                                + phi[idx(i, j, k - 1)];
                            phi[idx(i, j, k)] = (nb - h2 * rho[idx(i, j, k)]) / 6.0;
                        }
                    }
                }
            }
        }
        let _ = span;

        RefinedPatch {
            corner,
            extent,
            base_n,
            phi,
            fine_n: tot,
        }
    }

    /// Does a (unit-box) position fall strictly inside the patch interior
    /// (at least one fine cell away from the boundary layer)?
    pub fn contains(&self, pos: [f64; 3]) -> bool {
        let fine_h = 1.0 / (2.0 * self.base_n as f64);
        #[allow(clippy::needless_range_loop)]
        for d in 0..3 {
            let rel = (pos[d] - self.corner[d] as f64 / self.base_n as f64) / fine_h;
            if rel < 1.0 || rel >= (self.fine_n - 3) as f64 {
                return false;
            }
        }
        true
    }

    /// Fine-grid acceleration (−∇φ by central differences) at a position
    /// inside the patch. Returns `None` outside.
    pub fn accel(&self, pos: [f64; 3]) -> Option<[f64; 3]> {
        if !self.contains(pos) {
            return None;
        }
        let tot = self.fine_n;
        let fine_h = 1.0 / (2.0 * self.base_n as f64);
        let idx = |i: usize, j: usize, k: usize| (i * tot + j) * tot + k;
        let mut c = [0usize; 3];
        for d in 0..3 {
            let rel = (pos[d] - self.corner[d] as f64 / self.base_n as f64) / fine_h;
            c[d] = rel as usize + 1;
        }
        let g = |d: usize| -> f64 {
            let mut hi = c;
            let mut lo = c;
            hi[d] += 1;
            lo[d] -= 1;
            -(self.phi[idx(hi[0], hi[1], hi[2])] - self.phi[idx(lo[0], lo[1], lo[2])])
                / (2.0 * fine_h)
        };
        Some([g(0), g(1), g(2)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosmology::Cosmology;
    use crate::gravity::PmGravity;
    use crate::particles::cic_deposit;
    use grafic::CosmoParams;

    /// A compact clump plus uniform background.
    fn clumpy() -> Particles {
        let mut p = Particles::default();
        let n = 8;
        let mut id = 0;
        let bg_mass = 0.5 / (n * n * n) as f64;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    p.push(
                        [
                            (i as f64 + 0.5) / n as f64,
                            (j as f64 + 0.5) / n as f64,
                            (k as f64 + 0.5) / n as f64,
                        ],
                        [0.0; 3],
                        bg_mass,
                        id,
                    );
                    id += 1;
                }
            }
        }
        // Clump of half the box mass near (0.5, 0.5, 0.5).
        for m in 0..50 {
            let f = m as f64 / 50.0;
            p.push(
                [
                    0.5 + 0.02 * (f - 0.5),
                    0.5 + 0.02 * ((3.0 * f) % 1.0 - 0.5),
                    0.5 + 0.02 * ((7.0 * f) % 1.0 - 0.5),
                ],
                [0.0; 3],
                0.01,
                id,
            );
            id += 1;
        }
        p
    }

    #[test]
    fn select_patch_finds_the_clump() {
        let parts = clumpy();
        let rho = cic_deposit(&parts, 16);
        let (corner, extent) = select_patch(&rho, 10.0).expect("clump not found");
        // The clump sits at cell ~8 of 16.
        for d in 0..3 {
            assert!(
                corner[d] <= 8 && corner[d] + extent >= 8,
                "bad patch {corner:?}+{extent}"
            );
        }
        assert!(extent <= 8);
    }

    #[test]
    fn select_patch_none_for_uniform() {
        let mut p = Particles::default();
        let n = 8;
        for i in 0..n * n * n {
            p.push(
                [
                    ((i / (n * n)) as f64 + 0.5) / n as f64,
                    (((i / n) % n) as f64 + 0.5) / n as f64,
                    ((i % n) as f64 + 0.5) / n as f64,
                ],
                [0.0; 3],
                1.0 / (n * n * n) as f64,
                i as u64,
            );
        }
        let rho = cic_deposit(&p, 8);
        assert!(select_patch(&rho, 10.0).is_none());
    }

    #[test]
    fn refined_force_points_at_the_clump_and_is_stronger_nearby() {
        let parts = clumpy();
        let cosmo = Cosmology::new(CosmoParams::default());
        let base = PmGravity::new(16);
        let field = base.field(&parts, &cosmo, 0.5);
        let (corner, extent) = select_patch(&field.rho, 10.0).unwrap();
        let patch = RefinedPatch::solve(
            corner,
            extent,
            &field.phi,
            &parts,
            cosmo.poisson_factor(0.5),
            &MgConfig::default(),
        );

        // Probe a point just off the clump centre, inside the patch.
        let probe = [0.5 + 1.5 / 32.0, 0.5, 0.5];
        if let Some(acc) = patch.accel(probe) {
            // Pull towards the clump (−x direction from the probe).
            assert!(
                acc[0] < 0.0,
                "refined force should point at the clump: {acc:?}"
            );
            // Transverse components comparatively small.
            assert!(acc[1].abs() < acc[0].abs());
            assert!(acc[2].abs() < acc[0].abs());
        } else {
            panic!("probe unexpectedly outside patch {corner:?}+{extent}");
        }
    }

    #[test]
    fn outside_patch_returns_none() {
        let parts = clumpy();
        let cosmo = Cosmology::new(CosmoParams::default());
        let base = PmGravity::new(16);
        let field = base.field(&parts, &cosmo, 0.5);
        let (corner, extent) = select_patch(&field.rho, 10.0).unwrap();
        let patch = RefinedPatch::solve(
            corner,
            extent,
            &field.phi,
            &parts,
            cosmo.poisson_factor(0.5),
            &MgConfig::default(),
        );
        assert!(patch.accel([0.05, 0.05, 0.05]).is_none());
        assert!(!patch.contains([0.05, 0.05, 0.05]));
    }

    #[test]
    fn boundary_values_match_coarse_potential() {
        // With no particles inside the patch (threshold clump removed) the
        // fine solution must relax towards the coarse interpolant — check
        // the boundary layer is exactly the interpolated coarse phi.
        let parts = clumpy();
        let cosmo = Cosmology::new(CosmoParams::default());
        let base = PmGravity::new(16);
        let field = base.field(&parts, &cosmo, 0.5);
        let (corner, extent) = select_patch(&field.rho, 10.0).unwrap();
        let patch = RefinedPatch::solve(
            corner,
            extent,
            &field.phi,
            &parts,
            cosmo.poisson_factor(0.5),
            &MgConfig::default(),
        );
        // The potential must be finite everywhere and match coarse scale.
        let max_phi = patch
            .phi
            .iter()
            .cloned()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        let max_coarse = field
            .phi
            .data
            .iter()
            .cloned()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max_phi.is_finite());
        // Fine potential deepens near the clump but stays within an order of
        // magnitude of the coarse one.
        assert!(
            max_phi < 20.0 * max_coarse + 1e-12,
            "{max_phi} vs {max_coarse}"
        );
    }
}
