//! Snapshot I/O in Fortran-unformatted-record style.
//!
//! RAMSES reads its initial conditions from "Fortran binary files" and writes
//! snapshots the GALICS chain consumes. Fortran sequential unformatted files
//! wrap every record in a 4-byte little-endian length marker on both sides;
//! we reproduce that framing exactly so the format is recognisably the same
//! family, and add a small typed header.
//!
//! Layout of a snapshot file:
//!
//! ```text
//! record 0: magic "RAMSESRS", format version u32
//! record 1: header (npart u64, a f64, t f64, step u64,
//!           box_mpc_h f64, h f64, omega_m f64)
//! record 2: pos x  (npart f64)      record 5: vel x ...
//! record 3: pos y                   record 8: mass (npart f64)
//! record 4: pos z                   record 9: id   (npart u64)
//! ```

use crate::nbody::Snapshot;
use crate::particles::Particles;
use crate::units::Units;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"RAMSESRS";
const VERSION: u32 = 1;

/// Errors from snapshot serialisation.
#[derive(Debug)]
pub enum IoError {
    Io(io::Error),
    BadMagic,
    BadVersion(u32),
    Truncated,
    RecordMismatch { lead: u32, trail: u32 },
    Inconsistent(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::BadMagic => write!(f, "not a RAMSES-RS snapshot (bad magic)"),
            IoError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            IoError::Truncated => write!(f, "truncated snapshot"),
            IoError::RecordMismatch { lead, trail } => {
                write!(f, "fortran record markers disagree: {lead} vs {trail}")
            }
            IoError::Inconsistent(s) => write!(f, "inconsistent snapshot: {s}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Append one Fortran-style record (length-prefixed and suffixed).
fn put_record(out: &mut BytesMut, payload: &[u8]) {
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
    out.put_u32_le(payload.len() as u32);
}

/// Read one record, checking the framing.
fn get_record(buf: &mut Bytes) -> Result<Bytes, IoError> {
    if buf.remaining() < 4 {
        return Err(IoError::Truncated);
    }
    let lead = buf.get_u32_le();
    if buf.remaining() < lead as usize + 4 {
        return Err(IoError::Truncated);
    }
    let payload = buf.copy_to_bytes(lead as usize);
    let trail = buf.get_u32_le();
    if lead != trail {
        return Err(IoError::RecordMismatch { lead, trail });
    }
    Ok(payload)
}

fn f64s_record(vals: impl Iterator<Item = f64>, n: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n * 8);
    for x in vals {
        v.extend_from_slice(&x.to_le_bytes());
    }
    v
}

/// Serialise a snapshot to bytes.
pub fn encode_snapshot(snap: &Snapshot) -> Bytes {
    let n = snap.particles.len();
    let mut out = BytesMut::with_capacity(64 + n * 8 * 8);

    let mut rec0 = Vec::with_capacity(12);
    rec0.extend_from_slice(MAGIC);
    rec0.extend_from_slice(&VERSION.to_le_bytes());
    put_record(&mut out, &rec0);

    let mut hdr = Vec::with_capacity(7 * 8);
    hdr.extend_from_slice(&(n as u64).to_le_bytes());
    hdr.extend_from_slice(&snap.a.to_le_bytes());
    hdr.extend_from_slice(&snap.t.to_le_bytes());
    hdr.extend_from_slice(&(snap.step as u64).to_le_bytes());
    hdr.extend_from_slice(&snap.units.box_mpc_h.to_le_bytes());
    hdr.extend_from_slice(&snap.units.h.to_le_bytes());
    hdr.extend_from_slice(&snap.units.omega_m.to_le_bytes());
    put_record(&mut out, &hdr);

    for axis in 0..3 {
        put_record(
            &mut out,
            &f64s_record(snap.particles.pos.iter().map(|p| p[axis]), n),
        );
    }
    for axis in 0..3 {
        put_record(
            &mut out,
            &f64s_record(snap.particles.vel.iter().map(|p| p[axis]), n),
        );
    }
    put_record(
        &mut out,
        &f64s_record(snap.particles.mass.iter().copied(), n),
    );
    let mut ids = Vec::with_capacity(n * 8);
    for id in &snap.particles.id {
        ids.extend_from_slice(&id.to_le_bytes());
    }
    put_record(&mut out, &ids);

    out.freeze()
}

/// Deserialise a snapshot.
pub fn decode_snapshot(mut buf: Bytes) -> Result<Snapshot, IoError> {
    let rec0 = get_record(&mut buf)?;
    if rec0.len() < 12 || &rec0[..8] != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = u32::from_le_bytes(rec0[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(IoError::BadVersion(version));
    }

    let hdr = get_record(&mut buf)?;
    if hdr.len() != 7 * 8 {
        return Err(IoError::Inconsistent(format!("header size {}", hdr.len())));
    }
    let f = |i: usize| f64::from_le_bytes(hdr[i * 8..(i + 1) * 8].try_into().unwrap());
    let u = |i: usize| u64::from_le_bytes(hdr[i * 8..(i + 1) * 8].try_into().unwrap());
    let n = u(0) as usize;
    let a = f(1);
    let t = f(2);
    let step = u(3) as usize;
    let units = Units::new(f(4), f(5), f(6));

    let read_f64s = |buf: &mut Bytes| -> Result<Vec<f64>, IoError> {
        let r = get_record(buf)?;
        if r.len() != n * 8 {
            return Err(IoError::Inconsistent(format!(
                "array record size {} expected {}",
                r.len(),
                n * 8
            )));
        }
        Ok(r.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    };

    let px = read_f64s(&mut buf)?;
    let py = read_f64s(&mut buf)?;
    let pz = read_f64s(&mut buf)?;
    let vx = read_f64s(&mut buf)?;
    let vy = read_f64s(&mut buf)?;
    let vz = read_f64s(&mut buf)?;
    let mass = read_f64s(&mut buf)?;
    let idr = get_record(&mut buf)?;
    if idr.len() != n * 8 {
        return Err(IoError::Inconsistent("id record size".into()));
    }
    let id: Vec<u64> = idr
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();

    let mut particles = Particles::with_capacity(n);
    for i in 0..n {
        particles.push([px[i], py[i], pz[i]], [vx[i], vy[i], vz[i]], mass[i], id[i]);
    }

    Ok(Snapshot {
        a,
        t,
        step,
        particles,
        units,
    })
}

/// Write a snapshot file.
pub fn write_snapshot(path: &Path, snap: &Snapshot) -> Result<(), IoError> {
    let bytes = encode_snapshot(snap);
    let mut f = File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Read a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, IoError> {
    let mut f = File::open(path)?;
    let mut v = Vec::new();
    f.read_to_end(&mut v)?;
    decode_snapshot(Bytes::from(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(n: usize) -> Snapshot {
        let mut particles = Particles::with_capacity(n);
        for i in 0..n {
            let f = i as f64 / n as f64;
            particles.push(
                [f, (f * 2.0) % 1.0, (f * 3.0) % 1.0],
                [f - 0.5, 0.1, -f],
                1.0 / n as f64,
                i as u64 * 7,
            );
        }
        Snapshot {
            a: 0.42,
            t: 0.33,
            step: 17,
            particles,
            units: Units::new(100.0, 0.71, 0.27),
        }
    }

    #[test]
    fn roundtrip_in_memory() {
        let snap = sample_snapshot(100);
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(bytes).unwrap();
        assert_eq!(back.particles, snap.particles);
        assert_eq!(back.step, 17);
        assert!((back.a - 0.42).abs() < 1e-15);
        assert_eq!(back.units, snap.units);
    }

    #[test]
    fn roundtrip_on_disk() {
        let snap = sample_snapshot(10);
        let dir = std::env::temp_dir().join("ramses_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap_0001.bin");
        write_snapshot(&path, &snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.particles, snap.particles);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let snap = sample_snapshot(3);
        let bytes = encode_snapshot(&snap);
        let mut v = bytes.to_vec();
        v[4] = b'X'; // corrupt magic inside record 0
        match decode_snapshot(Bytes::from(v)) {
            Err(IoError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncation() {
        let snap = sample_snapshot(5);
        let bytes = encode_snapshot(&snap);
        let v = bytes[..bytes.len() / 2].to_vec();
        assert!(decode_snapshot(Bytes::from(v)).is_err());
    }

    #[test]
    fn rejects_marker_mismatch() {
        let snap = sample_snapshot(2);
        let bytes = encode_snapshot(&snap);
        let mut v = bytes.to_vec();
        // Corrupt the trailing marker of record 0 (offset 4 + 12 = 16..20).
        v[16] ^= 0xff;
        match decode_snapshot(Bytes::from(v)) {
            Err(IoError::RecordMismatch { .. }) => {}
            other => panic!("expected RecordMismatch, got {other:?}"),
        }
    }

    #[test]
    fn fortran_framing_present() {
        // Record 0 payload is 12 bytes: the file must start with 0x0C000000.
        let snap = sample_snapshot(1);
        let bytes = encode_snapshot(&snap);
        assert_eq!(&bytes[..4], &12u32.to_le_bytes());
        assert_eq!(&bytes[16..20], &12u32.to_le_bytes());
    }
}
