//! RAMSES-style code units.
//!
//! Internally everything is dimensionless: the box has unit length, unit
//! total (matter) mass, and H0 = 1. This module converts between those code
//! units and physical units for I/O and post-processing.

/// Unit system attached to a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Units {
    /// Comoving box size in Mpc/h.
    pub box_mpc_h: f64,
    /// Hubble parameter h.
    pub h: f64,
    /// Matter density parameter (sets the box mass).
    pub omega_m: f64,
}

/// Critical density today in M☉ h² / Mpc³ (2.775e11).
pub const RHO_CRIT_MSUN_H2_MPC3: f64 = 2.775e11;

/// km/s per (Mpc/h · H0) — velocity unit conversion: H0 = 100 h km/s/Mpc, so
/// one code velocity (box·H0) in km/s is 100 · box_mpc_h.
pub const H0_KM_S_MPC_H: f64 = 100.0;

impl Units {
    pub fn new(box_mpc_h: f64, h: f64, omega_m: f64) -> Self {
        Units {
            box_mpc_h,
            h,
            omega_m,
        }
    }

    /// Length: code (fraction of box) → comoving Mpc/h.
    pub fn length_mpc_h(&self, x_code: f64) -> f64 {
        x_code * self.box_mpc_h
    }

    /// Mass: code (fraction of box matter mass) → M☉/h.
    pub fn mass_msun_h(&self, m_code: f64) -> f64 {
        let box_mass = self.omega_m * RHO_CRIT_MSUN_H2_MPC3 * self.box_mpc_h.powi(3);
        m_code * box_mass
    }

    /// Velocity: code (box · H0) → km/s.
    pub fn velocity_km_s(&self, v_code: f64) -> f64 {
        v_code * H0_KM_S_MPC_H * self.box_mpc_h
    }

    /// Time: code (1/H0) → Gyr/h (1/H0 = 9.78 Gyr/h).
    pub fn time_gyr_h(&self, t_code: f64) -> f64 {
        t_code * 9.78
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_mpc_box_mass() {
        let u = Units::new(100.0, 0.71, 0.27);
        // Ωm ρ_crit V = 0.27 · 2.775e11 · 1e6 ≈ 7.5e16 M☉/h.
        let m = u.mass_msun_h(1.0);
        assert!(m > 7.0e16 && m < 8.0e16, "box mass = {m:e}");
    }

    #[test]
    fn particle_mass_at_128_cubed() {
        // The paper's 128³/100 Mpc·h⁻¹ run: particle mass ≈ 3.6e10 M☉/h.
        let u = Units::new(100.0, 0.71, 0.27);
        let m = u.mass_msun_h(1.0 / (128.0f64).powi(3));
        assert!(m > 2.0e10 && m < 5.0e10, "particle mass = {m:e}");
    }

    #[test]
    fn length_and_velocity_scale_linearly() {
        let u = Units::new(50.0, 0.7, 0.3);
        assert_eq!(u.length_mpc_h(0.5), 25.0);
        assert!((u.velocity_km_s(0.01) - 50.0).abs() < 1e-9);
    }
}
