//! Geometric multigrid Poisson solver on the periodic base mesh.
//!
//! Solves `∇²φ = S` with periodic boundaries using V-cycles: red–black
//! Gauss–Seidel smoothing, full-weighting restriction, trilinear
//! prolongation. The periodic problem is only solvable when `⟨S⟩ = 0`, so the
//! source is de-meaned on entry (physically: the Poisson source is the
//! *over*density). RAMSES itself uses the same one-way interface multigrid
//! ingredients on each AMR level.

use crate::particles::Mesh;

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct MgConfig {
    /// Pre-smoothing sweeps per level.
    pub nu_pre: usize,
    /// Post-smoothing sweeps per level.
    pub nu_post: usize,
    /// Maximum V-cycles.
    pub max_cycles: usize,
    /// Convergence threshold on ‖residual‖₂/‖S‖₂.
    pub tol: f64,
}

impl Default for MgConfig {
    fn default() -> Self {
        MgConfig {
            nu_pre: 3,
            nu_post: 3,
            max_cycles: 30,
            tol: 1e-8,
        }
    }
}

/// Result of a solve: the potential and the achieved relative residual.
#[derive(Debug, Clone)]
pub struct MgSolution {
    pub phi: Mesh,
    pub rel_residual: f64,
    pub cycles: usize,
}

/// Solve ∇²φ = S on an `n³` periodic mesh with spacing `h = 1/n`.
pub fn solve(source: &Mesh, cfg: &MgConfig) -> MgSolution {
    let n = source.n;
    assert!(n.is_power_of_two() && n >= 4, "mesh side must be a power of two >= 4");

    // De-mean the source: periodic Poisson needs a zero-mean RHS.
    let mean = source.mean();
    let mut s = source.clone();
    for v in s.data.iter_mut() {
        *v -= mean;
    }

    let s_norm = norm2(&s.data).max(1e-300);
    let mut phi = Mesh::zeros(n);
    let mut rel = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..cfg.max_cycles {
        v_cycle(&mut phi, &s, cfg);
        cycles += 1;
        let r = residual(&phi, &s);
        rel = norm2(&r.data) / s_norm;
        if rel < cfg.tol {
            break;
        }
    }
    // Pin the mean of φ to zero (gauge freedom of the periodic problem).
    let pm = phi.mean();
    for v in phi.data.iter_mut() {
        *v -= pm;
    }
    MgSolution {
        phi,
        rel_residual: rel,
        cycles,
    }
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// One multigrid V-cycle.
fn v_cycle(phi: &mut Mesh, s: &Mesh, cfg: &MgConfig) {
    let n = phi.n;
    if n <= 4 {
        // Coarsest level: many smoothing sweeps stand in for a direct solve.
        for _ in 0..50 {
            smooth(phi, s);
        }
        return;
    }
    for _ in 0..cfg.nu_pre {
        smooth(phi, s);
    }
    let r = residual(phi, s);
    let r_coarse = restrict(&r);
    let mut e_coarse = Mesh::zeros(n / 2);
    v_cycle(&mut e_coarse, &r_coarse, cfg);
    prolong_add(phi, &e_coarse);
    for _ in 0..cfg.nu_post {
        smooth(phi, s);
    }
}

/// Red–black Gauss–Seidel sweep for the 7-point periodic Laplacian,
/// h = 1/n: φᵢ = (Σ neighbours − h²·Sᵢ) / 6.
fn smooth(phi: &mut Mesh, s: &Mesh) {
    let n = phi.n;
    let h2 = 1.0 / (n as f64 * n as f64);
    for color in 0..2usize {
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if (i + j + k) % 2 != color {
                        continue;
                    }
                    let ip = (i + 1) % n;
                    let im = (i + n - 1) % n;
                    let jp = (j + 1) % n;
                    let jm = (j + n - 1) % n;
                    let kp = (k + 1) % n;
                    let km = (k + n - 1) % n;
                    let nb = phi.get(ip, j, k)
                        + phi.get(im, j, k)
                        + phi.get(i, jp, k)
                        + phi.get(i, jm, k)
                        + phi.get(i, j, kp)
                        + phi.get(i, j, km);
                    let ix = phi.idx(i, j, k);
                    phi.data[ix] = (nb - h2 * s.get(i, j, k)) / 6.0;
                }
            }
        }
    }
}

/// Residual r = S − ∇²φ.
fn residual(phi: &Mesh, s: &Mesh) -> Mesh {
    let n = phi.n;
    let inv_h2 = (n as f64) * (n as f64);
    let mut r = Mesh::zeros(n);
    for i in 0..n {
        let ip = (i + 1) % n;
        let im = (i + n - 1) % n;
        for j in 0..n {
            let jp = (j + 1) % n;
            let jm = (j + n - 1) % n;
            for k in 0..n {
                let kp = (k + 1) % n;
                let km = (k + n - 1) % n;
                let lap = (phi.get(ip, j, k)
                    + phi.get(im, j, k)
                    + phi.get(i, jp, k)
                    + phi.get(i, jm, k)
                    + phi.get(i, j, kp)
                    + phi.get(i, j, km)
                    - 6.0 * phi.get(i, j, k))
                    * inv_h2;
                let ix = r.idx(i, j, k);
                r.data[ix] = s.get(i, j, k) - lap;
            }
        }
    }
    r
}

/// Full-weighting restriction to the half-resolution mesh (8-cell average —
/// cell-centred grids make this the natural choice).
fn restrict(fine: &Mesh) -> Mesh {
    let nc = fine.n / 2;
    let mut coarse = Mesh::zeros(nc);
    for i in 0..nc {
        for j in 0..nc {
            for k in 0..nc {
                let mut acc = 0.0;
                for di in 0..2 {
                    for dj in 0..2 {
                        for dk in 0..2 {
                            acc += fine.get(2 * i + di, 2 * j + dj, 2 * k + dk);
                        }
                    }
                }
                let ix = coarse.idx(i, j, k);
                coarse.data[ix] = acc / 8.0;
            }
        }
    }
    coarse
}

/// Piecewise-constant prolongation of the coarse correction, added to φ.
/// (Constant injection pairs with 8-cell averaging as an exact transpose,
/// keeping the two-grid operator symmetric.)
fn prolong_add(phi: &mut Mesh, coarse: &Mesh) {
    let nc = coarse.n;
    for i in 0..nc {
        for j in 0..nc {
            for k in 0..nc {
                let e = coarse.get(i, j, k);
                for di in 0..2 {
                    for dj in 0..2 {
                        for dk in 0..2 {
                            let ix = phi.idx(2 * i + di, 2 * j + dj, 2 * k + dk);
                            phi.data[ix] += e;
                        }
                    }
                }
            }
        }
    }
}

/// Central-difference gradient of φ: returns `[−∂φ/∂x, −∂φ/∂y, −∂φ/∂z]`
/// meshes, i.e. the acceleration field `g = −∇φ`.
pub fn gradient_force(phi: &Mesh) -> [Mesh; 3] {
    let n = phi.n;
    let inv_2h = n as f64 / 2.0;
    let mut out = [Mesh::zeros(n), Mesh::zeros(n), Mesh::zeros(n)];
    for i in 0..n {
        let ip = (i + 1) % n;
        let im = (i + n - 1) % n;
        for j in 0..n {
            let jp = (j + 1) % n;
            let jm = (j + n - 1) % n;
            for k in 0..n {
                let kp = (k + 1) % n;
                let km = (k + n - 1) % n;
                let ix = phi.idx(i, j, k);
                out[0].data[ix] = -(phi.get(ip, j, k) - phi.get(im, j, k)) * inv_2h;
                out[1].data[ix] = -(phi.get(i, jp, k) - phi.get(i, jm, k)) * inv_2h;
                out[2].data[ix] = -(phi.get(i, j, kp) - phi.get(i, j, km)) * inv_2h;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Analytic test: S = sin(2πx) has φ = −sin(2πx)/(2π)² (per the discrete
    /// operator, the eigenvalue differs slightly; compare against the
    /// discrete eigenvalue for exactness).
    #[test]
    fn solves_single_mode_exactly() {
        let n = 16;
        let mut s = Mesh::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    let ix = s.idx(i, j, k);
                    s.data[ix] = (2.0 * std::f64::consts::PI * x).sin();
                }
            }
        }
        let sol = solve(&s, &MgConfig::default());
        assert!(sol.rel_residual < 1e-8, "residual {}", sol.rel_residual);
        // The discrete eigenvalue of the 7-pt Laplacian for mode m=1:
        // λ = −(2 sin(π/n) n)² → φ = S/λ.
        let lam = -(2.0 * (std::f64::consts::PI / n as f64).sin() * n as f64).powi(2);
        for ix in 0..s.data.len() {
            let expect = s.data[ix] / lam;
            assert!(
                (sol.phi.data[ix] - expect).abs() < 1e-6,
                "phi mismatch at {ix}: {} vs {expect}",
                sol.phi.data[ix]
            );
        }
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let n = 8;
        let mut phi = Mesh::zeros(n);
        let mut s = Mesh::zeros(n);
        // Build S from a random φ by applying the discrete Laplacian, then
        // check residual(φ, S) == 0.
        for (ix, v) in phi.data.iter_mut().enumerate() {
            *v = ((ix * 2654435761) % 1000) as f64 / 1000.0;
        }
        let inv_h2 = (n * n) as f64;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let ip = (i + 1) % n;
                    let im = (i + n - 1) % n;
                    let jp = (j + 1) % n;
                    let jm = (j + n - 1) % n;
                    let kp = (k + 1) % n;
                    let km = (k + n - 1) % n;
                    let lap = (phi.get(ip, j, k)
                        + phi.get(im, j, k)
                        + phi.get(i, jp, k)
                        + phi.get(i, jm, k)
                        + phi.get(i, j, kp)
                        + phi.get(i, j, km)
                        - 6.0 * phi.get(i, j, k))
                        * inv_h2;
                    let ix = s.idx(i, j, k);
                    s.data[ix] = lap;
                }
            }
        }
        let r = residual(&phi, &s);
        assert!(norm2(&r.data) < 1e-9);
    }

    #[test]
    fn solver_handles_nonzero_mean_source() {
        let n = 8;
        let mut s = Mesh::zeros(n);
        for (ix, v) in s.data.iter_mut().enumerate() {
            *v = 1.0 + ((ix % 5) as f64 - 2.0) * 0.1;
        }
        let sol = solve(&s, &MgConfig::default());
        assert!(sol.rel_residual < 1e-6);
        assert!(sol.phi.mean().abs() < 1e-10);
    }

    #[test]
    fn gradient_of_linear_mode_is_cosine() {
        let n = 32;
        let mut phi = Mesh::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    let ix = phi.idx(i, j, k);
                    phi.data[ix] = (2.0 * std::f64::consts::PI * x).sin();
                }
            }
        }
        let g = gradient_force(&phi);
        // g_x = −2π cos(2πx) (up to the discrete sinc factor), g_y = g_z = 0.
        for i in 0..n {
            let x = (i as f64 + 0.5) / n as f64;
            let expect = -2.0 * std::f64::consts::PI * (2.0 * std::f64::consts::PI * x).cos();
            let got = g[0].get(i, 3, 5);
            assert!(
                (got - expect).abs() < 0.1 * expect.abs().max(1.0),
                "gx at {x}: {got} vs {expect}"
            );
            assert!(g[1].get(i, 3, 5).abs() < 1e-10);
            assert!(g[2].get(i, 3, 5).abs() < 1e-10);
        }
    }

    #[test]
    fn multigrid_converges_fast() {
        // V-cycle convergence should need far fewer than max cycles.
        let n = 32;
        let mut s = Mesh::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    let y = (j as f64 + 0.5) / n as f64;
                    let z = (k as f64 + 0.5) / n as f64;
                    let ix = s.idx(i, j, k);
                    s.data[ix] = (2.0 * std::f64::consts::PI * x).sin()
                        * (4.0 * std::f64::consts::PI * y).cos()
                        + (6.0 * std::f64::consts::PI * z).sin();
                }
            }
        }
        let sol = solve(&s, &MgConfig::default());
        assert!(sol.rel_residual < 1e-8);
        assert!(sol.cycles <= 15, "took {} cycles", sol.cycles);
    }
}
