//! Geometric multigrid Poisson solver on the periodic base mesh.
//!
//! Solves `∇²φ = S` with periodic boundaries using V-cycles: red–black
//! Gauss–Seidel smoothing, full-weighting restriction, trilinear
//! prolongation. The periodic problem is only solvable when `⟨S⟩ = 0`, so the
//! source is de-meaned on entry (physically: the Poisson source is the
//! *over*density). RAMSES itself uses the same one-way interface multigrid
//! ingredients on each AMR level.

use crate::particles::Mesh;
use rayon::prelude::*;

/// Shared mutable base pointer for the plane-parallel kernels below: every
/// worker writes a disjoint set of cells (whole i-planes, or one red-black
/// colour within them), so concurrent access never overlaps.
#[derive(Clone, Copy)]
struct RawMut(*mut f64);
unsafe impl Send for RawMut {}
unsafe impl Sync for RawMut {}

impl RawMut {
    /// Accessor (rather than direct field access) so closures capture the
    /// whole `Sync` wrapper — Rust 2021's disjoint capture would otherwise
    /// capture the bare `*mut f64` field, which is not `Sync`.
    #[inline]
    fn ptr(self) -> *mut f64 {
        self.0
    }
}

/// Chunk-size hint for kernels parallelised over the `n` i-planes: keeps
/// small meshes (coarse multigrid levels) on a single inline chunk. A
/// function of `n` only — never the thread count — so the partition, and
/// with it every reduction order, is identical at any parallelism level.
#[inline]
fn plane_min_len(n: usize) -> usize {
    (4096 / (n * n)).max(1)
}

/// Tile edge for the cache-blocked j/k sweeps in [`smooth`] and
/// [`residual`]. A (TILE × TILE) tile of one i-plane plus its stencil halo
/// (five rows of `TILE` doubles per j line) stays resident in L1/L2 while
/// the neighbouring-plane rows for the same j/k window are streamed once,
/// instead of being evicted between full-length j passes on large meshes.
/// The tiled kernels also drop the per-cell `% n` periodic-wrap arithmetic
/// of the reference sweep (a hardware divide per neighbour index, the
/// dominant per-cell cost) in favour of boundary conditionals that the
/// branch predictor eats for free. Neither change touches the arithmetic
/// per cell — tiling only reorders *which* cells are visited, and the wrap
/// conditionals produce the very same neighbour indices — and both kernels
/// are order-independent across cells of one pass (red-black reads only
/// the opposite colour; the residual only reads), so the result is
/// bitwise-identical to the unblocked sweep — a constant, like
/// `plane_min_len`, that tunes locality without entering the determinism
/// contract.
const TILE: usize = 32;

/// Periodic neighbour pair `(idx+1 mod n, idx-1 mod n)` via predictable
/// comparisons instead of two hardware divides; `idx < n` required.
#[inline(always)]
fn wrap_pm(idx: usize, n: usize) -> (usize, usize) {
    let up = if idx + 1 == n { 0 } else { idx + 1 };
    let dn = if idx == 0 { n - 1 } else { idx - 1 };
    (up, dn)
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct MgConfig {
    /// Pre-smoothing sweeps per level.
    pub nu_pre: usize,
    /// Post-smoothing sweeps per level.
    pub nu_post: usize,
    /// Maximum V-cycles.
    pub max_cycles: usize,
    /// Convergence threshold on ‖residual‖₂/‖S‖₂.
    pub tol: f64,
}

impl Default for MgConfig {
    fn default() -> Self {
        MgConfig {
            nu_pre: 3,
            nu_post: 3,
            max_cycles: 30,
            tol: 1e-8,
        }
    }
}

/// Result of a solve: the potential and the achieved relative residual.
#[derive(Debug, Clone)]
pub struct MgSolution {
    pub phi: Mesh,
    pub rel_residual: f64,
    pub cycles: usize,
}

/// Solve ∇²φ = S on an `n³` periodic mesh with spacing `h = 1/n`.
pub fn solve(source: &Mesh, cfg: &MgConfig) -> MgSolution {
    let n = source.n;
    assert!(
        n.is_power_of_two() && n >= 4,
        "mesh side must be a power of two >= 4"
    );

    // De-mean the source: periodic Poisson needs a zero-mean RHS.
    let mean = source.mean();
    let mut s = source.clone();
    s.data.par_iter_mut().for_each(|v| *v -= mean);

    let s_norm = norm2(&s.data).max(1e-300);
    let mut phi = Mesh::zeros(n);
    let mut rel = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..cfg.max_cycles {
        v_cycle(&mut phi, &s, cfg);
        cycles += 1;
        let r = residual(&phi, &s);
        rel = norm2(&r.data) / s_norm;
        if rel < cfg.tol {
            break;
        }
    }
    // Pin the mean of φ to zero (gauge freedom of the periodic problem).
    let pm = phi.mean();
    phi.data.par_iter_mut().for_each(|v| *v -= pm);
    MgSolution {
        phi,
        rel_residual: rel,
        cycles,
    }
}

fn norm2(v: &[f64]) -> f64 {
    // Chunked parallel sum of squares; the fixed chunk partition makes the
    // accumulation order (and hence the f64 result) thread-count-invariant.
    v.par_iter()
        .with_min_len(1024)
        .fold(|| 0.0f64, |acc, x| acc + x * x)
        .reduce(|| 0.0, |a, b| a + b)
        .sqrt()
}

/// One multigrid V-cycle.
fn v_cycle(phi: &mut Mesh, s: &Mesh, cfg: &MgConfig) {
    let n = phi.n;
    if n <= 4 {
        // Coarsest level: many smoothing sweeps stand in for a direct solve.
        for _ in 0..50 {
            smooth(phi, s);
        }
        return;
    }
    for _ in 0..cfg.nu_pre {
        smooth(phi, s);
    }
    let r = residual(phi, s);
    let r_coarse = restrict(&r);
    let mut e_coarse = Mesh::zeros(n / 2);
    v_cycle(&mut e_coarse, &r_coarse, cfg);
    prolong_add(phi, &e_coarse);
    for _ in 0..cfg.nu_post {
        smooth(phi, s);
    }
}

/// Red–black Gauss–Seidel sweep for the 7-point periodic Laplacian,
/// h = 1/n: φᵢ = (Σ neighbours − h²·Sᵢ) / 6.
///
/// Each colour pass is parallelised over i-planes: a cell of the active
/// colour only reads its six face neighbours, all of the opposite colour,
/// so every read targets memory that is stable for the whole pass and every
/// write is unique. The update is order-independent within a pass, making
/// the result bitwise-identical at any thread count.
///
/// Within a plane the j/k loops walk (TILE × TILE) cache blocks so that a
/// tile's five stencil rows (j, j±1 of this plane, j of planes i±1) are
/// revisited while still hot instead of once per full-width j pass, and the
/// periodic wrap is handled with [`wrap_pm`] conditionals instead of the
/// reference sweep's per-cell `% n` divides. The per-cell expression is
/// unchanged and every neighbour index is the same value, so — by the same
/// order-independence argument — the blocked sweep is bitwise-identical to
/// the unblocked one (pinned by
/// `blocked_smoother_bitwise_matches_unblocked_reference`).
fn smooth(phi: &mut Mesh, s: &Mesh) {
    let n = phi.n;
    let h2 = 1.0 / (n as f64 * n as f64);
    let min_len = plane_min_len(n);
    for color in 0..2usize {
        let out = RawMut(phi.data.as_mut_ptr());
        (0..n)
            .into_par_iter()
            .with_min_len(min_len)
            .for_each(move |i| {
                let p = out.ptr();
                let ip = (i + 1) % n;
                let im = (i + n - 1) % n;
                for jt in (0..n).step_by(TILE) {
                    let j_end = (jt + TILE).min(n);
                    for kt in (0..n).step_by(TILE) {
                        let k_end = (kt + TILE).min(n);
                        for j in jt..j_end {
                            let (jp, jm) = wrap_pm(j, n);
                            let row = (i * n + j) * n;
                            let row_ip = (ip * n + j) * n;
                            let row_im = (im * n + j) * n;
                            let row_jp = (i * n + jp) * n;
                            let row_jm = (i * n + jm) * n;
                            // First k of this colour at or after kt:
                            // (i+j+k) ≡ color (mod 2).
                            let mut k = kt + (color + i + j + kt) % 2;
                            while k < k_end {
                                let (kp, km) = wrap_pm(k, n);
                                // SAFETY: writes touch only `color` cells of
                                // plane i (each claimed by one worker); reads
                                // touch only opposite-colour cells, never
                                // written this pass.
                                unsafe {
                                    let nb = *p.add(row_ip + k)
                                        + *p.add(row_im + k)
                                        + *p.add(row_jp + k)
                                        + *p.add(row_jm + k)
                                        + *p.add(row + kp)
                                        + *p.add(row + km);
                                    *p.add(row + k) = (nb - h2 * s.data[row + k]) / 6.0;
                                }
                                k += 2;
                            }
                        }
                    }
                }
            });
    }
}

/// One production red–black sweep (cache-blocked). Exposed so the kernel
/// benchmark can time the smoother in isolation from the V-cycle.
pub fn smooth_sweep(phi: &mut Mesh, s: &Mesh) {
    smooth(phi, s)
}

/// The production residual (cache-blocked), exposed for the same reason.
pub fn residual_mesh(phi: &Mesh, s: &Mesh) -> Mesh {
    residual(phi, s)
}

/// Pre-tiling reference sweep: identical arithmetic and i-plane parallelism
/// to [`smooth_sweep`], full-width j/k loops. Kept so the kernel benchmark
/// can report the cache-blocking before/after on the same fixture and pin
/// bitwise equality between the two orderings outside the unit tests.
pub fn smooth_sweep_unblocked(phi: &mut Mesh, s: &Mesh) {
    let n = phi.n;
    let h2 = 1.0 / (n as f64 * n as f64);
    let min_len = plane_min_len(n);
    for color in 0..2usize {
        let out = RawMut(phi.data.as_mut_ptr());
        (0..n)
            .into_par_iter()
            .with_min_len(min_len)
            .for_each(move |i| {
                let p = out.ptr();
                let ip = (i + 1) % n;
                let im = (i + n - 1) % n;
                for j in 0..n {
                    let jp = (j + 1) % n;
                    let jm = (j + n - 1) % n;
                    let row = (i * n + j) * n;
                    let row_ip = (ip * n + j) * n;
                    let row_im = (im * n + j) * n;
                    let row_jp = (i * n + jp) * n;
                    let row_jm = (i * n + jm) * n;
                    let mut k = (color + i + j) % 2;
                    while k < n {
                        let kp = (k + 1) % n;
                        let km = (k + n - 1) % n;
                        // SAFETY: same disjointness argument as `smooth`.
                        unsafe {
                            let nb = *p.add(row_ip + k)
                                + *p.add(row_im + k)
                                + *p.add(row_jp + k)
                                + *p.add(row_jm + k)
                                + *p.add(row + kp)
                                + *p.add(row + km);
                            *p.add(row + k) = (nb - h2 * s.data[row + k]) / 6.0;
                        }
                        k += 2;
                    }
                }
            });
    }
}

/// Pre-tiling reference residual (full-width j/k loops), the before-side of
/// the benchmark pair for [`residual_mesh`].
pub fn residual_unblocked(phi: &Mesh, s: &Mesh) -> Mesh {
    let n = phi.n;
    let inv_h2 = (n as f64) * (n as f64);
    let mut r = Mesh::zeros(n);
    let out = RawMut(r.data.as_mut_ptr());
    (0..n)
        .into_par_iter()
        .with_min_len(plane_min_len(n))
        .for_each(move |i| {
            let ip = (i + 1) % n;
            let im = (i + n - 1) % n;
            for j in 0..n {
                let jp = (j + 1) % n;
                let jm = (j + n - 1) % n;
                for k in 0..n {
                    let kp = (k + 1) % n;
                    let km = (k + n - 1) % n;
                    let lap = (phi.get(ip, j, k)
                        + phi.get(im, j, k)
                        + phi.get(i, jp, k)
                        + phi.get(i, jm, k)
                        + phi.get(i, j, kp)
                        + phi.get(i, j, km)
                        - 6.0 * phi.get(i, j, k))
                        * inv_h2;
                    // SAFETY: plane i of the output is written by one worker.
                    unsafe {
                        *out.ptr().add((i * n + j) * n + k) = s.get(i, j, k) - lap;
                    }
                }
            }
        });
    r
}

/// Residual r = S − ∇²φ. Parallel over i-planes of the fresh output mesh;
/// `phi` and `s` are only read. The j/k loops walk the same (TILE × TILE)
/// cache blocks as [`smooth`], with row bases hoisted out of the k loop and
/// the periodic wrap via [`wrap_pm`]; each output cell is computed
/// independently with the identical summation order, so the visit order —
/// and hence the blocking — cannot change a bit.
fn residual(phi: &Mesh, s: &Mesh) -> Mesh {
    let n = phi.n;
    let inv_h2 = (n as f64) * (n as f64);
    let mut r = Mesh::zeros(n);
    let out = RawMut(r.data.as_mut_ptr());
    (0..n)
        .into_par_iter()
        .with_min_len(plane_min_len(n))
        .for_each(move |i| {
            let p = &phi.data[..];
            let sv = &s.data[..];
            let (ip, im) = wrap_pm(i, n);
            for jt in (0..n).step_by(TILE) {
                let j_end = (jt + TILE).min(n);
                for kt in (0..n).step_by(TILE) {
                    let k_end = (kt + TILE).min(n);
                    for j in jt..j_end {
                        let (jp, jm) = wrap_pm(j, n);
                        let row = (i * n + j) * n;
                        let row_ip = (ip * n + j) * n;
                        let row_im = (im * n + j) * n;
                        let row_jp = (i * n + jp) * n;
                        let row_jm = (i * n + jm) * n;
                        for k in kt..k_end {
                            let (kp, km) = wrap_pm(k, n);
                            let lap = (p[row_ip + k]
                                + p[row_im + k]
                                + p[row_jp + k]
                                + p[row_jm + k]
                                + p[row + kp]
                                + p[row + km]
                                - 6.0 * p[row + k])
                                * inv_h2;
                            // SAFETY: plane i of the output is written by one
                            // worker.
                            unsafe {
                                *out.ptr().add(row + k) = sv[row + k] - lap;
                            }
                        }
                    }
                }
            }
        });
    r
}

/// Full-weighting restriction to the half-resolution mesh (8-cell average —
/// cell-centred grids make this the natural choice).
fn restrict(fine: &Mesh) -> Mesh {
    let nc = fine.n / 2;
    let mut coarse = Mesh::zeros(nc);
    let out = RawMut(coarse.data.as_mut_ptr());
    (0..nc)
        .into_par_iter()
        .with_min_len(plane_min_len(nc))
        .for_each(move |i| {
            for j in 0..nc {
                for k in 0..nc {
                    let mut acc = 0.0;
                    for di in 0..2 {
                        for dj in 0..2 {
                            for dk in 0..2 {
                                acc += fine.get(2 * i + di, 2 * j + dj, 2 * k + dk);
                            }
                        }
                    }
                    // SAFETY: coarse plane i is written by one worker.
                    unsafe {
                        *out.ptr().add((i * nc + j) * nc + k) = acc / 8.0;
                    }
                }
            }
        });
    coarse
}

/// Piecewise-constant prolongation of the coarse correction, added to φ.
/// (Constant injection pairs with 8-cell averaging as an exact transpose,
/// keeping the two-grid operator symmetric.)
fn prolong_add(phi: &mut Mesh, coarse: &Mesh) {
    let nc = coarse.n;
    let n = phi.n;
    let out = RawMut(phi.data.as_mut_ptr());
    (0..nc)
        .into_par_iter()
        .with_min_len(plane_min_len(nc))
        .for_each(move |i| {
            for j in 0..nc {
                for k in 0..nc {
                    let e = coarse.get(i, j, k);
                    for di in 0..2 {
                        for dj in 0..2 {
                            for dk in 0..2 {
                                // SAFETY: coarse plane i maps to fine planes
                                // 2i and 2i+1 — disjoint across workers.
                                unsafe {
                                    *out.ptr()
                                        .add(((2 * i + di) * n + 2 * j + dj) * n + 2 * k + dk) += e;
                                }
                            }
                        }
                    }
                }
            }
        });
}

/// Central-difference gradient of φ: returns `[−∂φ/∂x, −∂φ/∂y, −∂φ/∂z]`
/// meshes, i.e. the acceleration field `g = −∇φ`.
pub fn gradient_force(phi: &Mesh) -> [Mesh; 3] {
    let n = phi.n;
    let inv_2h = n as f64 / 2.0;
    let mut out = [Mesh::zeros(n), Mesh::zeros(n), Mesh::zeros(n)];
    let [ox, oy, oz] = &mut out;
    let px = RawMut(ox.data.as_mut_ptr());
    let py = RawMut(oy.data.as_mut_ptr());
    let pz = RawMut(oz.data.as_mut_ptr());
    (0..n)
        .into_par_iter()
        .with_min_len(plane_min_len(n))
        .for_each(move |i| {
            let ip = (i + 1) % n;
            let im = (i + n - 1) % n;
            for j in 0..n {
                let jp = (j + 1) % n;
                let jm = (j + n - 1) % n;
                for k in 0..n {
                    let kp = (k + 1) % n;
                    let km = (k + n - 1) % n;
                    let ix = (i * n + j) * n + k;
                    // SAFETY: plane i of each output is written by one worker.
                    unsafe {
                        *px.ptr().add(ix) = -(phi.get(ip, j, k) - phi.get(im, j, k)) * inv_2h;
                        *py.ptr().add(ix) = -(phi.get(i, jp, k) - phi.get(i, jm, k)) * inv_2h;
                        *pz.ptr().add(ix) = -(phi.get(i, j, kp) - phi.get(i, j, km)) * inv_2h;
                    }
                }
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Analytic test: S = sin(2πx) has φ = −sin(2πx)/(2π)² (per the discrete
    /// operator, the eigenvalue differs slightly; compare against the
    /// discrete eigenvalue for exactness).
    #[test]
    fn solves_single_mode_exactly() {
        let n = 16;
        let mut s = Mesh::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    let ix = s.idx(i, j, k);
                    s.data[ix] = (2.0 * std::f64::consts::PI * x).sin();
                }
            }
        }
        let sol = solve(&s, &MgConfig::default());
        assert!(sol.rel_residual < 1e-8, "residual {}", sol.rel_residual);
        // The discrete eigenvalue of the 7-pt Laplacian for mode m=1:
        // λ = −(2 sin(π/n) n)² → φ = S/λ.
        let lam = -(2.0 * (std::f64::consts::PI / n as f64).sin() * n as f64).powi(2);
        for ix in 0..s.data.len() {
            let expect = s.data[ix] / lam;
            assert!(
                (sol.phi.data[ix] - expect).abs() < 1e-6,
                "phi mismatch at {ix}: {} vs {expect}",
                sol.phi.data[ix]
            );
        }
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let n = 8;
        let mut phi = Mesh::zeros(n);
        let mut s = Mesh::zeros(n);
        // Build S from a random φ by applying the discrete Laplacian, then
        // check residual(φ, S) == 0.
        for (ix, v) in phi.data.iter_mut().enumerate() {
            *v = ((ix * 2654435761) % 1000) as f64 / 1000.0;
        }
        let inv_h2 = (n * n) as f64;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let ip = (i + 1) % n;
                    let im = (i + n - 1) % n;
                    let jp = (j + 1) % n;
                    let jm = (j + n - 1) % n;
                    let kp = (k + 1) % n;
                    let km = (k + n - 1) % n;
                    let lap = (phi.get(ip, j, k)
                        + phi.get(im, j, k)
                        + phi.get(i, jp, k)
                        + phi.get(i, jm, k)
                        + phi.get(i, j, kp)
                        + phi.get(i, j, km)
                        - 6.0 * phi.get(i, j, k))
                        * inv_h2;
                    let ix = s.idx(i, j, k);
                    s.data[ix] = lap;
                }
            }
        }
        let r = residual(&phi, &s);
        assert!(norm2(&r.data) < 1e-9);
    }

    #[test]
    fn solver_handles_nonzero_mean_source() {
        let n = 8;
        let mut s = Mesh::zeros(n);
        for (ix, v) in s.data.iter_mut().enumerate() {
            *v = 1.0 + ((ix % 5) as f64 - 2.0) * 0.1;
        }
        let sol = solve(&s, &MgConfig::default());
        assert!(sol.rel_residual < 1e-6);
        assert!(sol.phi.mean().abs() < 1e-10);
    }

    #[test]
    fn gradient_of_linear_mode_is_cosine() {
        let n = 32;
        let mut phi = Mesh::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    let ix = phi.idx(i, j, k);
                    phi.data[ix] = (2.0 * std::f64::consts::PI * x).sin();
                }
            }
        }
        let g = gradient_force(&phi);
        // g_x = −2π cos(2πx) (up to the discrete sinc factor), g_y = g_z = 0.
        for i in 0..n {
            let x = (i as f64 + 0.5) / n as f64;
            let expect = -2.0 * std::f64::consts::PI * (2.0 * std::f64::consts::PI * x).cos();
            let got = g[0].get(i, 3, 5);
            assert!(
                (got - expect).abs() < 0.1 * expect.abs().max(1.0),
                "gx at {x}: {got} vs {expect}"
            );
            assert!(g[1].get(i, 3, 5).abs() < 1e-10);
            assert!(g[2].get(i, 3, 5).abs() < 1e-10);
        }
    }

    /// Lexicographic Gauss–Seidel reference (the classic serial ordering),
    /// used to pin the parallel red-black smoother's convergence.
    fn smooth_lex(phi: &mut Mesh, s: &Mesh) {
        let n = phi.n;
        let h2 = 1.0 / (n as f64 * n as f64);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let ip = (i + 1) % n;
                    let im = (i + n - 1) % n;
                    let jp = (j + 1) % n;
                    let jm = (j + n - 1) % n;
                    let kp = (k + 1) % n;
                    let km = (k + n - 1) % n;
                    let nb = phi.get(ip, j, k)
                        + phi.get(im, j, k)
                        + phi.get(i, jp, k)
                        + phi.get(i, jm, k)
                        + phi.get(i, j, kp)
                        + phi.get(i, j, km);
                    let ix = phi.idx(i, j, k);
                    phi.data[ix] = (nb - h2 * s.get(i, j, k)) / 6.0;
                }
            }
        }
    }

    /// The `multigrid_converges_fast` fixture source.
    fn fixture_source(n: usize) -> Mesh {
        let mut s = Mesh::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    let y = (j as f64 + 0.5) / n as f64;
                    let z = (k as f64 + 0.5) / n as f64;
                    let ix = s.idx(i, j, k);
                    s.data[ix] = (2.0 * std::f64::consts::PI * x).sin()
                        * (4.0 * std::f64::consts::PI * y).cos()
                        + (6.0 * std::f64::consts::PI * z).sin();
                }
            }
        }
        s
    }

    /// Property: after N sweeps on the `multigrid_converges_fast` fixture,
    /// the parallel red-black smoother's residual norm tracks the classic
    /// lexicographic smoother's convergence bound (both are Gauss–Seidel;
    /// the orderings differ by at most a modest constant per sweep), and
    /// red-black contracts the initial residual once past the transient.
    #[test]
    fn red_black_matches_lexicographic_convergence_bound() {
        let n = 32;
        let s = fixture_source(n);
        let r0 = norm2(&s.data); // residual of the zero initial guess

        let mut phi_rb = Mesh::zeros(n);
        let mut phi_lex = Mesh::zeros(n);
        let mut sweeps_done = 0;
        for sweeps in [3usize, 10, 30] {
            while sweeps_done < sweeps {
                smooth(&mut phi_rb, &s);
                smooth_lex(&mut phi_lex, &s);
                sweeps_done += 1;
            }
            let r_rb = norm2(&residual(&phi_rb, &s).data);
            let r_lex = norm2(&residual(&phi_lex, &s).data);
            // Both orderings converge at the same asymptotic rate; red-black
            // trails by a modest constant (measured ratio 1.32–1.42 here).
            assert!(
                r_rb <= r_lex * 1.5,
                "red-black residual {r_rb} after {sweeps} sweeps worse than \
                 1.5x lexicographic bound {r_lex}"
            );
            // Gauss–Seidel L2 residuals may rise transiently on smooth modes
            // (both orderings do at 3 sweeps); require contraction once the
            // high-frequency content is gone.
            if sweeps >= 10 {
                assert!(
                    r_rb < r0,
                    "red-black failed to contract after {sweeps} sweeps: \
                     {r_rb} vs initial {r0}"
                );
            }
        }
    }

    /// The red-black sweep is order-independent within a colour pass, so the
    /// smoothed mesh must be bitwise-identical at every thread count.
    #[test]
    fn smoother_bitwise_identical_across_thread_counts() {
        let n = 16;
        let s = fixture_source(n);
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut phi = Mesh::zeros(n);
                    for _ in 0..4 {
                        smooth(&mut phi, &s);
                    }
                    phi
                })
        };
        let base = run(1);
        for threads in [2, 4] {
            let other = run(threads);
            for (a, b) in base.data.iter().zip(&other.data) {
                assert_eq!(a.to_bits(), b.to_bits(), "mismatch at {threads} threads");
            }
        }
    }

    /// Serial, unblocked red-black sweep: the pre-tiling reference ordering.
    fn smooth_rb_unblocked(phi: &mut Mesh, s: &Mesh) {
        let n = phi.n;
        let h2 = 1.0 / (n as f64 * n as f64);
        for color in 0..2usize {
            for i in 0..n {
                for j in 0..n {
                    let mut k = (color + i + j) % 2;
                    while k < n {
                        let ip = (i + 1) % n;
                        let im = (i + n - 1) % n;
                        let jp = (j + 1) % n;
                        let jm = (j + n - 1) % n;
                        let kp = (k + 1) % n;
                        let km = (k + n - 1) % n;
                        let nb = phi.get(ip, j, k)
                            + phi.get(im, j, k)
                            + phi.get(i, jp, k)
                            + phi.get(i, jm, k)
                            + phi.get(i, j, kp)
                            + phi.get(i, j, km);
                        let ix = phi.idx(i, j, k);
                        phi.data[ix] = (nb - h2 * s.get(i, j, k)) / 6.0;
                        k += 2;
                    }
                }
            }
        }
    }

    /// The cache-blocked j/k sweep only reorders cell visits within a colour
    /// pass, and the residual only reorders pure reads — so both must match
    /// the unblocked reference bit-for-bit. n = 48 is deliberately not a
    /// multiple of TILE, exercising the partial tiles at the mesh edge.
    #[test]
    fn blocked_smoother_bitwise_matches_unblocked_reference() {
        let n = 48;
        assert!(n % super::TILE != 0, "fixture must exercise partial tiles");
        let s = fixture_source(n);
        let mut blocked = Mesh::zeros(n);
        let mut reference = Mesh::zeros(n);
        for _ in 0..4 {
            smooth(&mut blocked, &s);
            smooth_rb_unblocked(&mut reference, &s);
        }
        for (ix, (a, b)) in blocked.data.iter().zip(&reference.data).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "smooth mismatch at cell {ix}");
        }
        let r_blocked = residual(&blocked, &s);
        let inv_h2 = (n as f64) * (n as f64);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let ip = (i + 1) % n;
                    let im = (i + n - 1) % n;
                    let jp = (j + 1) % n;
                    let jm = (j + n - 1) % n;
                    let kp = (k + 1) % n;
                    let km = (k + n - 1) % n;
                    let lap = (blocked.get(ip, j, k)
                        + blocked.get(im, j, k)
                        + blocked.get(i, jp, k)
                        + blocked.get(i, jm, k)
                        + blocked.get(i, j, kp)
                        + blocked.get(i, j, km)
                        - 6.0 * blocked.get(i, j, k))
                        * inv_h2;
                    let expect = s.get(i, j, k) - lap;
                    assert_eq!(
                        r_blocked.get(i, j, k).to_bits(),
                        expect.to_bits(),
                        "residual mismatch at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn multigrid_converges_fast() {
        // V-cycle convergence should need far fewer than max cycles.
        let n = 32;
        let mut s = Mesh::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    let y = (j as f64 + 0.5) / n as f64;
                    let z = (k as f64 + 0.5) / n as f64;
                    let ix = s.idx(i, j, k);
                    s.data[ix] = (2.0 * std::f64::consts::PI * x).sin()
                        * (4.0 * std::f64::consts::PI * y).cos()
                        + (6.0 * std::f64::consts::PI * z).sin();
                }
            }
        }
        let sol = solve(&s, &MgConfig::default());
        assert!(sol.rel_residual < 1e-8);
        assert!(sol.cycles <= 15, "took {} cycles", sol.cycles);
    }
}
