//! Particle storage and mesh coupling.
//!
//! Particles are stored structure-of-arrays for cache-friendly sweeps (the
//! per-component loops in CIC deposit/interp touch one array at a time).
//! Positions live in the unit box `[0,1)³`; all mesh coupling assumes
//! periodic boundaries.

use rayon::prelude::*;

/// Structure-of-arrays particle set in code units.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Particles {
    pub pos: Vec<[f64; 3]>,
    pub vel: Vec<[f64; 3]>,
    pub mass: Vec<f64>,
    /// Stable identifiers (survive domain exchanges; used by TreeMaker).
    pub id: Vec<u64>,
}

impl Particles {
    pub fn with_capacity(n: usize) -> Self {
        Particles {
            pos: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            mass: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
        }
    }

    /// Build from GRAFIC initial conditions given the IC box size (Mpc/h):
    /// positions AND velocities are rescaled to box units (GRAFIC emits both
    /// in comoving Mpc/h; the integrator works in unit-box coordinates, so a
    /// canonical momentum of 1 means "one box length per Hubble time").
    pub fn from_ics(ics: &grafic::IcParticles, box_size: f64) -> Self {
        let n = ics.len();
        let inv = 1.0 / box_size;
        Particles {
            pos: ics
                .pos
                .iter()
                .map(|p| [wrap01(p[0] * inv), wrap01(p[1] * inv), wrap01(p[2] * inv)])
                .collect(),
            vel: ics
                .vel
                .iter()
                .map(|v| [v[0] * inv, v[1] * inv, v[2] * inv])
                .collect(),
            mass: ics.mass.clone(),
            id: (0..n as u64).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    pub fn push(&mut self, pos: [f64; 3], vel: [f64; 3], mass: f64, id: u64) {
        self.pos.push(pos);
        self.vel.push(vel);
        self.mass.push(mass);
        self.id.push(id);
    }

    /// Centre of mass (ignores periodicity — callers use it on compact sets).
    pub fn center_of_mass(&self) -> [f64; 3] {
        let mut c = [0.0f64; 3];
        let mut m = 0.0;
        for i in 0..self.len() {
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                c[d] += self.mass[i] * self.pos[i][d];
            }
            m += self.mass[i];
        }
        if m > 0.0 {
            for cd in c.iter_mut() {
                *cd /= m;
            }
        }
        c
    }

    /// Wrap all positions back into the unit box (after a drift).
    pub fn wrap(&mut self) {
        self.pos.par_iter_mut().for_each(|p| {
            for x in p.iter_mut() {
                *x = wrap01(*x);
            }
        });
    }
}

#[inline]
pub fn wrap01(x: f64) -> f64 {
    let y = x - x.floor();
    // x.floor() of exactly 1.0-eps edge cases can return 1.0 - keep in [0,1)
    if y >= 1.0 {
        0.0
    } else {
        y
    }
}

/// A periodic scalar mesh of side `n` (row-major x,y,z like `grafic`).
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    pub n: usize,
    pub data: Vec<f64>,
}

impl Mesh {
    pub fn zeros(n: usize) -> Self {
        Mesh {
            n,
            data: vec![0.0; n * n * n],
        }
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        ((i % self.n) * self.n + (j % self.n)) * self.n + (k % self.n)
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }
}

/// Number of scratch meshes the parallel CIC deposit builds. A function of
/// the particle count ONLY — never the thread count — so the accumulation
/// order (and the bitwise f64 result) is identical at any parallelism level.
/// Small sets use one chunk, which reproduces the serial deposit exactly.
#[inline]
fn deposit_chunks(np: usize) -> usize {
    if np < 4096 {
        1
    } else {
        8
    }
}

/// Deposit particles `[lo, hi)` into `mesh` (serial scatter over one range).
fn deposit_range(parts: &Particles, mesh: &mut Mesh, lo: usize, hi: usize) {
    let n = mesh.n;
    let nf = n as f64;
    let cell_volume = 1.0 / (nf * nf * nf);
    for p in lo..hi {
        let m = parts.mass[p] / cell_volume; // density contribution
        let mut base = [0usize; 3];
        let mut frac = [0.0f64; 3];
        for d in 0..3 {
            let x = parts.pos[p][d] * nf - 0.5;
            let x0 = x.floor();
            base[d] = ((x0 as i64).rem_euclid(n as i64)) as usize;
            frac[d] = x - x0;
        }
        for (dx, wx) in [(0usize, 1.0 - frac[0]), (1, frac[0])] {
            for (dy, wy) in [(0usize, 1.0 - frac[1]), (1, frac[1])] {
                for (dz, wz) in [(0usize, 1.0 - frac[2]), (1, frac[2])] {
                    let ix = mesh.idx(base[0] + dx, base[1] + dy, base[2] + dz);
                    mesh.data[ix] += m * wx * wy * wz;
                }
            }
        }
    }
}

/// Cloud-in-cell deposit: spread each particle's mass over the 8 nearest
/// cells with trilinear weights, producing a *density* mesh normalised so
/// that mean density 1 corresponds to uniform mass distribution
/// (i.e. the overdensity is `rho - 1` when total mass is 1).
///
/// Parallelised by splitting the particle range into [`deposit_chunks`]
/// fixed chunks, scattering each into its own scratch mesh concurrently,
/// then merging the scratch meshes per-cell in ascending chunk order (the
/// merge itself is parallel over cells). The chunking is independent of the
/// thread count, so the result is bitwise-identical at any parallelism.
pub fn cic_deposit(parts: &Particles, n: usize) -> Mesh {
    let np = parts.len();
    let nchunks = deposit_chunks(np);
    if nchunks == 1 {
        let mut mesh = Mesh::zeros(n);
        deposit_range(parts, &mut mesh, 0, np);
        return mesh;
    }
    let chunk = np.div_ceil(nchunks);
    let scratch: Vec<Mesh> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let mut m = Mesh::zeros(n);
            deposit_range(parts, &mut m, c * chunk, ((c + 1) * chunk).min(np));
            m
        })
        .collect();
    let (first, rest) = scratch.split_first().expect("nchunks >= 1");
    let mut mesh = first.clone();
    mesh.data.par_iter_mut().enumerate().for_each(|(ix, v)| {
        for s in rest {
            *v += s.data[ix];
        }
    });
    mesh
}

/// Trilinear (CIC) interpolation of a vector field, sampled per-axis from
/// three scalar meshes, onto particle positions.
pub fn cic_interp_force(parts: &Particles, force: &[Mesh; 3]) -> Vec<[f64; 3]> {
    let n = force[0].n;
    let nf = n as f64;
    parts
        .pos
        .par_iter()
        .map(|pos| {
            let mut base = [0usize; 3];
            let mut frac = [0.0f64; 3];
            for d in 0..3 {
                let x = pos[d] * nf - 0.5;
                let x0 = x.floor();
                base[d] = ((x0 as i64).rem_euclid(n as i64)) as usize;
                frac[d] = x - x0;
            }
            let mut out = [0.0f64; 3];
            for (dx, wx) in [(0usize, 1.0 - frac[0]), (1, frac[0])] {
                for (dy, wy) in [(0usize, 1.0 - frac[1]), (1, frac[1])] {
                    for (dz, wz) in [(0usize, 1.0 - frac[2]), (1, frac[2])] {
                        let w = wx * wy * wz;
                        for axis in 0..3 {
                            out[axis] +=
                                w * force[axis].get(base[0] + dx, base[1] + dy, base[2] + dz);
                        }
                    }
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_particle(pos: [f64; 3]) -> Particles {
        let mut p = Particles::default();
        p.push(pos, [0.0; 3], 1.0, 0);
        p
    }

    #[test]
    fn cic_conserves_mass() {
        let mut parts = Particles::default();
        for i in 0..50 {
            let f = i as f64 / 50.0;
            parts.push([f, (f * 3.0) % 1.0, (f * 7.0) % 1.0], [0.0; 3], 0.02, i);
        }
        let mesh = cic_deposit(&parts, 8);
        // sum(rho * cell_volume) == total mass
        let total = mesh.sum() / (8.0f64).powi(3);
        assert!((total - parts.total_mass()).abs() < 1e-12);
    }

    #[test]
    fn cic_particle_at_cell_center_hits_one_cell() {
        let n = 8;
        // Cell centres are at (i + 0.5)/n.
        let parts = one_particle([2.5 / 8.0, 3.5 / 8.0, 4.5 / 8.0]);
        let mesh = cic_deposit(&parts, n);
        let expect = (n as f64).powi(3);
        assert!((mesh.get(2, 3, 4) - expect).abs() < 1e-9);
        let nonzero = mesh.data.iter().filter(|&&v| v.abs() > 1e-12).count();
        assert_eq!(nonzero, 1);
    }

    #[test]
    fn cic_wraps_at_boundary() {
        let parts = one_particle([0.0, 0.0, 0.0]); // corner: splits over 8 wrapped cells
        let mesh = cic_deposit(&parts, 4);
        let total = mesh.sum() / 64.0;
        assert!((total - 1.0).abs() < 1e-12);
        // Weight must land in the 8 cells around the origin corner.
        for (i, j, k) in [(0, 0, 0), (3, 3, 3), (0, 3, 3), (3, 0, 0)] {
            assert!(mesh.get(i, j, k) > 0.0);
        }
    }

    #[test]
    fn interp_of_constant_field_is_constant() {
        let n = 8;
        let mut f = Mesh::zeros(n);
        for v in f.data.iter_mut() {
            *v = 2.5;
        }
        let force = [f.clone(), f.clone(), f];
        let mut parts = Particles::default();
        parts.push([0.13, 0.57, 0.91], [0.0; 3], 1.0, 0);
        parts.push([0.999, 0.001, 0.5], [0.0; 3], 1.0, 1);
        let out = cic_interp_force(&parts, &force);
        for o in out {
            for v in o {
                assert!((v - 2.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn chunked_deposit_matches_serial_and_is_thread_invariant() {
        // Enough particles to trigger the multi-chunk path (np >= 4096).
        let mut parts = Particles::default();
        for i in 0..5000u64 {
            let f = i as f64;
            parts.push(
                [
                    (f * 0.618_033_988_75) % 1.0,
                    (f * 0.414_213_562_37) % 1.0,
                    (f * 0.259_921_049_89) % 1.0,
                ],
                [0.0; 3],
                1.0 / 5000.0,
                i,
            );
        }
        let n = 16;
        // Serial reference: one pass over all particles.
        let mut reference = Mesh::zeros(n);
        deposit_range(&parts, &mut reference, 0, parts.len());

        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| cic_deposit(&parts, n))
        };
        let base = run(1);
        // Chunked merge reorders the per-cell accumulation, so agreement with
        // the serial pass is to rounding, not bitwise.
        for (a, b) in base.data.iter().zip(&reference.data) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
        }
        let total = base.sum() / (n as f64).powi(3);
        assert!((total - parts.total_mass()).abs() < 1e-12);
        // Across thread counts the chunking is fixed: bitwise identical.
        for threads in [2, 4] {
            let other = run(threads);
            for (a, b) in base.data.iter().zip(&other.data) {
                assert_eq!(a.to_bits(), b.to_bits(), "mismatch at {threads} threads");
            }
        }
    }

    #[test]
    fn wrap_keeps_unit_interval() {
        assert_eq!(wrap01(1.25), 0.25);
        assert_eq!(wrap01(-0.25), 0.75);
        assert!(wrap01(0.9999999) < 1.0);
        assert_eq!(wrap01(0.0), 0.0);
    }

    #[test]
    fn from_ics_rescales_to_unit_box() {
        let ics = grafic::IcParticles {
            pos: vec![[50.0, 25.0, 99.0]],
            vel: vec![[1.0, 2.0, 3.0]],
            mass: vec![1.0],
        };
        let p = Particles::from_ics(&ics, 100.0);
        assert!((p.pos[0][0] - 0.5).abs() < 1e-12);
        assert!((p.pos[0][1] - 0.25).abs() < 1e-12);
        assert!((p.pos[0][2] - 0.99).abs() < 1e-12);
    }

    #[test]
    fn center_of_mass_weighted() {
        let mut p = Particles::default();
        p.push([0.0, 0.0, 0.0], [0.0; 3], 1.0, 0);
        p.push([0.6, 0.0, 0.0], [0.0; 3], 2.0, 1);
        let c = p.center_of_mass();
        assert!((c[0] - 0.4).abs() < 1e-12);
    }
}
