//! Finite-volume Euler solver: the gas component of RAMSES.
//!
//! Second-order MUSCL–Hancock scheme with minmod-limited slopes and a choice
//! of HLL or HLLC Riemann solvers, on a uniform 3-D periodic grid (the base
//! level of the AMR hierarchy; refined patches re-use the same kernels on
//! their own uniform sub-grids). Ideal-gas equation of state.
//!
//! Conserved state per cell: `(ρ, ρu, ρv, ρw, E)` with
//! `E = ρe + ρ|v|²/2`, `p = (γ−1) ρe`.

use rayon::prelude::*;

/// Adiabatic index (monatomic gas, the cosmological default).
pub const GAMMA_DEFAULT: f64 = 5.0 / 3.0;

/// Primitive state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prim {
    pub rho: f64,
    pub vel: [f64; 3],
    pub p: f64,
}

/// Conserved state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cons {
    pub rho: f64,
    pub mom: [f64; 3],
    pub e: f64,
}

impl Prim {
    pub fn to_cons(self, gamma: f64) -> Cons {
        let ke = 0.5
            * self.rho
            * (self.vel[0] * self.vel[0] + self.vel[1] * self.vel[1] + self.vel[2] * self.vel[2]);
        Cons {
            rho: self.rho,
            mom: [
                self.rho * self.vel[0],
                self.rho * self.vel[1],
                self.rho * self.vel[2],
            ],
            e: self.p / (gamma - 1.0) + ke,
        }
    }

    /// Sound speed.
    pub fn cs(self, gamma: f64) -> f64 {
        (gamma * self.p / self.rho).sqrt()
    }
}

impl Cons {
    pub fn to_prim(self, gamma: f64) -> Prim {
        let rho = self.rho.max(1e-300);
        let vel = [self.mom[0] / rho, self.mom[1] / rho, self.mom[2] / rho];
        let ke = 0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
        Prim {
            rho,
            vel,
            p: ((self.e - ke) * (gamma - 1.0)).max(1e-300),
        }
    }

    fn add_scaled(&mut self, f: &Cons, s: f64) {
        self.rho += f.rho * s;
        for d in 0..3 {
            self.mom[d] += f.mom[d] * s;
        }
        self.e += f.e * s;
    }
}

/// Physical flux along `axis` for primitive state `w`.
fn flux(w: Prim, axis: usize, gamma: f64) -> Cons {
    let u = w.vel[axis];
    let c = w.to_cons(gamma);
    let mut f = Cons {
        rho: c.rho * u,
        mom: [c.mom[0] * u, c.mom[1] * u, c.mom[2] * u],
        e: (c.e + w.p) * u,
    };
    f.mom[axis] += w.p;
    f
}

/// Riemann solver selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Riemann {
    Hll,
    Hllc,
}

/// Single-interface approximate Riemann flux along `axis`.
pub fn riemann_flux(left: Prim, right: Prim, axis: usize, gamma: f64, solver: Riemann) -> Cons {
    // Davis wave-speed estimates.
    let cl = left.cs(gamma);
    let cr = right.cs(gamma);
    let sl = (left.vel[axis] - cl).min(right.vel[axis] - cr);
    let sr = (left.vel[axis] + cl).max(right.vel[axis] + cr);

    let fl = flux(left, axis, gamma);
    let fr = flux(right, axis, gamma);
    let ul = left.to_cons(gamma);
    let ur = right.to_cons(gamma);

    if sl >= 0.0 {
        return fl;
    }
    if sr <= 0.0 {
        return fr;
    }

    match solver {
        Riemann::Hll => {
            // F = (sr·Fl − sl·Fr + sl·sr (Ur − Ul)) / (sr − sl)
            let inv = 1.0 / (sr - sl);
            Cons {
                rho: (sr * fl.rho - sl * fr.rho + sl * sr * (ur.rho - ul.rho)) * inv,
                mom: [
                    (sr * fl.mom[0] - sl * fr.mom[0] + sl * sr * (ur.mom[0] - ul.mom[0])) * inv,
                    (sr * fl.mom[1] - sl * fr.mom[1] + sl * sr * (ur.mom[1] - ul.mom[1])) * inv,
                    (sr * fl.mom[2] - sl * fr.mom[2] + sl * sr * (ur.mom[2] - ul.mom[2])) * inv,
                ],
                e: (sr * fl.e - sl * fr.e + sl * sr * (ur.e - ul.e)) * inv,
            }
        }
        Riemann::Hllc => {
            // Contact wave speed (Toro eq. 10.37).
            let rl = left.rho;
            let rr = right.rho;
            let ulv = left.vel[axis];
            let urv = right.vel[axis];
            let s_star = (right.p - left.p + rl * ulv * (sl - ulv) - rr * urv * (sr - urv))
                / (rl * (sl - ulv) - rr * (sr - urv));

            let star_state = |w: Prim, u: Cons, s: f64| -> Cons {
                let un = w.vel[axis];
                let coef = w.rho * (s - un) / (s - s_star);
                let mut mom = [0.0; 3];
                #[allow(clippy::needless_range_loop)]
                for d in 0..3 {
                    mom[d] = coef * if d == axis { s_star } else { w.vel[d] };
                }
                Cons {
                    rho: coef,
                    mom,
                    e: coef * (u.e / w.rho + (s_star - un) * (s_star + w.p / (w.rho * (s - un)))),
                }
            };

            if s_star >= 0.0 {
                let us = star_state(left, ul, sl);
                let mut f = fl;
                f.rho += sl * (us.rho - ul.rho);
                for d in 0..3 {
                    f.mom[d] += sl * (us.mom[d] - ul.mom[d]);
                }
                f.e += sl * (us.e - ul.e);
                f
            } else {
                let us = star_state(right, ur, sr);
                let mut f = fr;
                f.rho += sr * (us.rho - ur.rho);
                for d in 0..3 {
                    f.mom[d] += sr * (us.mom[d] - ur.mom[d]);
                }
                f.e += sr * (us.e - ur.e);
                f
            }
        }
    }
}

#[inline]
fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// A 3-D periodic gas state of side `n` (row-major x,y,z ordering).
#[derive(Debug, Clone)]
pub struct HydroGrid {
    pub n: usize,
    pub gamma: f64,
    pub cells: Vec<Cons>,
}

impl HydroGrid {
    /// Initialise from a primitive-state function of the cell centre
    /// (called in row-major x,y,z order).
    pub fn from_fn(n: usize, gamma: f64, mut f: impl FnMut([f64; 3]) -> Prim) -> Self {
        let mut cells = Vec::with_capacity(n * n * n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = [
                        (i as f64 + 0.5) / n as f64,
                        (j as f64 + 0.5) / n as f64,
                        (k as f64 + 0.5) / n as f64,
                    ];
                    cells.push(f(x).to_cons(gamma));
                }
            }
        }
        HydroGrid { n, gamma, cells }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        ((i % self.n) * self.n + (j % self.n)) * self.n + (k % self.n)
    }

    pub fn total_mass(&self) -> f64 {
        let v = 1.0 / (self.n as f64).powi(3);
        self.cells.iter().map(|c| c.rho).sum::<f64>() * v
    }

    pub fn total_energy(&self) -> f64 {
        let v = 1.0 / (self.n as f64).powi(3);
        self.cells.iter().map(|c| c.e).sum::<f64>() * v
    }

    pub fn total_momentum(&self) -> [f64; 3] {
        let v = 1.0 / (self.n as f64).powi(3);
        let mut m = [0.0; 3];
        for c in &self.cells {
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                m[d] += c.mom[d] * v;
            }
        }
        m
    }

    /// Largest stable timestep: CFL · Δx / max(|v| + cs).
    pub fn max_dt(&self, cfl: f64) -> f64 {
        let dx = 1.0 / self.n as f64;
        let smax = self
            .cells
            .par_iter()
            .map(|c| {
                let w = c.to_prim(self.gamma);
                let v = w.vel[0].abs().max(w.vel[1].abs()).max(w.vel[2].abs());
                v + w.cs(self.gamma)
            })
            .reduce(|| 0.0, f64::max);
        if smax > 0.0 {
            cfl * dx / smax
        } else {
            f64::INFINITY
        }
    }

    /// Advance one timestep with dimensionally-split MUSCL–Hancock sweeps
    /// (x, y, z order; RAMSES uses an unsplit variant — split sweeps keep the
    /// same order of accuracy for smooth flows and are simpler to verify).
    pub fn step(&mut self, dt: f64, solver: Riemann) {
        for axis in 0..3 {
            self.sweep(axis, dt, solver);
        }
    }

    /// Apply gravitational source terms over `dt`: per cell,
    /// `d(ρv)/dt = ρ g` and `dE/dt = ρ v·g`, with `g` sampled from the
    /// acceleration meshes of the Poisson solve (same mesh resolution).
    /// This is the operator-split coupling RAMSES uses between its Godunov
    /// and gravity solvers.
    pub fn apply_gravity(&mut self, accel: &[crate::particles::Mesh; 3], dt: f64) {
        assert_eq!(
            accel[0].n, self.n,
            "acceleration mesh must match the gas mesh"
        );
        self.cells.par_iter_mut().enumerate().for_each(|(ix, u)| {
            let g = [accel[0].data[ix], accel[1].data[ix], accel[2].data[ix]];
            // Kinetic-energy update uses the time-centred momentum for
            // second-order accuracy: E += dt·(ρv + ρg dt/2)·g.
            let mut e_src = 0.0;
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                let mom_mid = u.mom[d] + 0.5 * dt * u.rho * g[d];
                e_src += mom_mid * g[d];
                u.mom[d] += dt * u.rho * g[d];
            }
            u.e += dt * e_src;
        });
    }

    fn sweep(&mut self, axis: usize, dt: f64, solver: Riemann) {
        let n = self.n;
        let dx = 1.0 / n as f64;
        let dtdx = dt / dx;
        let gamma = self.gamma;

        // Gather primitive states.
        let prim: Vec<Prim> = self.cells.par_iter().map(|c| c.to_prim(gamma)).collect();

        let get = |i: i64, j: i64, k: i64| -> Prim {
            let n = n as i64;
            let ix = (((i.rem_euclid(n)) * n + j.rem_euclid(n)) * n + k.rem_euclid(n)) as usize;
            prim[ix]
        };

        // For each cell compute limited slope and half-step predicted states
        // at its left/right faces, then solve Riemann problems per interface.
        // Interface f(i) sits between cell i-1 and i along `axis`.
        let faces: Vec<Cons> = (0..n * n * n)
            .into_par_iter()
            .map(|ix| {
                let (i, j, k) = (
                    (ix / (n * n)) as i64,
                    ((ix / n) % n) as i64,
                    (ix % n) as i64,
                );
                let shift = |c: (i64, i64, i64), d: i64| -> (i64, i64, i64) {
                    match axis {
                        0 => (c.0 + d, c.1, c.2),
                        1 => (c.0, c.1 + d, c.2),
                        _ => (c.0, c.1, c.2 + d),
                    }
                };
                // Left cell of this interface is at -1, right cell at 0.
                let reconstruct = |c: (i64, i64, i64), side: f64| -> Prim {
                    let wm = get(shift(c, -1).0, shift(c, -1).1, shift(c, -1).2);
                    let w0 = get(c.0, c.1, c.2);
                    let wp = get(shift(c, 1).0, shift(c, 1).1, shift(c, 1).2);
                    let s_rho = minmod(w0.rho - wm.rho, wp.rho - w0.rho);
                    let s_p = minmod(w0.p - wm.p, wp.p - w0.p);
                    let mut s_v = [0.0; 3];
                    #[allow(clippy::needless_range_loop)]
                    for d in 0..3 {
                        s_v[d] = minmod(w0.vel[d] - wm.vel[d], wp.vel[d] - w0.vel[d]);
                    }
                    // Hancock half-step: advance the face value by dt/2 using
                    // the cell's own flux difference (predictor).
                    let wl = Prim {
                        rho: w0.rho - 0.5 * s_rho,
                        vel: [
                            w0.vel[0] - 0.5 * s_v[0],
                            w0.vel[1] - 0.5 * s_v[1],
                            w0.vel[2] - 0.5 * s_v[2],
                        ],
                        p: w0.p - 0.5 * s_p,
                    };
                    let wr = Prim {
                        rho: w0.rho + 0.5 * s_rho,
                        vel: [
                            w0.vel[0] + 0.5 * s_v[0],
                            w0.vel[1] + 0.5 * s_v[1],
                            w0.vel[2] + 0.5 * s_v[2],
                        ],
                        p: w0.p + 0.5 * s_p,
                    };
                    let f_l = flux(wl, axis, gamma);
                    let f_r = flux(wr, axis, gamma);
                    let mut u = w0.to_cons(gamma);
                    u.add_scaled(&f_l, 0.5 * dtdx);
                    u.add_scaled(&f_r, -0.5 * dtdx);
                    let w_evolved = u.to_prim(gamma);
                    // Return the evolved state extrapolated to the requested face.
                    let sgn = side;
                    Prim {
                        rho: (w_evolved.rho + sgn * 0.5 * s_rho).max(1e-12),
                        vel: [
                            w_evolved.vel[0] + sgn * 0.5 * s_v[0],
                            w_evolved.vel[1] + sgn * 0.5 * s_v[1],
                            w_evolved.vel[2] + sgn * 0.5 * s_v[2],
                        ],
                        p: (w_evolved.p + sgn * 0.5 * s_p).max(1e-12),
                    }
                };

                let cell = (i, j, k);
                let upwind = shift(cell, -1);
                let left = reconstruct(upwind, 1.0); // right face of cell i-1
                let right = reconstruct(cell, -1.0); // left face of cell i
                riemann_flux(left, right, axis, gamma, solver)
            })
            .collect();

        // Conservative update: U_i += dt/dx (F_i − F_{i+1}).
        let n_i64 = n as i64;
        let face_at = |i: i64, j: i64, k: i64| -> &Cons {
            let ix = (((i.rem_euclid(n_i64)) * n_i64 + j.rem_euclid(n_i64)) * n_i64
                + k.rem_euclid(n_i64)) as usize;
            &faces[ix]
        };
        let mut new_cells = self.cells.clone();
        new_cells.par_iter_mut().enumerate().for_each(|(ix, u)| {
            let (i, j, k) = (
                (ix / (n * n)) as i64,
                ((ix / n) % n) as i64,
                (ix % n) as i64,
            );
            let (ip, jp, kp) = match axis {
                0 => (i + 1, j, k),
                1 => (i, j + 1, k),
                _ => (i, j, k + 1),
            };
            let f_in = face_at(i, j, k);
            let f_out = face_at(ip, jp, kp);
            u.add_scaled(f_in, dtdx);
            u.add_scaled(f_out, -dtdx);
        });
        self.cells = new_cells;
    }
}

/// Reference 1-D shock-tube solution support: run a 3-D grid that varies only
/// in x, returning the final x-profile of primitive states (used by tests and
/// the verification example).
pub fn sod_profile(n: usize, t_end: f64, solver: Riemann) -> Vec<Prim> {
    let gamma = 1.4;
    let mut g = HydroGrid::from_fn(n, gamma, |x| {
        if x[0] < 0.5 {
            Prim {
                rho: 1.0,
                vel: [0.0; 3],
                p: 1.0,
            }
        } else {
            Prim {
                rho: 0.125,
                vel: [0.0; 3],
                p: 0.1,
            }
        }
    });
    let mut t = 0.0;
    while t < t_end {
        let dt = g.max_dt(0.4).min(t_end - t);
        g.step(dt, solver);
        t += dt;
    }
    (0..n)
        .map(|i| g.cells[g.idx(i, 0, 0)].to_prim(gamma))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> HydroGrid {
        HydroGrid::from_fn(n, GAMMA_DEFAULT, |_| Prim {
            rho: 1.0,
            vel: [0.1, -0.2, 0.05],
            p: 2.5,
        })
    }

    #[test]
    fn prim_cons_roundtrip() {
        let w = Prim {
            rho: 1.3,
            vel: [0.4, -0.7, 2.2],
            p: 0.9,
        };
        let w2 = w.to_cons(1.4).to_prim(1.4);
        assert!((w.rho - w2.rho).abs() < 1e-12);
        assert!((w.p - w2.p).abs() < 1e-12);
        for d in 0..3 {
            assert!((w.vel[d] - w2.vel[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_flow_is_steady() {
        let mut g = uniform(8);
        let before = g.cells.clone();
        for _ in 0..5 {
            let dt = g.max_dt(0.4);
            g.step(dt, Riemann::Hllc);
        }
        for (a, b) in before.iter().zip(&g.cells) {
            assert!((a.rho - b.rho).abs() < 1e-10);
            assert!((a.e - b.e).abs() < 1e-9);
        }
    }

    #[test]
    fn conservation_under_evolution() {
        // Random-ish smooth initial condition: conserved quantities must hold.
        let mut g = HydroGrid::from_fn(8, GAMMA_DEFAULT, |x| Prim {
            rho: 1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0]).sin(),
            vel: [0.2 * (2.0 * std::f64::consts::PI * x[1]).cos(), 0.0, -0.1],
            p: 1.0 + 0.1 * (2.0 * std::f64::consts::PI * x[2]).sin(),
        });
        let m0 = g.total_mass();
        let e0 = g.total_energy();
        let p0 = g.total_momentum();
        for _ in 0..10 {
            let dt = g.max_dt(0.4);
            g.step(dt, Riemann::Hllc);
        }
        assert!((g.total_mass() - m0).abs() < 1e-12 * m0.abs().max(1.0));
        assert!((g.total_energy() - e0).abs() < 1e-11 * e0.abs().max(1.0));
        for (m, p) in g.total_momentum().into_iter().zip(p0) {
            assert!((m - p).abs() < 1e-11);
        }
    }

    #[test]
    fn sod_shock_tube_structure_hllc() {
        // At t = 0.1 (periodic domain, two mirrored tubes) the right-moving
        // shock/contact/rarefaction structure must appear: density decreasing
        // left-to-right across the fan, a plateau, and post-shock density
        // above the ambient right state.
        let prof = sod_profile(64, 0.1, Riemann::Hllc);
        // Left state preserved near x=0.25 is not guaranteed (periodic mirror),
        // but ordering of extreme densities is.
        let rho_max = prof.iter().map(|w| w.rho).fold(0.0f64, f64::max);
        let rho_min = prof.iter().map(|w| w.rho).fold(f64::INFINITY, f64::min);
        assert!(
            rho_max <= 1.0 + 1e-6,
            "density exceeded left state: {rho_max}"
        );
        assert!(
            rho_min >= 0.125 - 1e-6,
            "density fell below right state: {rho_min}"
        );
        // A genuine intermediate plateau exists (contact ~0.26, shock ~0.27).
        let mid = prof.iter().filter(|w| w.rho > 0.2 && w.rho < 0.5).count();
        assert!(mid > 4, "no intermediate states found ({mid})");
        // Velocity is positive in the expansion region (flow to the right).
        let vmax = prof.iter().map(|w| w.vel[0]).fold(0.0f64, f64::max);
        assert!(vmax > 0.5, "expected rightward flow, vmax = {vmax}");
    }

    #[test]
    fn hll_and_hllc_agree_roughly() {
        let a = sod_profile(32, 0.08, Riemann::Hll);
        let b = sod_profile(32, 0.08, Riemann::Hllc);
        let mut diff = 0.0;
        for (x, y) in a.iter().zip(&b) {
            diff += (x.rho - y.rho).abs();
        }
        diff /= a.len() as f64;
        assert!(diff < 0.05, "HLL vs HLLC mean density diff = {diff}");
    }

    #[test]
    fn hllc_sharper_contact_than_hll() {
        // HLLC restores the contact wave; its profile has steeper maximum
        // density gradient around the contact than HLL.
        let a = sod_profile(64, 0.1, Riemann::Hll);
        let b = sod_profile(64, 0.1, Riemann::Hllc);
        let max_grad = |p: &[Prim]| {
            p.windows(2)
                .map(|w| (w[1].rho - w[0].rho).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(max_grad(&b) >= max_grad(&a) * 0.95);
    }

    #[test]
    fn riemann_flux_consistency() {
        // Equal states → exact physical flux.
        let w = Prim {
            rho: 0.7,
            vel: [0.3, 0.1, -0.2],
            p: 1.1,
        };
        for solver in [Riemann::Hll, Riemann::Hllc] {
            for axis in 0..3 {
                let f = riemann_flux(w, w, axis, 1.4, solver);
                let fe = flux(w, axis, 1.4);
                assert!((f.rho - fe.rho).abs() < 1e-12);
                assert!((f.e - fe.e).abs() < 1e-12);
                for d in 0..3 {
                    assert!((f.mom[d] - fe.mom[d]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn supersonic_upwinding() {
        // Supersonic flow to the right: flux must equal the left flux.
        let l = Prim {
            rho: 1.0,
            vel: [10.0, 0.0, 0.0],
            p: 0.01,
        };
        let r = Prim {
            rho: 0.5,
            vel: [10.0, 0.0, 0.0],
            p: 0.01,
        };
        let f = riemann_flux(l, r, 0, 1.4, Riemann::Hllc);
        let fl = flux(l, 0, 1.4);
        assert!((f.rho - fl.rho).abs() < 1e-12);
    }

    #[test]
    fn minmod_limits() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(-3.0, -2.0), -2.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }
}
