//! Processor domain decomposition.
//!
//! "The computational space is decomposed among the available processors
//! using a mesh partitioning strategy based on the Peano-Hilbert cell
//! ordering." This module applies that strategy to a particle load: cut the
//! Hilbert key line into per-rank segments balanced by particle count, map
//! particles to ranks, and — as the simulation evolves — measure the two
//! quantities an MPI code lives or dies by: **load imbalance** and
//! **exchange volume** (particles whose rank changed since the cuts were
//! made). RAMSES re-balances when these degrade; `needs_rebalance`
//! implements the same trigger.

use crate::particles::Particles;
use crate::peano;

/// A rank assignment for a particle load.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Hilbert curve order used for keys.
    pub order: u32,
    /// Key upper bounds per rank (len = nranks).
    pub cuts: Vec<u64>,
    /// Rank of each particle at the time the cuts were made.
    pub rank_of: Vec<usize>,
}

impl Decomposition {
    /// Build balanced cuts for `nranks` from the current particle positions.
    pub fn build(parts: &Particles, nranks: usize, order: u32) -> Self {
        let keys: Vec<u64> = parts
            .pos
            .iter()
            .map(|&p| peano::key_of_point(p, order))
            .collect();
        let cuts = peano::domain_cuts(keys.clone(), nranks, order);
        let rank_of = keys.iter().map(|&k| peano::domain_of(k, &cuts)).collect();
        Decomposition {
            order,
            cuts,
            rank_of,
        }
    }

    pub fn nranks(&self) -> usize {
        self.cuts.len()
    }

    /// Particles per rank under the *current* positions.
    pub fn loads(&self, parts: &Particles) -> Vec<usize> {
        let mut loads = vec![0usize; self.nranks()];
        for &p in &parts.pos {
            let k = peano::key_of_point(p, self.order);
            loads[peano::domain_of(k, &self.cuts)] += 1;
        }
        loads
    }

    /// Load imbalance: max load / mean load (1.0 = perfect).
    pub fn imbalance(&self, parts: &Particles) -> f64 {
        let loads = self.loads(parts);
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = parts.len() as f64 / self.nranks() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Fraction of particles whose rank differs from the one recorded when
    /// the cuts were made — the particle-exchange volume of the next
    /// re-balance step.
    pub fn exchange_fraction(&self, parts: &Particles) -> f64 {
        assert_eq!(parts.len(), self.rank_of.len(), "particle count changed");
        let moved = parts
            .pos
            .iter()
            .zip(&self.rank_of)
            .filter(|(&p, &r0)| {
                let k = peano::key_of_point(p, self.order);
                peano::domain_of(k, &self.cuts) != r0
            })
            .count();
        moved as f64 / parts.len().max(1) as f64
    }

    /// RAMSES-style trigger: rebalance when imbalance exceeds `tol`
    /// (typically 1.1–1.5).
    pub fn needs_rebalance(&self, parts: &Particles, tol: f64) -> bool {
        self.imbalance(parts) > tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> Particles {
        let mut p = Particles::default();
        let mut id = 0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    p.push(
                        [
                            (i as f64 + 0.5) / n as f64,
                            (j as f64 + 0.5) / n as f64,
                            (k as f64 + 0.5) / n as f64,
                        ],
                        [0.0; 3],
                        1.0 / (n * n * n) as f64,
                        id,
                    );
                    id += 1;
                }
            }
        }
        p
    }

    #[test]
    fn fresh_decomposition_is_balanced() {
        let parts = lattice(8);
        for nranks in [2usize, 7, 11, 16] {
            let d = Decomposition::build(&parts, nranks, 6);
            let imb = d.imbalance(&parts);
            assert!(
                imb < 1.15,
                "{nranks} ranks: imbalance {imb} too high on a uniform lattice"
            );
            // All particles assigned, loads sum correctly.
            let loads = d.loads(&parts);
            assert_eq!(loads.iter().sum::<usize>(), parts.len());
            assert_eq!(d.exchange_fraction(&parts), 0.0);
        }
    }

    #[test]
    fn clustering_degrades_balance_and_triggers_rebalance() {
        let mut parts = lattice(8);
        let d = Decomposition::build(&parts, 8, 6);
        assert!(!d.needs_rebalance(&parts, 1.5));
        // Collapse half the particles into one corner octant.
        for i in 0..parts.len() / 2 {
            for c in parts.pos[i].iter_mut() {
                *c *= 0.25;
            }
        }
        assert!(
            d.imbalance(&parts) > 1.5,
            "imbalance {} after collapse",
            d.imbalance(&parts)
        );
        assert!(d.needs_rebalance(&parts, 1.5));
        assert!(d.exchange_fraction(&parts) > 0.1);
        // Rebuilding restores balance.
        let d2 = Decomposition::build(&parts, 8, 6);
        assert!(d2.imbalance(&parts) < 1.3);
    }

    #[test]
    fn single_rank_owns_everything() {
        let parts = lattice(4);
        let d = Decomposition::build(&parts, 1, 5);
        assert_eq!(d.loads(&parts), vec![parts.len()]);
        assert!((d.imbalance(&parts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evolving_simulation_keeps_modest_exchange_volume() {
        // A short real run: between consecutive steps the exchange volume
        // (fraction crossing rank boundaries) stays small — the property
        // that makes incremental Hilbert re-balancing cheap.
        let cosmo = grafic::CosmoParams {
            a_init: 0.1,
            ..grafic::CosmoParams::default()
        };
        let ics = grafic::generate_single_level(&cosmo, 8, 50.0, 77);
        let params = crate::nbody::RunParams {
            cosmo,
            box_mpc_h: 50.0,
            mesh_n: 8,
            a_end: 0.15,
            aout: vec![],
            max_steps: 10,
            ..crate::nbody::RunParams::default()
        };
        let mut sim = crate::nbody::Simulation::from_ics(params, &ics.particles);
        let d = Decomposition::build(&sim.parts, 11, 6);
        for _ in 0..5 {
            sim.advance_step();
        }
        let ex = d.exchange_fraction(&sim.parts);
        assert!(
            ex < 0.15,
            "exchange fraction {ex} over a few early steps should be small"
        );
    }
}
