//! GalaxyMaker: a semi-analytic galaxy-formation model over the merger tree.
//!
//! "GalaxyMaker applies a semi-analytical model to the results of TreeMaker
//! to form galaxies, and creates a catalog of galaxies."
//!
//! The model is the standard GALICS-family recipe set, reduced to its core
//! terms so every number is reproducible:
//!
//! * each halo receives a baryon budget `f_b · M_halo`;
//! * hot gas cools onto a disc on the halo dynamical time;
//! * cold gas forms stars at rate `ε · M_cold / t_dyn`;
//! * supernova feedback reheats cold gas proportionally to star formation;
//! * on mergers the descendant inherits stars and gas of all progenitors,
//!   and a major merger (mass ratio > 1:3) moves disc stars into a bulge.
//!
//! Integration walks the tree snapshot-by-snapshot, so a galaxy's history is
//! exactly its halo's merger history.

use crate::tree::MergerTree;

/// Semi-analytic model parameters.
#[derive(Debug, Clone, Copy)]
pub struct SamParams {
    /// Universal baryon fraction.
    pub f_baryon: f64,
    /// Star-formation efficiency per dynamical time.
    pub eps_sf: f64,
    /// Supernova reheating efficiency (mass reheated per mass of stars).
    pub eta_sn: f64,
    /// Cooling efficiency per dynamical time.
    pub eps_cool: f64,
    /// Major-merger threshold on progenitor mass ratio.
    pub major_ratio: f64,
    /// Dynamical time in units of the snapshot spacing (scales all rates).
    pub t_dyn: f64,
}

impl Default for SamParams {
    fn default() -> Self {
        SamParams {
            f_baryon: 0.16,
            eps_sf: 0.1,
            eta_sn: 0.5,
            eps_cool: 0.5,
            major_ratio: 1.0 / 3.0,
            t_dyn: 1.0,
        }
    }
}

/// One galaxy, attached to a tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Galaxy {
    /// Tree node this galaxy lives in.
    pub node: usize,
    /// Hot halo gas (code mass units).
    pub hot_gas: f64,
    /// Cold disc gas.
    pub cold_gas: f64,
    /// Disc stellar mass.
    pub stars_disc: f64,
    /// Bulge stellar mass (built by major mergers).
    pub stars_bulge: f64,
    /// Cumulative number of major mergers in this galaxy's history.
    pub major_mergers: u32,
}

impl Galaxy {
    pub fn stellar_mass(&self) -> f64 {
        self.stars_disc + self.stars_bulge
    }

    pub fn baryon_mass(&self) -> f64 {
        self.hot_gas + self.cold_gas + self.stellar_mass()
    }

    /// Bulge-to-total ratio — the morphology proxy.
    pub fn b_over_t(&self) -> f64 {
        let m = self.stellar_mass();
        if m > 0.0 {
            self.stars_bulge / m
        } else {
            0.0
        }
    }
}

/// The output catalog: one galaxy per tree node (indexed alike).
#[derive(Debug, Clone, Default)]
pub struct GalaxyCatalog {
    pub galaxies: Vec<Galaxy>,
}

impl GalaxyCatalog {
    /// Galaxies at the final snapshot (tree roots).
    pub fn at_roots(&self, tree: &MergerTree) -> Vec<Galaxy> {
        tree.roots().into_iter().map(|i| self.galaxies[i]).collect()
    }

    pub fn total_stellar_mass(&self) -> f64 {
        self.galaxies.iter().map(|g| g.stellar_mass()).sum()
    }

    /// Stellar mass function of the final (root) galaxies: counts per
    /// logarithmic mass bin — the observable a SAM is judged against.
    pub fn stellar_mass_function(&self, tree: &MergerTree, nbins: usize) -> Vec<(f64, usize)> {
        let masses: Vec<f64> = self
            .at_roots(tree)
            .into_iter()
            .map(|g| g.stellar_mass())
            .filter(|&m| m > 0.0)
            .collect();
        if masses.is_empty() || nbins == 0 {
            return vec![];
        }
        let lo = masses.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = masses.iter().cloned().fold(0.0f64, f64::max) * 1.0000001;
        let llo = lo.ln();
        let dln = (hi.ln() - llo).max(1e-12) / nbins as f64;
        let mut counts = vec![0usize; nbins];
        for m in &masses {
            let b = (((m.ln() - llo) / dln) as usize).min(nbins - 1);
            counts[b] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(b, c)| ((llo + (b as f64 + 0.5) * dln).exp(), c))
            .collect()
    }
}

/// Run GalaxyMaker over a merger forest.
pub fn galaxy_maker(tree: &MergerTree, p: &SamParams) -> GalaxyCatalog {
    let n = tree.nodes.len();
    let mut gals: Vec<Galaxy> = (0..n)
        .map(|i| Galaxy {
            node: i,
            hot_gas: 0.0,
            cold_gas: 0.0,
            stars_disc: 0.0,
            stars_bulge: 0.0,
            major_mergers: 0,
        })
        .collect();

    // Process nodes in snapshot order so progenitors are done first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| tree.nodes[i].snap);

    for &i in &order {
        let node = &tree.nodes[i];

        // 1. Inherit from progenitors.
        let mut g = gals[i];
        let progs = &node.progenitors;
        let mut inherited_halo_mass = 0.0;
        for &pidx in progs {
            let pg = gals[pidx];
            g.hot_gas += pg.hot_gas;
            g.cold_gas += pg.cold_gas;
            g.stars_disc += pg.stars_disc;
            g.stars_bulge += pg.stars_bulge;
            g.major_mergers = g.major_mergers.max(pg.major_mergers);
            inherited_halo_mass += tree.nodes[pidx].mass;
        }
        // Major merger: second progenitor within `major_ratio` of the first.
        if progs.len() >= 2 {
            let m0 = tree.nodes[progs[0]].mass;
            let m1 = tree.nodes[progs[1]].mass;
            if m0 > 0.0 && m1 / m0 >= p.major_ratio {
                g.stars_bulge += g.stars_disc;
                g.stars_disc = 0.0;
                g.major_mergers += 1;
            }
        }

        // 2. Fresh accretion: newly acquired halo mass brings hot baryons.
        let accreted = (node.mass - inherited_halo_mass).max(0.0);
        g.hot_gas += p.f_baryon * accreted;

        // 3. One snapshot-interval of internal evolution.
        let dt = 1.0; // rates are per snapshot spacing, scaled by t_dyn
        let cool = (p.eps_cool * dt / p.t_dyn).min(1.0) * g.hot_gas;
        g.hot_gas -= cool;
        g.cold_gas += cool;
        let sfr = (p.eps_sf * dt / p.t_dyn).min(1.0) * g.cold_gas;
        let reheat = (p.eta_sn * sfr).min(g.cold_gas - sfr);
        g.cold_gas -= sfr + reheat.max(0.0);
        g.stars_disc += sfr;
        g.hot_gas += reheat.max(0.0);

        gals[i] = g;
    }

    GalaxyCatalog { galaxies: gals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeNode;
    use std::collections::HashMap;

    /// Hand-build a forest: two progenitors at snap 0 merging at snap 1,
    /// then growing quietly at snap 2.
    fn forest(m0: f64, m1: f64, m_final: f64) -> MergerTree {
        let nodes = vec![
            TreeNode {
                snap: 0,
                halo: 0,
                mass: m0,
                descendant: Some(2),
                progenitors: vec![],
            },
            TreeNode {
                snap: 0,
                halo: 1,
                mass: m1,
                descendant: Some(2),
                progenitors: vec![],
            },
            TreeNode {
                snap: 1,
                halo: 0,
                mass: m0 + m1,
                descendant: Some(3),
                progenitors: vec![0, 1],
            },
            TreeNode {
                snap: 2,
                halo: 0,
                mass: m_final,
                descendant: None,
                progenitors: vec![2],
            },
        ];
        let mut index = HashMap::new();
        index.insert((0usize, 0u32), 0usize);
        index.insert((0, 1), 1);
        index.insert((1, 0), 2);
        index.insert((2, 0), 3);
        MergerTree { nodes, index }
    }

    #[test]
    fn baryons_track_halo_mass() {
        let p = SamParams::default();
        let tree = forest(0.6, 0.4, 1.2);
        let cat = galaxy_maker(&tree, &p);
        let g = cat.galaxies[3];
        // All accreted baryons: f_b · total accreted halo mass (0.6+0.4+0.2).
        let expect = p.f_baryon * 1.2;
        assert!(
            (g.baryon_mass() - expect).abs() < 1e-12,
            "baryons {} vs {expect}",
            g.baryon_mass()
        );
    }

    #[test]
    fn stars_form_monotonically() {
        let tree = forest(0.6, 0.4, 1.2);
        let cat = galaxy_maker(&tree, &SamParams::default());
        assert!(cat.galaxies[0].stellar_mass() > 0.0);
        assert!(cat.galaxies[3].stellar_mass() > cat.galaxies[2].stellar_mass());
    }

    #[test]
    fn equal_merger_builds_bulge() {
        let tree = forest(0.5, 0.5, 1.1);
        let cat = galaxy_maker(&tree, &SamParams::default());
        let g = cat.galaxies[2];
        assert!(g.stars_bulge > 0.0, "no bulge after 1:1 merger");
        assert_eq!(g.major_mergers, 1);
    }

    #[test]
    fn minor_merger_keeps_disc() {
        let tree = forest(0.9, 0.05, 1.0);
        let cat = galaxy_maker(&tree, &SamParams::default());
        let g = cat.galaxies[2];
        assert_eq!(g.stars_bulge, 0.0, "minor merger should not build a bulge");
        assert_eq!(g.major_mergers, 0);
    }

    #[test]
    fn no_negative_reservoirs() {
        let tree = forest(0.5, 0.5, 1.5);
        let cat = galaxy_maker(&tree, &SamParams::default());
        for g in &cat.galaxies {
            assert!(g.hot_gas >= 0.0);
            assert!(g.cold_gas >= 0.0);
            assert!(g.stars_disc >= 0.0);
            assert!(g.stars_bulge >= 0.0);
        }
    }

    #[test]
    fn roots_extraction() {
        let tree = forest(0.6, 0.4, 1.2);
        let cat = galaxy_maker(&tree, &SamParams::default());
        let finals = cat.at_roots(&tree);
        assert_eq!(finals.len(), 1);
        assert_eq!(finals[0].node, 3);
    }

    #[test]
    fn stellar_mass_function_counts_roots() {
        let tree = forest(0.6, 0.4, 1.2);
        let cat = galaxy_maker(&tree, &SamParams::default());
        let smf = cat.stellar_mass_function(&tree, 3);
        assert_eq!(smf.len(), 3);
        let total: usize = smf.iter().map(|(_, c)| c).sum();
        assert_eq!(total, tree.roots().len());
        for w in smf.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn feedback_suppresses_stars() {
        let tree = forest(0.6, 0.4, 1.2);
        let weak = galaxy_maker(
            &tree,
            &SamParams {
                eta_sn: 0.0,
                ..SamParams::default()
            },
        );
        let strong = galaxy_maker(
            &tree,
            &SamParams {
                eta_sn: 2.0,
                ..SamParams::default()
            },
        );
        assert!(
            strong.total_stellar_mass() < weak.total_stellar_mass(),
            "feedback did not reduce stellar mass"
        );
    }
}
