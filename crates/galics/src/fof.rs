//! Friends-of-friends percolation.
//!
//! Two particles are "friends" when their periodic separation is below the
//! linking length `b · n̄^{-1/3}` (b ≈ 0.2 of the mean inter-particle
//! spacing); halos are the transitive closures — exactly the high-density
//! peaks of the paper's Figure 2 that HaloMaker extracts.
//!
//! The implementation uses a linked-cell grid (cell size = linking length) so
//! the pair search is O(N) for roughly uniform loads, and a union–find with
//! path compression for the closure.

use ramses::particles::Particles;

/// FoF parameters.
#[derive(Debug, Clone, Copy)]
pub struct FofParams {
    /// Linking length in units of the mean inter-particle spacing.
    pub b: f64,
    /// Discard groups below this many particles.
    pub min_members: usize,
}

impl Default for FofParams {
    fn default() -> Self {
        FofParams {
            b: 0.2,
            min_members: 10,
        }
    }
}

/// Union–find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    pub fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }

    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Periodic squared distance in the unit box.
#[inline]
fn dist2_periodic(a: [f64; 3], b: [f64; 3]) -> f64 {
    let mut s = 0.0;
    for d in 0..3 {
        let mut dx = (a[d] - b[d]).abs();
        if dx > 0.5 {
            dx = 1.0 - dx;
        }
        s += dx * dx;
    }
    s
}

/// Run FoF on a particle set in the unit box. Returns the groups (lists of
/// particle indices), largest first, filtered by `min_members`.
///
/// ```
/// use galics::fof::{friends_of_friends, FofParams};
/// use ramses::particles::Particles;
/// let mut parts = Particles::default();
/// for i in 0..10u64 {
///     parts.push([0.5 + i as f64 * 1e-4, 0.5, 0.5], [0.0; 3], 0.1, i);
/// }
/// let groups = friends_of_friends(&parts, &FofParams { b: 0.2, min_members: 5 });
/// assert_eq!(groups.len(), 1);
/// assert_eq!(groups[0].len(), 10);
/// ```
pub fn friends_of_friends(parts: &Particles, params: &FofParams) -> Vec<Vec<u32>> {
    let n = parts.len();
    if n == 0 {
        return vec![];
    }
    // Linking length relative to mean spacing of THIS particle load.
    let mean_spacing = (1.0 / n as f64).cbrt();
    let ll = params.b * mean_spacing;
    let ll2 = ll * ll;

    // Linked-cell grid with cell edge ≥ ll so only 27 neighbour cells are
    // candidates. Cap the grid to keep memory sane for tiny lls.
    let ncell = ((1.0 / ll).floor() as usize).clamp(1, 128);
    let cell_of = |p: [f64; 3]| -> (usize, usize, usize) {
        let f = |x: f64| ((x * ncell as f64) as usize).min(ncell - 1);
        (f(p[0]), f(p[1]), f(p[2]))
    };
    let cidx = |c: (usize, usize, usize)| (c.0 * ncell + c.1) * ncell + c.2;

    let mut heads: Vec<i64> = vec![-1; ncell * ncell * ncell];
    let mut next: Vec<i64> = vec![-1; n];
    for (i, nx) in next.iter_mut().enumerate() {
        let c = cidx(cell_of(parts.pos[i]));
        *nx = heads[c];
        heads[c] = i as i64;
    }

    let mut uf = UnionFind::new(n);
    for i in 0..n {
        let (ci, cj, ck) = cell_of(parts.pos[i]);
        for di in -1i64..=1 {
            for dj in -1i64..=1 {
                for dk in -1i64..=1 {
                    let nb = (
                        (ci as i64 + di).rem_euclid(ncell as i64) as usize,
                        (cj as i64 + dj).rem_euclid(ncell as i64) as usize,
                        (ck as i64 + dk).rem_euclid(ncell as i64) as usize,
                    );
                    let mut j = heads[cidx(nb)];
                    while j >= 0 {
                        let ju = j as usize;
                        if ju > i && dist2_periodic(parts.pos[i], parts.pos[ju]) <= ll2 {
                            uf.union(i as u32, j as u32);
                        }
                        j = next[ju];
                    }
                }
            }
        }
    }

    // Collect groups.
    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for i in 0..n as u32 {
        groups.entry(uf.find(i)).or_default().push(i);
    }
    let mut out: Vec<Vec<u32>> = groups
        .into_values()
        .filter(|g| g.len() >= params.min_members)
        .collect();
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts_from(pos: &[[f64; 3]]) -> Particles {
        let mut p = Particles::default();
        for (i, &x) in pos.iter().enumerate() {
            p.push(x, [0.0; 3], 1.0 / pos.len() as f64, i as u64);
        }
        p
    }

    /// Build a tight clump of `k` points around `c` with spacing `eps`.
    fn clump(c: [f64; 3], k: usize, eps: f64) -> Vec<[f64; 3]> {
        (0..k)
            .map(|i| {
                let f = i as f64;
                [
                    (c[0] + eps * (f * 0.17).sin() * 0.5).rem_euclid(1.0),
                    (c[1] + eps * (f * 0.31).cos() * 0.5).rem_euclid(1.0),
                    (c[2] + eps * (f * 0.53).sin() * 0.5).rem_euclid(1.0),
                ]
            })
            .collect()
    }

    #[test]
    fn two_separated_clumps_give_two_groups() {
        let mut pos = clump([0.2, 0.2, 0.2], 20, 0.001);
        pos.extend(clump([0.8, 0.8, 0.8], 15, 0.001));
        let parts = parts_from(&pos);
        let groups = friends_of_friends(
            &parts,
            &FofParams {
                b: 0.2,
                min_members: 5,
            },
        );
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 20);
        assert_eq!(groups[1].len(), 15);
    }

    #[test]
    fn min_members_filters_field_particles() {
        let mut pos = clump([0.5, 0.5, 0.5], 30, 0.001);
        // isolated singles
        pos.push([0.1, 0.9, 0.3]);
        pos.push([0.9, 0.1, 0.7]);
        let parts = parts_from(&pos);
        let groups = friends_of_friends(&parts, &FofParams::default());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 30);
    }

    #[test]
    fn group_links_across_periodic_boundary() {
        // A clump straddling the box corner must come out whole.
        let pos: Vec<[f64; 3]> = (0..20)
            .map(|i| {
                let f = i as f64 * 0.0004;
                [
                    (0.999 + f).rem_euclid(1.0),
                    (0.999 + f * 0.5).rem_euclid(1.0),
                    (0.001 - f * 0.3).rem_euclid(1.0),
                ]
            })
            .collect();
        let parts = parts_from(&pos);
        let groups = friends_of_friends(
            &parts,
            &FofParams {
                b: 0.3,
                min_members: 5,
            },
        );
        assert_eq!(groups.len(), 1, "clump split across boundary");
        assert_eq!(groups[0].len(), 20);
    }

    #[test]
    fn groups_partition_no_particle_twice() {
        let mut pos = clump([0.3, 0.3, 0.3], 25, 0.002);
        pos.extend(clump([0.7, 0.7, 0.7], 25, 0.002));
        let parts = parts_from(&pos);
        let groups = friends_of_friends(
            &parts,
            &FofParams {
                b: 0.2,
                min_members: 1,
            },
        );
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for &i in g {
                assert!(seen.insert(i), "particle {i} in two groups");
            }
        }
        assert_eq!(seen.len(), parts.len());
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        uf.union(1, 3);
        assert!(uf.same(0, 4));
    }

    #[test]
    fn linking_length_controls_percolation() {
        // A line of points with spacing s percolates iff ll >= s.
        let npt = 20;
        let s = 0.01;
        let pos: Vec<[f64; 3]> = (0..npt).map(|i| [0.1 + i as f64 * s, 0.5, 0.5]).collect();
        let parts = parts_from(&pos);
        let mean_spacing = (1.0 / npt as f64).cbrt();
        // b just above s/mean_spacing links the chain.
        let b_hi = s / mean_spacing * 1.05;
        let b_lo = s / mean_spacing * 0.95;
        let g_hi = friends_of_friends(
            &parts,
            &FofParams {
                b: b_hi,
                min_members: 1,
            },
        );
        let g_lo = friends_of_friends(
            &parts,
            &FofParams {
                b: b_lo,
                min_members: 1,
            },
        );
        assert_eq!(g_hi.len(), 1);
        assert_eq!(g_lo.len(), npt);
    }
}
