//! HaloMaker: from a snapshot to a halo catalog.
//!
//! "HaloMaker detects dark matter halos present in RAMSES output files, and
//! creates a catalog of halos" — each entry carries position, mass and
//! velocity, exactly the fields the zoom step needs to pick its re-simulation
//! centres.

use crate::fof::{friends_of_friends, FofParams};
use ramses::nbody::Snapshot;

/// One dark-matter halo.
#[derive(Debug, Clone, PartialEq)]
pub struct Halo {
    /// Catalog index within its snapshot.
    pub id: u32,
    /// Mass in code units (fraction of box mass).
    pub mass: f64,
    /// Mass in M☉/h.
    pub mass_msun: f64,
    /// Centre of mass, unit-box coordinates.
    pub pos: [f64; 3],
    /// Mass-weighted mean velocity, code units.
    pub vel: [f64; 3],
    /// Number of member particles.
    pub npart: usize,
    /// Virial-ish radius: RMS distance of members from the centre (box units).
    pub radius: f64,
    /// One-dimensional velocity dispersion, code units (mass-weighted RMS
    /// of velocity residuals about the halo mean, divided by √3).
    pub sigma_v: f64,
    /// Dimensionless spin parameter λ' = j / (√2 V R) (Bullock et al. 2001
    /// form, with V² = M/R in code units).
    pub spin: f64,
    /// Member particle ids (used by TreeMaker to follow halos through time).
    pub members: Vec<u64>,
}

/// The catalog for one snapshot.
#[derive(Debug, Clone)]
pub struct HaloCatalog {
    /// Expansion factor of the parent snapshot.
    pub a: f64,
    pub halos: Vec<Halo>,
}

impl HaloCatalog {
    pub fn len(&self) -> usize {
        self.halos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.halos.is_empty()
    }

    /// Total mass locked in halos (code units).
    pub fn mass_in_halos(&self) -> f64 {
        self.halos.iter().map(|h| h.mass).sum()
    }

    /// Differential halo mass function: counts per logarithmic mass bin.
    /// Returns `(bin centre in M☉/h, count)` rows for `nbins` bins spanning
    /// the catalog's mass range — the standard summary statistic a
    /// cosmologist extracts from HaloMaker output.
    pub fn mass_function(&self, nbins: usize) -> Vec<(f64, usize)> {
        if self.halos.is_empty() || nbins == 0 {
            return vec![];
        }
        let lo = self
            .halos
            .iter()
            .map(|h| h.mass_msun)
            .fold(f64::INFINITY, f64::min)
            .max(1.0);
        let hi = self
            .halos
            .iter()
            .map(|h| h.mass_msun)
            .fold(0.0f64, f64::max)
            * 1.0000001;
        let llo = lo.ln();
        let dln = (hi.ln() - llo).max(1e-12) / nbins as f64;
        let mut counts = vec![0usize; nbins];
        for h in &self.halos {
            let b = (((h.mass_msun.ln() - llo) / dln) as usize).min(nbins - 1);
            counts[b] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(b, c)| ((llo + (b as f64 + 0.5) * dln).exp(), c))
            .collect()
    }

    /// The `count` most massive halos — the zoom campaign's target list.
    pub fn most_massive(&self, count: usize) -> Vec<&Halo> {
        let mut v: Vec<&Halo> = self.halos.iter().collect();
        v.sort_by(|a, b| b.mass.partial_cmp(&a.mass).unwrap());
        v.truncate(count);
        v
    }
}

/// Periodic-aware centre of mass: average offsets relative to the first
/// member to avoid smearing across the box boundary.
fn periodic_com(pos: &[[f64; 3]], mass: &[f64]) -> [f64; 3] {
    let anchor = pos[0];
    let mut acc = [0.0f64; 3];
    let mut mtot = 0.0;
    for (p, &m) in pos.iter().zip(mass) {
        for d in 0..3 {
            let mut dx = p[d] - anchor[d];
            if dx > 0.5 {
                dx -= 1.0;
            }
            if dx < -0.5 {
                dx += 1.0;
            }
            acc[d] += m * dx;
        }
        mtot += m;
    }
    let mut c = [0.0f64; 3];
    for d in 0..3 {
        c[d] = (anchor[d] + acc[d] / mtot).rem_euclid(1.0);
    }
    c
}

/// Run HaloMaker on a snapshot.
pub fn halo_maker(snap: &Snapshot, params: &FofParams) -> HaloCatalog {
    let parts = &snap.particles;
    let groups = friends_of_friends(parts, params);
    let mut halos = Vec::with_capacity(groups.len());
    for (id, g) in groups.iter().enumerate() {
        let pos: Vec<[f64; 3]> = g.iter().map(|&i| parts.pos[i as usize]).collect();
        let mass: Vec<f64> = g.iter().map(|&i| parts.mass[i as usize]).collect();
        let mtot: f64 = mass.iter().sum();
        let com = periodic_com(&pos, &mass);

        let mut vel = [0.0f64; 3];
        for &i in g {
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                vel[d] += parts.mass[i as usize] * parts.vel[i as usize][d];
            }
        }
        for v in vel.iter_mut() {
            *v /= mtot;
        }

        let mut r2 = 0.0;
        for (p, &m) in pos.iter().zip(&mass) {
            let mut s = 0.0;
            for d in 0..3 {
                let mut dx = (p[d] - com[d]).abs();
                if dx > 0.5 {
                    dx = 1.0 - dx;
                }
                s += dx * dx;
            }
            r2 += m * s;
        }
        let radius = (r2 / mtot).sqrt();

        // Velocity dispersion about the bulk motion.
        let mut v2 = 0.0;
        for &i in g {
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                let dv = parts.vel[i as usize][d] - vel[d];
                v2 += parts.mass[i as usize] * dv * dv;
            }
        }
        let sigma_v = (v2 / mtot / 3.0).sqrt();

        // Specific angular momentum about the centre (periodic offsets).
        let mut j_vec = [0.0f64; 3];
        for &i in g {
            let iu = i as usize;
            let mut dx = [0.0f64; 3];
            for d in 0..3 {
                let mut o = parts.pos[iu][d] - com[d];
                if o > 0.5 {
                    o -= 1.0;
                }
                if o < -0.5 {
                    o += 1.0;
                }
                dx[d] = o;
            }
            let dv = [
                parts.vel[iu][0] - vel[0],
                parts.vel[iu][1] - vel[1],
                parts.vel[iu][2] - vel[2],
            ];
            j_vec[0] += parts.mass[iu] * (dx[1] * dv[2] - dx[2] * dv[1]);
            j_vec[1] += parts.mass[iu] * (dx[2] * dv[0] - dx[0] * dv[2]);
            j_vec[2] += parts.mass[iu] * (dx[0] * dv[1] - dx[1] * dv[0]);
        }
        let j_spec =
            (j_vec[0] * j_vec[0] + j_vec[1] * j_vec[1] + j_vec[2] * j_vec[2]).sqrt() / mtot;
        let spin = if radius > 0.0 && mtot > 0.0 {
            let v_circ = (mtot / radius).sqrt();
            j_spec / (std::f64::consts::SQRT_2 * v_circ * radius)
        } else {
            0.0
        };

        halos.push(Halo {
            id: id as u32,
            mass: mtot,
            mass_msun: snap.units.mass_msun_h(mtot),
            pos: com,
            vel,
            npart: g.len(),
            radius,
            sigma_v,
            spin,
            members: g.iter().map(|&i| parts.id[i as usize]).collect(),
        });
    }
    HaloCatalog { a: snap.a, halos }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramses::particles::Particles;
    use ramses::units::Units;

    fn snap_with_clumps() -> Snapshot {
        let mut p = Particles::default();
        let mut id = 0u64;
        // Big clump near the boundary corner (tests periodic COM).
        for i in 0..40 {
            let f = i as f64 * 0.0005;
            p.push(
                [
                    (0.998 + f).rem_euclid(1.0),
                    (0.002 - f * 0.7).rem_euclid(1.0),
                    0.5,
                ],
                [1.0, 0.0, 0.0],
                0.002,
                id,
            );
            id += 1;
        }
        // Smaller clump mid-box.
        for i in 0..20 {
            let f = i as f64 * 0.0005;
            p.push([0.4 + f, 0.4, 0.4], [0.0, -2.0, 0.0], 0.001, id);
            id += 1;
        }
        Snapshot {
            a: 0.5,
            t: 0.3,
            step: 10,
            particles: p,
            units: Units::new(100.0, 0.71, 0.27),
        }
    }

    #[test]
    fn catalog_finds_both_halos_ordered_by_size() {
        let cat = halo_maker(&snap_with_clumps(), &FofParams::default());
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.halos[0].npart, 40);
        assert_eq!(cat.halos[1].npart, 20);
        assert!(cat.halos[0].mass > cat.halos[1].mass);
    }

    #[test]
    fn periodic_com_lands_on_the_corner() {
        let cat = halo_maker(&snap_with_clumps(), &FofParams::default());
        let h = &cat.halos[0];
        // Centre must be near (0, 0, 0.5) modulo the box, not near (0.5, ...).
        let dx = h.pos[0].min(1.0 - h.pos[0]);
        let dy = h.pos[1].min(1.0 - h.pos[1]);
        assert!(dx < 0.02, "x COM smeared: {}", h.pos[0]);
        assert!(dy < 0.02, "y COM smeared: {}", h.pos[1]);
        assert!((h.pos[2] - 0.5).abs() < 0.02);
    }

    #[test]
    fn halo_velocity_is_mass_weighted_mean() {
        let cat = halo_maker(&snap_with_clumps(), &FofParams::default());
        assert!((cat.halos[0].vel[0] - 1.0).abs() < 1e-9);
        assert!((cat.halos[1].vel[1] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn members_carry_particle_ids() {
        let cat = halo_maker(&snap_with_clumps(), &FofParams::default());
        let all: std::collections::HashSet<u64> = cat
            .halos
            .iter()
            .flat_map(|h| h.members.iter().copied())
            .collect();
        assert_eq!(all.len(), 60);
        assert!(all.contains(&0) && all.contains(&59));
    }

    #[test]
    fn most_massive_sorted_and_truncated() {
        let cat = halo_maker(&snap_with_clumps(), &FofParams::default());
        let top = cat.most_massive(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].npart, 40);
    }

    #[test]
    fn mass_msun_uses_units() {
        let cat = halo_maker(&snap_with_clumps(), &FofParams::default());
        let h = &cat.halos[0];
        let expect = Units::new(100.0, 0.71, 0.27).mass_msun_h(h.mass);
        assert!((h.mass_msun - expect).abs() < 1e-3 * expect);
    }

    #[test]
    fn sigma_v_zero_for_comoving_halo() {
        // All members share one velocity → no dispersion.
        let cat = halo_maker(&snap_with_clumps(), &FofParams::default());
        assert!(
            cat.halos[0].sigma_v < 1e-9,
            "sigma {}",
            cat.halos[0].sigma_v
        );
    }

    #[test]
    fn spin_positive_for_rotating_halo() {
        // Build a disc of particles rotating about z.
        let mut p = Particles::default();
        for i in 0..32 {
            let th = i as f64 / 32.0 * std::f64::consts::TAU;
            let r = 0.004;
            p.push(
                [0.5 + r * th.cos(), 0.5 + r * th.sin(), 0.5],
                [-th.sin(), th.cos(), 0.0],
                0.01,
                i,
            );
        }
        let snap = Snapshot {
            a: 0.5,
            t: 0.3,
            step: 0,
            particles: p,
            units: Units::new(100.0, 0.71, 0.27),
        };
        let cat = halo_maker(
            &snap,
            &FofParams {
                b: 0.5,
                min_members: 5,
            },
        );
        assert_eq!(cat.len(), 1);
        assert!(cat.halos[0].spin > 0.0);
        assert!(cat.halos[0].sigma_v > 0.0);
    }

    #[test]
    fn mass_function_counts_all_halos() {
        let cat = halo_maker(&snap_with_clumps(), &FofParams::default());
        let mf = cat.mass_function(4);
        assert_eq!(mf.len(), 4);
        let total: usize = mf.iter().map(|(_, c)| c).sum();
        assert_eq!(total, cat.len());
        // Bin centres ascend.
        for w in mf.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn mass_function_empty_catalog() {
        let snap = Snapshot {
            a: 0.5,
            t: 0.3,
            step: 0,
            particles: Particles::default(),
            units: Units::new(100.0, 0.71, 0.27),
        };
        let cat = halo_maker(&snap, &FofParams::default());
        assert!(cat.mass_function(5).is_empty());
    }

    #[test]
    fn empty_snapshot_yields_empty_catalog() {
        let snap = Snapshot {
            a: 0.5,
            t: 0.3,
            step: 0,
            particles: Particles::default(),
            units: Units::new(100.0, 0.71, 0.27),
        };
        let cat = halo_maker(&snap, &FofParams::default());
        assert!(cat.is_empty());
    }
}
