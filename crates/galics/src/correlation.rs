//! Two-point correlation function ξ(r).
//!
//! The standard clustering statistic a cosmologist computes from a snapshot
//! or a halo/galaxy catalog: the excess probability over Poisson of finding
//! a pair at separation `r`. Estimated with the natural estimator
//! `ξ(r) = DD(r) / RR(r) − 1`, where `RR` is the analytic expectation for a
//! uniform distribution in the periodic unit box (exact — no random catalog
//! needed with periodic boundaries).

use rayon::prelude::*;

/// Binned ξ estimate: `(r centre, xi, pair count)` rows.
#[derive(Debug, Clone)]
pub struct XiEstimate {
    pub bins: Vec<(f64, f64, u64)>,
}

impl XiEstimate {
    /// ξ interpolated at `r` (nearest populated bin).
    pub fn at(&self, r: f64) -> Option<f64> {
        self.bins
            .iter()
            .filter(|(_, _, n)| *n > 0)
            .min_by(|a, b| (a.0 - r).abs().partial_cmp(&(b.0 - r).abs()).unwrap())
            .map(|(_, xi, _)| *xi)
    }
}

#[inline]
fn dist2_periodic(a: [f64; 3], b: [f64; 3]) -> f64 {
    let mut s = 0.0;
    for d in 0..3 {
        let mut dx = (a[d] - b[d]).abs();
        if dx > 0.5 {
            dx = 1.0 - dx;
        }
        s += dx * dx;
    }
    s
}

/// Compute ξ(r) for points in the periodic unit box, with `nbins` linear
/// bins between `r_min` and `r_max` (`r_max ≤ 0.5`). Exact pair counting —
/// O(N²/2), parallelised over the outer loop; fine for the ≤10⁵-point
/// catalogs this pipeline produces.
pub fn xi(points: &[[f64; 3]], r_min: f64, r_max: f64, nbins: usize) -> XiEstimate {
    assert!(r_max <= 0.5, "periodic box limits separations to 0.5");
    assert!(r_min >= 0.0 && r_min < r_max && nbins > 0);
    let n = points.len();
    let dr = (r_max - r_min) / nbins as f64;
    let r_min2 = r_min * r_min;
    let r_max2 = r_max * r_max;

    // Parallel DD histogram.
    let counts = (0..n)
        .into_par_iter()
        .fold(
            || vec![0u64; nbins],
            |mut acc, i| {
                for j in (i + 1)..n {
                    let d2 = dist2_periodic(points[i], points[j]);
                    if d2 < r_min2 || d2 >= r_max2 {
                        continue;
                    }
                    let b = (((d2.sqrt() - r_min) / dr) as usize).min(nbins - 1);
                    acc[b] += 1;
                }
                acc
            },
        )
        .reduce(
            || vec![0u64; nbins],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );

    // Analytic RR for the periodic unit box: the expected number of pairs in
    // a shell is N(N−1)/2 · V_shell (box volume is 1; shells with r ≤ 0.5
    // never wrap).
    let npairs = (n as f64) * (n as f64 - 1.0) / 2.0;
    let bins = (0..nbins)
        .map(|b| {
            let r0 = r_min + b as f64 * dr;
            let r1 = r0 + dr;
            let rc = 0.5 * (r0 + r1);
            let v_shell = 4.0 / 3.0 * std::f64::consts::PI * (r1.powi(3) - r0.powi(3));
            let rr = npairs * v_shell;
            let xi = if rr > 0.0 {
                counts[b] as f64 / rr - 1.0
            } else {
                0.0
            };
            (rc, xi, counts[b])
        })
        .collect();
    XiEstimate { bins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn uniform_points(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| [rng.random(), rng.random(), rng.random()])
            .collect()
    }

    #[test]
    fn uniform_points_have_zero_xi() {
        let pts = uniform_points(2000, 3);
        let est = xi(&pts, 0.05, 0.3, 5);
        for (r, v, c) in &est.bins {
            assert!(*c > 100, "bin at {r} underpopulated");
            assert!(
                v.abs() < 0.1,
                "xi({r}) = {v} should be ~0 for Poisson points"
            );
        }
    }

    #[test]
    fn clustered_points_have_positive_xi_at_small_r() {
        // Clumps of 20 points each: strong small-scale clustering.
        let mut rng = StdRng::seed_from_u64(7);
        let mut pts = Vec::new();
        for _ in 0..40 {
            let c: [f64; 3] = [rng.random(), rng.random(), rng.random()];
            for _ in 0..20 {
                pts.push([
                    (c[0] + 0.01 * (rng.random::<f64>() - 0.5)).rem_euclid(1.0),
                    (c[1] + 0.01 * (rng.random::<f64>() - 0.5)).rem_euclid(1.0),
                    (c[2] + 0.01 * (rng.random::<f64>() - 0.5)).rem_euclid(1.0),
                ]);
            }
        }
        let est = xi(&pts, 0.001, 0.1, 10);
        let small_r = est.bins[0].1;
        let large_r = est.bins.last().unwrap().1;
        assert!(small_r > 10.0, "expected strong clustering, xi = {small_r}");
        assert!(small_r > large_r, "xi must decrease with r");
    }

    #[test]
    fn xi_is_symmetric_under_shuffle() {
        let mut pts = uniform_points(500, 1);
        let a = xi(&pts, 0.05, 0.25, 4);
        pts.reverse();
        let b = xi(&pts, 0.05, 0.25, 4);
        for (x, y) in a.bins.iter().zip(&b.bins) {
            assert_eq!(x.2, y.2, "pair counts must not depend on order");
        }
    }

    #[test]
    fn at_returns_nearest_populated_bin() {
        let est = XiEstimate {
            bins: vec![(0.1, 5.0, 10), (0.2, 2.0, 0), (0.3, 1.0, 8)],
        };
        assert_eq!(est.at(0.12), Some(5.0));
        assert_eq!(est.at(0.21), Some(1.0)); // skips the empty bin
    }

    #[test]
    #[should_panic(expected = "periodic box")]
    fn r_max_beyond_half_box_rejected() {
        xi(&uniform_points(10, 1), 0.0, 0.7, 3);
    }
}
