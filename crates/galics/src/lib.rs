//! # galics — post-processing chain for RAMSES snapshots
//!
//! The paper's Section 3: "These files need post-processing with GALICS
//! softwares: HaloMaker, TreeMaker and GalaxyMaker. These three softwares are
//! meant to be used sequentially, each of them producing different kinds of
//! information."
//!
//! * [`fof`] + [`halo`] — **HaloMaker**: detect dark-matter halos in a
//!   snapshot with a friends-of-friends percolation and produce a catalog of
//!   halo positions, masses and velocities (the input of the zoom step).
//! * [`tree`] — **TreeMaker**: link halos across snapshots into merger trees
//!   by following their particle content through cosmic time.
//! * [`correlation`] — the two-point correlation function ξ(r), the standard
//!   clustering statistic computed from snapshots and catalogs.
//! * [`galaxy`] — **GalaxyMaker**: apply a semi-analytic model on top of the
//!   merger trees to form galaxies and emit a galaxy catalog.

pub mod correlation;
pub mod fof;
pub mod galaxy;
pub mod halo;
pub mod tree;

pub use correlation::{xi, XiEstimate};
pub use fof::FofParams;
pub use galaxy::{Galaxy, GalaxyCatalog, SamParams};
pub use halo::{Halo, HaloCatalog};
pub use tree::{MergerTree, TreeNode};

use ramses::nbody::Snapshot;

/// Run the full chain on a time-ordered series of snapshots:
/// HaloMaker on each, TreeMaker across them, GalaxyMaker on the trees.
pub fn run_pipeline(
    snaps: &[Snapshot],
    fof: &FofParams,
    sam: &SamParams,
) -> (Vec<HaloCatalog>, MergerTree, GalaxyCatalog) {
    let catalogs: Vec<HaloCatalog> = snaps.iter().map(|s| halo::halo_maker(s, fof)).collect();
    let tree = tree::tree_maker(snaps, &catalogs);
    let galaxies = galaxy::galaxy_maker(&tree, sam);
    (catalogs, tree, galaxies)
}
