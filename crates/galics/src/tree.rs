//! TreeMaker: merger trees across snapshots.
//!
//! "Given the catalog of halos, TreeMaker builds a merger tree: it follows
//! the position, the mass, the velocity of the different particles present
//! in the halos through cosmic time."
//!
//! Linking rule: halo B at snapshot i+1 is a *descendant* of halo A at
//! snapshot i when B inherits the plurality of A's particles (by id). A halo
//! with several progenitors records a merger; the most massive progenitor is
//! the "main" branch.

use crate::halo::HaloCatalog;
use ramses::nbody::Snapshot;
use std::collections::HashMap;

/// A node of the forest: one halo at one snapshot.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// (snapshot index, halo id within that snapshot's catalog).
    pub snap: usize,
    pub halo: u32,
    /// Mass (code units) copied from the catalog for convenience.
    pub mass: f64,
    /// Descendant node index, if any.
    pub descendant: Option<usize>,
    /// Progenitor node indices, most massive first.
    pub progenitors: Vec<usize>,
}

/// The merger forest over a snapshot series.
#[derive(Debug, Clone, Default)]
pub struct MergerTree {
    pub nodes: Vec<TreeNode>,
    /// Node index by (snap, halo id).
    pub index: HashMap<(usize, u32), usize>,
}

impl MergerTree {
    /// Roots: nodes with no descendant (the z = final halos).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].descendant.is_none())
            .collect()
    }

    /// Number of merger events (nodes with ≥ 2 progenitors).
    pub fn merger_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.progenitors.len() >= 2)
            .count()
    }

    /// Walk the main branch (most massive progenitor chain) from a node back
    /// in time; returns node indices including the start.
    pub fn main_branch(&self, start: usize) -> Vec<usize> {
        let mut out = vec![start];
        let mut cur = start;
        while let Some(&p) = self.nodes[cur].progenitors.first() {
            out.push(p);
            cur = p;
        }
        out
    }
}

/// Build the forest. `snaps` and `catalogs` must be parallel arrays ordered
/// by increasing expansion factor.
pub fn tree_maker(snaps: &[Snapshot], catalogs: &[HaloCatalog]) -> MergerTree {
    assert_eq!(snaps.len(), catalogs.len());
    let mut tree = MergerTree::default();

    // Create all nodes.
    for (s, cat) in catalogs.iter().enumerate() {
        for h in &cat.halos {
            let idx = tree.nodes.len();
            tree.index.insert((s, h.id), idx);
            tree.nodes.push(TreeNode {
                snap: s,
                halo: h.id,
                mass: h.mass,
                descendant: None,
                progenitors: Vec::new(),
            });
        }
    }

    // Link consecutive snapshots by particle-id plurality.
    for s in 0..catalogs.len().saturating_sub(1) {
        // Map particle id -> halo id at snapshot s+1.
        let mut owner: HashMap<u64, u32> = HashMap::new();
        for h in &catalogs[s + 1].halos {
            for &pid in &h.members {
                owner.insert(pid, h.id);
            }
        }
        for h in &catalogs[s].halos {
            // Count votes.
            let mut votes: HashMap<u32, usize> = HashMap::new();
            for pid in &h.members {
                if let Some(&dest) = owner.get(pid) {
                    *votes.entry(dest).or_insert(0) += 1;
                }
            }
            if let Some((&dest, _)) = votes.iter().max_by_key(|(id, &c)| (c, u32::MAX - **id)) {
                let src_idx = tree.index[&(s, h.id)];
                let dst_idx = tree.index[&(s + 1, dest)];
                tree.nodes[src_idx].descendant = Some(dst_idx);
                tree.nodes[dst_idx].progenitors.push(src_idx);
            }
        }
    }

    // Sort progenitor lists by mass, heaviest first.
    let masses: Vec<f64> = tree.nodes.iter().map(|n| n.mass).collect();
    for n in tree.nodes.iter_mut() {
        n.progenitors
            .sort_by(|&a, &b| masses[b].partial_cmp(&masses[a]).unwrap());
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::Halo;
    use ramses::particles::Particles;
    use ramses::units::Units;

    fn fake_snap(a: f64) -> Snapshot {
        Snapshot {
            a,
            t: a,
            step: 0,
            particles: Particles::default(),
            units: Units::new(100.0, 0.71, 0.27),
        }
    }

    fn halo(id: u32, mass: f64, members: Vec<u64>) -> Halo {
        Halo {
            id,
            mass,
            mass_msun: mass * 1e15,
            pos: [0.5; 3],
            vel: [0.0; 3],
            npart: members.len(),
            radius: 0.01,
            sigma_v: 0.0,
            spin: 0.0,
            members,
        }
    }

    /// Scenario: at s0 halos A{0..9} and B{10..19}; at s1 they merge into C.
    fn merger_scenario() -> (Vec<Snapshot>, Vec<HaloCatalog>) {
        let c0 = HaloCatalog {
            a: 0.5,
            halos: vec![
                halo(0, 0.6, (0..10).collect()),
                halo(1, 0.4, (10..20).collect()),
            ],
        };
        let c1 = HaloCatalog {
            a: 0.8,
            halos: vec![halo(0, 1.0, (0..20).collect())],
        };
        (vec![fake_snap(0.5), fake_snap(0.8)], vec![c0, c1])
    }

    #[test]
    fn merger_recorded_with_two_progenitors() {
        let (snaps, cats) = merger_scenario();
        let tree = tree_maker(&snaps, &cats);
        assert_eq!(tree.nodes.len(), 3);
        assert_eq!(tree.merger_count(), 1);
        let c = tree.index[&(1, 0)];
        assert_eq!(tree.nodes[c].progenitors.len(), 2);
        // Heaviest progenitor first.
        let p0 = tree.nodes[c].progenitors[0];
        assert_eq!(tree.nodes[p0].halo, 0);
    }

    #[test]
    fn descendants_point_forward() {
        let (snaps, cats) = merger_scenario();
        let tree = tree_maker(&snaps, &cats);
        let a = tree.index[&(0, 0)];
        let b = tree.index[&(0, 1)];
        let c = tree.index[&(1, 0)];
        assert_eq!(tree.nodes[a].descendant, Some(c));
        assert_eq!(tree.nodes[b].descendant, Some(c));
        assert_eq!(tree.nodes[c].descendant, None);
    }

    #[test]
    fn main_branch_follows_heaviest() {
        let (snaps, cats) = merger_scenario();
        let tree = tree_maker(&snaps, &cats);
        let c = tree.index[&(1, 0)];
        let branch = tree.main_branch(c);
        assert_eq!(branch.len(), 2);
        assert_eq!(tree.nodes[branch[1]].halo, 0); // the 0.6-mass one
    }

    #[test]
    fn fragmentation_links_to_plurality() {
        // One halo splits: 7 particles to X, 3 to Y → descendant is X.
        let c0 = HaloCatalog {
            a: 0.5,
            halos: vec![halo(0, 1.0, (0..10).collect())],
        };
        let c1 = HaloCatalog {
            a: 0.8,
            halos: vec![
                halo(0, 0.7, (0..7).collect()),
                halo(1, 0.3, (7..10).collect()),
            ],
        };
        let tree = tree_maker(&[fake_snap(0.5), fake_snap(0.8)], &[c0, c1]);
        let src = tree.index[&(0, 0)];
        let x = tree.index[&(1, 0)];
        assert_eq!(tree.nodes[src].descendant, Some(x));
    }

    #[test]
    fn halo_with_no_overlap_has_no_descendant() {
        let c0 = HaloCatalog {
            a: 0.5,
            halos: vec![halo(0, 1.0, (0..10).collect())],
        };
        let c1 = HaloCatalog {
            a: 0.8,
            halos: vec![halo(0, 1.0, (100..110).collect())],
        };
        let tree = tree_maker(&[fake_snap(0.5), fake_snap(0.8)], &[c0, c1]);
        let src = tree.index[&(0, 0)];
        assert_eq!(tree.nodes[src].descendant, None);
        assert_eq!(tree.roots().len(), 2);
    }

    #[test]
    fn three_snapshot_chain() {
        let c0 = HaloCatalog {
            a: 0.3,
            halos: vec![halo(0, 0.2, (0..10).collect())],
        };
        let c1 = HaloCatalog {
            a: 0.5,
            halos: vec![halo(0, 0.5, (0..15).collect())],
        };
        let c2 = HaloCatalog {
            a: 1.0,
            halos: vec![halo(0, 0.9, (0..20).collect())],
        };
        let tree = tree_maker(
            &[fake_snap(0.3), fake_snap(0.5), fake_snap(1.0)],
            &[c0, c1, c2],
        );
        let last = tree.index[&(2, 0)];
        let branch = tree.main_branch(last);
        assert_eq!(branch.len(), 3);
        // Mass grows along the branch forward in time.
        assert!(tree.nodes[branch[0]].mass > tree.nodes[branch[2]].mass);
    }
}
