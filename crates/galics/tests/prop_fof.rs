//! Property tests: friends-of-friends is a partition induced by an
//! equivalence relation, whatever the particle configuration.

use galics::fof::{friends_of_friends, FofParams, UnionFind};
use proptest::prelude::*;
use ramses::particles::Particles;

fn arb_particles(max_n: usize) -> impl Strategy<Value = Particles> {
    prop::collection::vec(((0.0f64..1.0), (0.0f64..1.0), (0.0f64..1.0)), 2..max_n).prop_map(
        |rows| {
            let mut p = Particles::default();
            let n = rows.len();
            for (i, (x, y, z)) in rows.into_iter().enumerate() {
                p.push([x, y, z], [0.0; 3], 1.0 / n as f64, i as u64);
            }
            p
        },
    )
}

fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    let mut s = 0.0;
    for d in 0..3 {
        let mut dx = (a[d] - b[d]).abs();
        if dx > 0.5 {
            dx = 1.0 - dx;
        }
        s += dx * dx;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Groups are disjoint and, with min_members = 1, cover every particle.
    #[test]
    fn fof_is_a_partition(parts in arb_particles(120), b in 0.05f64..0.6) {
        let groups = friends_of_friends(&parts, &FofParams { b, min_members: 1 });
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for &i in g {
                prop_assert!(seen.insert(i), "particle {i} appears twice");
            }
        }
        prop_assert_eq!(seen.len(), parts.len());
    }

    /// Closure property: any two particles closer than the linking length
    /// end up in the same group.
    #[test]
    fn fof_links_all_close_pairs(parts in arb_particles(60), b in 0.1f64..0.5) {
        let groups = friends_of_friends(&parts, &FofParams { b, min_members: 1 });
        let mut owner = vec![usize::MAX; parts.len()];
        for (gi, g) in groups.iter().enumerate() {
            for &i in g {
                owner[i as usize] = gi;
            }
        }
        let ll = b * (1.0 / parts.len() as f64).cbrt();
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                if dist2(parts.pos[i], parts.pos[j]) <= ll * ll {
                    prop_assert_eq!(owner[i], owner[j], "close pair ({}, {}) split", i, j);
                }
            }
        }
    }

    /// Monotonicity: a larger linking length never yields more groups
    /// (with min_members = 1, groups only merge as b grows).
    #[test]
    fn fof_group_count_monotone_in_b(parts in arb_particles(80)) {
        let count = |b: f64| {
            friends_of_friends(&parts, &FofParams { b, min_members: 1 }).len()
        };
        let c1 = count(0.1);
        let c2 = count(0.2);
        let c3 = count(0.4);
        prop_assert!(c1 >= c2 && c2 >= c3);
    }

    /// min_members only filters whole groups; it never splits them.
    #[test]
    fn fof_min_members_filters(parts in arb_particles(80), b in 0.1f64..0.4, mm in 1usize..8) {
        let all = friends_of_friends(&parts, &FofParams { b, min_members: 1 });
        let filtered = friends_of_friends(&parts, &FofParams { b, min_members: mm });
        let expected: usize = all.iter().filter(|g| g.len() >= mm).count();
        prop_assert_eq!(filtered.len(), expected);
    }

    /// Union-find: union is idempotent, commutative in effect, and `same`
    /// is an equivalence relation.
    #[test]
    fn union_find_equivalence(n in 2usize..50, edges in prop::collection::vec((0usize..50, 0usize..50), 0..80)) {
        let mut uf = UnionFind::new(n);
        for (a, b) in &edges {
            uf.union((*a % n) as u32, (*b % n) as u32);
        }
        // Reflexive + symmetric + transitive over a sample.
        for i in 0..n as u32 {
            prop_assert!(uf.same(i, i));
        }
        for (a, b) in &edges {
            let (a, b) = ((*a % n) as u32, (*b % n) as u32);
            prop_assert!(uf.same(a, b));
            prop_assert!(uf.same(b, a));
        }
    }
}
