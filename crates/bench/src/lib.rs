//! Shared helpers for the experiment regenerators.
//!
//! Each binary in `src/bin/` regenerates one of the paper's evaluation
//! artifacts (see DESIGN.md §4 for the experiment index); this library holds
//! the little table/report plumbing they share so the binaries stay focused
//! on the experiment itself.

use cosmogrid::campaign::fmt_hms;
use std::path::PathBuf;

/// Directory where regenerators drop machine-readable figure data.
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Write a CSV artifact; returns its path. Failures are non-fatal for the
/// experiment itself (a read-only checkout still prints the tables).
pub fn write_artifact(name: &str, contents: &str) -> Option<PathBuf> {
    let path = artifact_dir().join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

/// Render an (x, y) series as CSV text.
pub fn series_csv(header: (&str, &str), series: &[(u32, f64)]) -> String {
    let mut out = format!(
        "{},{}
",
        header.0, header.1
    );
    for (x, y) in series {
        out.push_str(&format!(
            "{x},{y:.9}
"
        ));
    }
    out
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    pub quantity: &'static str,
    pub paper: String,
    pub measured: String,
    pub ok: bool,
}

/// Render a paper-vs-measured table.
pub fn render_rows(title: &str, rows: &[Row]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "  {:<28} {:>16} {:>16} {:>7}\n",
        "quantity", "paper", "measured", "shape"
    ));
    for r in rows {
        out.push_str(&format!(
            "  {:<28} {:>16} {:>16} {:>7}\n",
            r.quantity,
            r.paper,
            r.measured,
            if r.ok { "OK" } else { "DIVERGES" }
        ));
    }
    out
}

/// Convenience: a duration row checked against a relative tolerance band.
pub fn duration_row(quantity: &'static str, paper_s: f64, measured_s: f64, rel_tol: f64) -> Row {
    Row {
        quantity,
        paper: fmt_hms(paper_s),
        measured: fmt_hms(measured_s),
        ok: (measured_s - paper_s).abs() <= rel_tol * paper_s,
    }
}

/// Convenience: a milliseconds row.
pub fn ms_row(quantity: &'static str, paper_ms: f64, measured_s: f64, rel_tol: f64) -> Row {
    let measured_ms = measured_s * 1e3;
    Row {
        quantity,
        paper: format!("{paper_ms:.1} ms"),
        measured: format!("{measured_ms:.1} ms"),
        ok: (measured_ms - paper_ms).abs() <= rel_tol * paper_ms,
    }
}

/// Simple fixed-width series printer for figure data (request, value).
pub fn render_series(
    header: (&str, &str),
    series: &[(u32, f64)],
    scale: f64,
    unit: &str,
) -> String {
    let mut out = format!("  {:>8} {:>16}\n", header.0, header.1);
    for (x, y) in series {
        out.push_str(&format!("  {x:>8} {:>13.3} {unit}\n", y * scale));
    }
    out
}

/// Minimal recursive-descent JSON well-formedness check (no serde in this
/// offline workspace). Validates the full grammar — objects, arrays,
/// strings with escapes, numbers, literals — without building a tree; used
/// to smoke-test generated artifacts like `BENCH_kernels.json`.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected number at byte {start}"));
    }
    Ok(())
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

/// Downsample a series to at most `n` points (keeps first/last).
pub fn downsample(series: &[(u32, f64)], n: usize) -> Vec<(u32, f64)> {
    if series.len() <= n || n < 2 {
        return series.to_vec();
    }
    let step = (series.len() - 1) as f64 / (n - 1) as f64;
    (0..n)
        .map(|i| series[(i as f64 * step).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_row_band() {
        assert!(duration_row("x", 100.0, 104.0, 0.05).ok);
        assert!(!duration_row("x", 100.0, 120.0, 0.05).ok);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let s: Vec<(u32, f64)> = (0..100).map(|i| (i, i as f64)).collect();
        let d = downsample(&s, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].0, 0);
        assert_eq!(d[9].0, 99);
    }

    #[test]
    fn validate_json_accepts_wellformed() {
        for ok in [
            "{}",
            "[1, 2.5, -3e4]",
            "{\"a\": [true, false, null], \"b\": {\"c\": \"x\\\"y\"}}",
            "  {\"k\": 1}  ",
        ] {
            assert!(validate_json(ok).is_ok(), "rejected {ok}");
        }
    }

    #[test]
    fn validate_json_rejects_malformed() {
        for bad in [
            "{",
            "{\"a\" 1}",
            "[1,]",
            "{\"a\": 1} extra",
            "\"unterminated",
            "",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn render_rows_marks_divergence() {
        let txt = render_rows(
            "t",
            &[
                duration_row("a", 100.0, 100.0, 0.1),
                duration_row("b", 100.0, 200.0, 0.1),
            ],
        );
        assert!(txt.contains("OK"));
        assert!(txt.contains("DIVERGES"));
    }
}
