//! E7 — the plug-in scheduler ablation. The paper stops at the observation
//! that round-robin's equal split "does not take into account the machines
//! processing power" and conjectures "a better makespan could be attained by
//! writing a plug-in scheduler \[2\]". This experiment implements and measures
//! that: the same campaign under every bundled policy.

use cosmogrid::campaign::{fmt_hms, run_campaign, CampaignConfig};
use diet_core::sched::{MinQueue, RandomSched, RoundRobin, Scheduler, WeightedSpeed};
use std::sync::Arc;

fn main() {
    println!("E7: scheduler ablation — same 1+100 campaign, four policies\n");
    println!(
        "  {:<16} {:>11} {:>9} {:>11} {:>11}",
        "scheduler", "makespan", "speedup", "max busy", "min busy"
    );
    let mut results = Vec::new();
    let policies: Vec<Arc<dyn Scheduler>> = vec![
        Arc::new(RoundRobin::new()),
        Arc::new(RandomSched::new(2007)),
        Arc::new(MinQueue),
        Arc::new(WeightedSpeed),
    ];
    for sched in policies {
        let r = run_campaign(CampaignConfig {
            scheduler: sched,
            ..CampaignConfig::default()
        });
        let max_busy = r.sed_rows.iter().map(|(_, _, b)| *b).fold(0.0f64, f64::max);
        let min_busy = r
            .sed_rows
            .iter()
            .map(|(_, _, b)| *b)
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {:<16} {:>11} {:>8.1}x {:>11} {:>11}",
            r.scheduler,
            fmt_hms(r.makespan),
            r.speedup(),
            fmt_hms(max_busy),
            fmt_hms(min_busy)
        );
        results.push((r.scheduler, r.makespan));
    }

    let get = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| *m)
            .unwrap()
    };
    let rr = get("round_robin");
    let ws = get("weighted_speed");
    let rnd = get("random");
    println!(
        "\nweighted_speed improves the round-robin makespan by {:.1}%\n\
         (the paper's conjectured plug-in gain), while blind random\n\
         scheduling degrades it by {:.1}%.",
        (1.0 - ws / rr) * 100.0,
        (rnd / rr - 1.0) * 100.0
    );
    assert!(ws < rr, "plug-in scheduler must beat round-robin");
    assert!(rnd > rr, "random should lose to round-robin here");
    println!("E7 shape checks passed");
}
