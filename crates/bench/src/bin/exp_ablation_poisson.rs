//! Ablation A2 — why multigrid? (DESIGN.md §4, design-choice ablations.)
//!
//! The Poisson solve dominates each PM step. This ablation compares the
//! geometric multigrid V-cycle against plain red–black Gauss–Seidel
//! relaxation on the same cosmological source field: iterations and
//! wall-clock to reach the same residual target. Multigrid's mesh-size-
//! independent convergence is the reason RAMSES (and this reproduction)
//! uses it.

use ramses::particles::{cic_deposit, Mesh};
use ramses::poisson::{solve, MgConfig};
use std::time::Instant;

/// Pure Gauss–Seidel "solver": V-cycles with the coarse grid disabled, i.e.
/// smoothing sweeps only, until the tolerance or the sweep cap.
fn gauss_seidel_only(source: &Mesh, tol: f64, max_sweeps: usize) -> (usize, f64) {
    // Reuse the production smoother through MgConfig by setting the V-cycle
    // to do nothing but pre-smooth at the finest level: nu_pre sweeps per
    // "cycle" with max_cycles capping the total.
    let cfg = MgConfig {
        nu_pre: 1,
        nu_post: 0,
        max_cycles: max_sweeps,
        tol,
    };
    // A "multigrid" on a mesh of size n with coarse levels disabled is not
    // expressible through the public API, so emulate: run the full solver on
    // a source whose mesh is already the coarsest size the V-cycle treats
    // directly... Instead, measure honestly: call the production solver with
    // recursion suppressed by handing it the same mesh but counting each
    // V-cycle as its fine-level smoothing work only is wrong. We therefore
    // implement plain GS here, mirroring the production stencil.
    let n = source.n;
    let mean = source.data.iter().sum::<f64>() / source.data.len() as f64;
    let mut s = source.clone();
    for v in s.data.iter_mut() {
        *v -= mean;
    }
    let s_norm = s.data.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    let mut phi = Mesh::zeros(n);
    let h2 = 1.0 / (n as f64 * n as f64);
    let inv_h2 = 1.0 / h2;
    let mut sweeps = 0;
    let mut rel = f64::INFINITY;
    while sweeps < max_sweeps {
        for color in 0..2usize {
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        if (i + j + k) % 2 != color {
                            continue;
                        }
                        let nb = phi.get((i + 1) % n, j, k)
                            + phi.get((i + n - 1) % n, j, k)
                            + phi.get(i, (j + 1) % n, k)
                            + phi.get(i, (j + n - 1) % n, k)
                            + phi.get(i, j, (k + 1) % n)
                            + phi.get(i, j, (k + n - 1) % n);
                        let ix = phi.idx(i, j, k);
                        phi.data[ix] = (nb - h2 * s.get(i, j, k)) / 6.0;
                    }
                }
            }
        }
        sweeps += 1;
        if sweeps % 10 == 0 || sweeps == max_sweeps {
            // residual check
            let mut r2 = 0.0;
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let lap = (phi.get((i + 1) % n, j, k)
                            + phi.get((i + n - 1) % n, j, k)
                            + phi.get(i, (j + 1) % n, k)
                            + phi.get(i, (j + n - 1) % n, k)
                            + phi.get(i, j, (k + 1) % n)
                            + phi.get(i, j, (k + n - 1) % n)
                            - 6.0 * phi.get(i, j, k))
                            * inv_h2;
                        let r = s.get(i, j, k) - lap;
                        r2 += r * r;
                    }
                }
            }
            rel = r2.sqrt() / s_norm;
            if rel < tol {
                break;
            }
        }
    }
    let _ = cfg;
    (sweeps, rel)
}

fn main() {
    println!("A2: Poisson-solver ablation — multigrid V-cycles vs Gauss-Seidel\n");
    println!(
        "  {:>6} {:>12} {:>12} {:>14} {:>14}",
        "mesh", "MG cycles", "MG time", "GS sweeps", "GS time"
    );

    let cosmo = grafic::CosmoParams::default();
    for nbits in [4u32, 5] {
        let n = 1usize << nbits;
        let ics = grafic::generate_single_level(&cosmo, n.min(16), 100.0, 7);
        let parts = ramses::particles::Particles::from_ics(&ics.particles, 100.0);
        let rho = cic_deposit(&parts, n);
        let mut src = rho.clone();
        for v in src.data.iter_mut() {
            *v -= 1.0;
        }

        let tol = 1e-6;
        let t0 = Instant::now();
        let mg = solve(
            &src,
            &MgConfig {
                tol,
                ..MgConfig::default()
            },
        );
        let mg_time = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let (gs_sweeps, gs_rel) = gauss_seidel_only(&src, tol, 4000);
        let gs_time = t1.elapsed().as_secs_f64();

        println!(
            "  {:>4}^3 {:>12} {:>11.1}ms {:>14} {:>13.1}ms",
            n,
            mg.cycles,
            mg_time * 1e3,
            gs_sweeps,
            gs_time * 1e3
        );
        assert!(mg.rel_residual < tol);
        assert!(
            gs_sweeps > 10 * mg.cycles,
            "GS should need far more sweeps ({gs_sweeps}) than MG cycles ({})",
            mg.cycles
        );
        if gs_rel >= tol {
            println!(
                "        (GS hit the {gs_sweeps}-sweep cap at residual {gs_rel:.1e} — \
                 it stalls where MG converges)"
            );
        }
    }

    println!(
        "\nmultigrid reaches the tolerance in O(10) cycles independent of mesh\n\
         size, while plain relaxation needs hundreds-to-thousands of sweeps\n\
         and degrades quadratically with resolution — the standard argument\n\
         for MG inside a PM/AMR gravity solver."
    );
    println!("A2 shape checks passed");
}
