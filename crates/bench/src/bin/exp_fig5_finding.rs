//! E4 — Figure 5 (top series): the time needed to find a suitable SeD for
//! each of the 101 requests. The paper measures it "low and nearly constant
//! (49.8 ms on average)".

use bench::downsample;
use cosmogrid::campaign::{run_campaign, CampaignConfig};

fn main() {
    let r = run_campaign(CampaignConfig::default());
    println!("E4: Figure 5 — finding time per request\n");
    println!("  {:>8} {:>14}", "request", "finding (ms)");
    for (req, f) in downsample(&r.finding, 20) {
        println!("  {req:>8} {:>14.1}", f * 1e3);
    }
    let mean = r.finding_mean * 1e3;
    let min = r
        .finding
        .iter()
        .map(|(_, f)| *f)
        .fold(f64::INFINITY, f64::min)
        * 1e3;
    let max = r.finding.iter().map(|(_, f)| *f).fold(0.0f64, f64::max) * 1e3;
    println!("\nmean {mean:.1} ms (paper 49.8 ms), min {min:.1} ms, max {max:.1} ms");
    assert!((mean - 49.8).abs() < 5.0, "finding mean diverges: {mean}");
    assert!(
        max / min < 1.5,
        "finding time should be nearly constant, spread {min}..{max}"
    );
    if let Some(p) = bench::write_artifact(
        "fig5_finding.csv",
        &bench::series_csv(("request", "finding_s"), &r.finding),
    ) {
        println!("series written to {}", p.display());
    }
    println!("E4 shape checks passed (near-constant, ~50 ms)");
}
