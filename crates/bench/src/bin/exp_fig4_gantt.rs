//! E2 — Figure 4 (left): the Gantt chart of the 100 sub-simulations over
//! the 11 SeDs, and the request distribution (9 per SeD, one SeD with 10).

use cosmogrid::campaign::{run_campaign, CampaignConfig};

fn main() {
    let r = run_campaign(CampaignConfig::default());
    println!("E2: Figure 4 (left) — Gantt chart of the 100 sub-simulations\n");
    print!("{}", r.part2_gantt().render_ascii(100));

    let mut counts: Vec<(String, usize)> =
        r.sed_rows.iter().map(|(l, c, _)| (l.clone(), *c)).collect();
    counts.sort();
    println!("\nrequests per SeD:");
    for (label, c) in &counts {
        println!("  {label:<22} {c}");
    }
    let mut dist: Vec<usize> = counts.iter().map(|(_, c)| *c).collect();
    dist.sort_unstable();
    println!(
        "\npaper: \"each SED received 9 requests (one of them received 10)\" -> measured {:?}",
        dist
    );
    assert_eq!(dist[..10], [9; 10], "E2 distribution diverges");
    assert_eq!(dist[10], 10, "E2 distribution diverges");
    if let Some(p) = bench::write_artifact("fig4_trace.csv", &r.gantt.to_csv()) {
        println!("full event trace written to {}", p.display());
    }
    println!("E2 shape check passed");
}
