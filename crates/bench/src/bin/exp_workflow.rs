//! MA-DAG workflow engine vs per-stage-through-client zoom pipelines.
//!
//! The paper's client drives the two-part protocol itself: it pulls the
//! part-1 result tarball over its access link, extracts the halo catalog,
//! and pushes one `ramsesZoom2` request per halo — every intermediate
//! snapshot crosses the client's WAN link twice. The MA-DAG engine keeps
//! the whole pipeline inside the grid: the client submits one dag, the
//! engine fans out part 2 where the data already lives, and only status
//! frames and grid *references* ever reach the client.
//!
//! This experiment runs N concurrent zoom pipelines both ways over a real
//! TCP deployment and compares makespans under an emulated client access
//! link (shared serialized bandwidth + per-exchange RTT — the grid's
//! internal links stay native). Control frames pay RTT in both modes;
//! payload bytes pay bandwidth. The gate: with >= 8 concurrent pipelines
//! the dag path must beat the per-stage path by >= 1.5x.
//!
//! Writes `BENCH_workflow.json` (validated with `bench::validate_json`);
//! `--quick` shrinks the fleet for CI and writes to the artifact dir.

use cosmogrid::archive;
use cosmogrid::namelist::{default_run_namelist, Namelist};
use cosmogrid::services::{cosmology_service_table, status, zoom1_profile, zoom2_profile};
use cosmogrid::workflow::{zoom_fanout_expander, ZoomWorkflow};
use diet_core::client::RetryPolicy;
use diet_core::deploy::{SedSpec, TcpSiteSpec, TcpTopologySpec};
use diet_core::sched::RoundRobin;
use diet_core::DietClient;
use obs::Obs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The client's WAN access link: every synchronous exchange pays `rtt`
/// (latency, concurrent), payload bytes pay `bytes_per_sec` on ONE shared
/// pipe (occupancy, serialized). Grid-internal transfers are not charged.
struct WanLink {
    rtt: Duration,
    bytes_per_sec: f64,
    pipe: Mutex<()>,
    /// Intermediate-data bytes (tarballs, namelists) through the link.
    payload_bytes: AtomicU64,
    /// Protocol-frame bytes (submits, polls, outcomes) through the link.
    control_bytes: AtomicU64,
}

impl WanLink {
    fn new(rtt: Duration, bytes_per_sec: f64) -> Arc<Self> {
        Arc::new(WanLink {
            rtt,
            bytes_per_sec,
            pipe: Mutex::new(()),
            payload_bytes: AtomicU64::new(0),
            control_bytes: AtomicU64::new(0),
        })
    }

    fn exchange(&self, bytes: usize) {
        std::thread::sleep(self.rtt);
        if bytes > 0 {
            let _pipe = self.pipe.lock().unwrap();
            std::thread::sleep(Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec));
        }
    }

    /// A data transfer: simulation inputs/outputs crossing the client link.
    fn payload(&self, bytes: usize) {
        self.payload_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.exchange(bytes);
    }

    /// A protocol exchange: request/status/outcome frames.
    fn control(&self, bytes: usize) {
        self.control_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.exchange(bytes);
    }

    fn reset(&self) {
        self.payload_bytes.store(0, Ordering::Relaxed);
        self.control_bytes.store(0, Ordering::Relaxed);
    }
}

fn bench_namelist() -> Namelist {
    let mut nl = default_run_namelist(8, 50.0);
    nl.set("INIT_PARAMS", "aexp_ini", 0.4);
    nl.set("OUTPUT_PARAMS", "aout", "0.6, 1.0");
    nl
}

fn two_site_topology() -> TcpTopologySpec {
    let site = |name: &str, n: usize| TcpSiteSpec {
        name: name.into(),
        seds: (0..n)
            .map(|i| SedSpec {
                label: format!("{name}/{i}"),
                speed_factor: 1.0,
            })
            .collect(),
        children: vec![],
    };
    TcpTopologySpec {
        ma_name: "ma".into(),
        ma_seds: vec![],
        sites: vec![site("nancy", 2), site("sophia", 2)],
        admission_limit: None,
        child_timeout_ms: 30_000,
    }
}

const MAX_ZOOMS: usize = 2;

fn workflow() -> ZoomWorkflow {
    ZoomWorkflow {
        namelist: bench_namelist(),
        resolution: 8,
        size_mpc_h: 50,
        nb_box: 1,
        max_zooms: MAX_ZOOMS,
    }
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_secs(120),
        ..RetryPolicy::default()
    }
}

/// One per-stage-through-client pipeline: the paper's flow, with every
/// payload charged to the WAN link. Returns the number of OK zooms.
fn baseline_pipeline(
    client: &DietClient,
    d: &diet_core::deploy::TcpDeployment,
    link: &WanLink,
) -> usize {
    let wf = workflow();
    let nml_len = wf.namelist.render().len();

    // Part 1: namelist up, full result tarball down.
    link.payload(nml_len);
    let (r1, _) = client
        .call_distributed(
            &d.ma_client,
            &d.pool,
            zoom1_profile(&wf.namelist, wf.resolution),
            &policy(),
        )
        .expect("zoom1 call");
    assert_eq!(r1.get_i32(3).unwrap(), status::OK);
    let (_, tar) = r1.get_file(2).unwrap();
    link.payload(tar.len());

    // Client-side catalog extraction, then one zoom2 round-trip per halo —
    // namelist up, result tarball down, each through the same pipe.
    let entries = archive::unpack(tar).unwrap();
    let cat = archive::find(&entries, "halos/catalog.txt").unwrap();
    let halos = ZoomWorkflow::parse_catalog(&String::from_utf8_lossy(&cat.data));

    // Part-2 requests all in flight at once, as the paper's client does.
    let targets: Vec<_> = halos.iter().take(wf.max_zooms).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = targets
            .iter()
            .map(|h| {
                let p = zoom2_profile(
                    &wf.namelist,
                    wf.resolution,
                    wf.size_mpc_h,
                    h.center_pct,
                    wf.nb_box,
                );
                s.spawn(move || {
                    link.payload(nml_len);
                    let (r2, _) = client
                        .call_distributed(&d.ma_client, &d.pool, p, &policy())
                        .expect("zoom2 call");
                    let ok = r2.get_i32(8).unwrap() == status::OK;
                    let (_, tar) = r2.get_file(7).unwrap();
                    link.payload(tar.len());
                    ok
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count()
    })
}

/// One engine-scheduled pipeline: submit the dag, poll status frames over
/// the link, receive an outcome of codes and refs. No payload is charged
/// because none crosses the client link — that is the point.
fn dag_pipeline(
    client: &DietClient,
    d: &diet_core::deploy::TcpDeployment,
    link: &WanLink,
) -> usize {
    let wf = workflow();
    let spec = wf.dag_spec();
    // The submit frame carries the part-1 profile (namelist included) —
    // the same upload the baseline pays once.
    link.payload(wf.namelist.render().len());
    link.control(256);
    let handle = client.submit_dag(&d.ma_client, &spec).expect("submit dag");

    let deadline = Instant::now() + Duration::from_secs(600);
    let mut since = 0;
    let outcome = loop {
        // Each status poll is one small control exchange on the link.
        link.control(128);
        let (events, outcome) = client
            .poll_dag(&d.ma_client, handle.dag_id, since)
            .expect("poll dag");
        if let Some(e) = events.last() {
            since = e.seq;
        }
        if let Some(o) = outcome {
            // The terminal outcome frame: status codes, grid refs, event
            // tail — still control-plane sized.
            link.control(2048);
            break o;
        }
        assert!(Instant::now() < deadline, "dag never finished");
        std::thread::sleep(Duration::from_millis(100));
    };

    let report = cosmogrid::workflow::DagWorkflowReport::from_outcome(handle.trace_id, outcome);
    assert!(report.all_succeeded(), "dag pipeline failed: {report:?}");
    // Intermediates stayed on the grid: the client holds references only.
    for z in &report.zooms {
        let id = z.tar_id.as_deref().expect("zoom output published as ref");
        assert!(id.contains("ramsesZoom2@d"), "not a tagged grid id: {id}");
    }
    report
        .zooms
        .iter()
        .filter(|z| z.status == status::OK)
        .count()
}

/// Run `n` concurrent pipelines through `f`; returns (makespan_s, total OK
/// zooms, payload bytes, control bytes).
fn fleet(
    n: usize,
    d: &Arc<diet_core::deploy::TcpDeployment>,
    link: &Arc<WanLink>,
    f: fn(&DietClient, &diet_core::deploy::TcpDeployment, &WanLink) -> usize,
) -> (f64, usize, u64, u64) {
    link.reset();
    let wall = Instant::now();
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let d = d.clone();
            let link = link.clone();
            std::thread::spawn(move || {
                let client = DietClient::initialize_distributed(Arc::new(Obs::new()));
                f(&client, &d, &link)
            })
        })
        .collect();
    let oks: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (
        wall.elapsed().as_secs_f64(),
        oks,
        link.payload_bytes.load(Ordering::Relaxed),
        link.control_bytes.load(Ordering::Relaxed),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let pipelines = if quick { 3 } else { 8 };
    // A paper-era WAN access link: ~40 ms RTT, 256 KB/s sustained.
    let link = WanLink::new(Duration::from_millis(40), 32.0 * 1024.0);

    let d = Arc::new(
        two_site_topology()
            .deploy(Arc::new(RoundRobin::new()), |_| cosmology_service_table())
            .expect("deploy 2-site topology"),
    );
    d.dag
        .register_expander("zoom_fanout", zoom_fanout_expander());

    println!("== exp_workflow: {pipelines} concurrent zoom pipelines, 4 SeDs, 2 sites ==");

    // Warm-up: one pipeline of each flavor, untimed, so neither timed run
    // pays first-touch costs (thread pools, lazy dials, page faults).
    baseline_pipeline(
        &DietClient::initialize_distributed(Arc::new(Obs::new())),
        &d,
        &WanLink::new(Duration::ZERO, f64::INFINITY),
    );
    dag_pipeline(
        &DietClient::initialize_distributed(Arc::new(Obs::new())),
        &d,
        &WanLink::new(Duration::ZERO, f64::INFINITY),
    );

    let (dag_s, dag_oks, dag_payload, dag_ctl) = fleet(pipelines, &d, &link, dag_pipeline);
    println!(
        "  dag      : {dag_s:>7.2}s makespan | {dag_oks} zooms OK | {dag_payload:>9} B payload + {dag_ctl} B control"
    );
    let (base_s, base_oks, base_payload, base_ctl) = fleet(pipelines, &d, &link, baseline_pipeline);
    println!(
        "  per-stage: {base_s:>7.2}s makespan | {base_oks} zooms OK | {base_payload:>9} B payload + {base_ctl} B control"
    );

    let speedup = base_s / dag_s;
    let expected_oks = pipelines * MAX_ZOOMS;
    // In dag mode the only payload on the link is each pipeline's namelist
    // upload — every snapshot/tarball intermediate stays on the grid.
    let nml_len = bench_namelist().render().len() as u64;
    let intermediate_bytes = dag_payload.saturating_sub(pipelines as u64 * nml_len);
    println!(
        "  speedup {speedup:.2}x | intermediate bytes through client: dag {intermediate_bytes}, per-stage {}",
        base_payload - pipelines as u64 * nml_len * (1 + MAX_ZOOMS as u64)
    );

    let dags_completed = d.obs.metrics.counter("diet_dag_completed_total").get();
    let dags_failed = d.obs.metrics.counter("diet_dag_failed_total").get();
    Arc::into_inner(d)
        .expect("all pipeline threads joined")
        .shutdown();

    // ---- artifact ----
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n  \"experiment\": \"workflow\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str(&format!("  \"pipelines\": {pipelines},\n"));
    json.push_str(&format!("  \"zooms_per_pipeline\": {MAX_ZOOMS},\n"));
    json.push_str("  \"wan\": {\"rtt_ms\": 40, \"bytes_per_sec\": 32768},\n");
    json.push_str(&format!(
        "  \"dag\": {{\"makespan_s\": {dag_s:.3}, \"zooms_ok\": {dag_oks}, \"payload_bytes\": {dag_payload}, \"control_bytes\": {dag_ctl}, \"intermediate_bytes\": {intermediate_bytes}}},\n"
    ));
    json.push_str(&format!(
        "  \"per_stage\": {{\"makespan_s\": {base_s:.3}, \"zooms_ok\": {base_oks}, \"payload_bytes\": {base_payload}, \"control_bytes\": {base_ctl}}},\n"
    ));
    json.push_str(&format!(
        "  \"speedup\": {speedup:.4},\n  \"dags_completed\": {dags_completed},\n  \"dags_failed\": {dags_failed}\n}}\n"
    ));
    bench::validate_json(&json).expect("generated artifact is not valid JSON");

    let path = if quick {
        bench::artifact_dir().join("BENCH_workflow_quick.json")
    } else {
        std::path::PathBuf::from("BENCH_workflow.json")
    };
    std::fs::write(&path, &json).expect("failed to write artifact");
    println!("wrote {}", path.display());

    // ---- gates ----
    let mut failed = false;
    // Headline gate: >= 1.5x at the full fleet. Quick mode keeps a looser
    // floor — 3 pipelines on a shared CI box move far fewer bytes, so the
    // structural win shrinks while a real regression still trips it.
    let floor = if quick { 1.1 } else { 1.5 };
    if speedup < floor {
        eprintln!("FAIL: dag speedup {speedup:.2}x under the {floor:.1}x floor");
        failed = true;
    }
    if dag_oks != expected_oks || base_oks != expected_oks {
        eprintln!(
            "FAIL: lost zooms — dag {dag_oks}/{expected_oks}, per-stage {base_oks}/{expected_oks}"
        );
        failed = true;
    }
    if intermediate_bytes != 0 {
        eprintln!(
            "FAIL: {intermediate_bytes} intermediate bytes crossed the client link in dag mode — \
             snapshots are not staying on the grid"
        );
        failed = true;
    }
    if base_payload <= dag_payload * 10 {
        eprintln!(
            "FAIL: baseline moved only {base_payload} payload B vs dag {dag_payload} B — \
             the per-stage flow is not exercising the client link"
        );
        failed = true;
    }
    if dags_failed > 0 {
        eprintln!("FAIL: {dags_failed} dags lost by the engine");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: {pipelines} concurrent zoom dags {speedup:.2}x faster than per-stage; \
         client link carried {dag_payload} B (dag) vs {base_payload} B (per-stage)"
    );
}
