//! E5 — Figure 5 (bottom series, log scale): per-request latency — "the
//! time needed to send the data from the client to the chosen SED, plus the
//! time needed to initiate the service", which *includes* the wait behind
//! earlier sub-simulations, so it "grows rapidly" from milliseconds to hours.

use bench::downsample;
use cosmogrid::campaign::{run_campaign, CampaignConfig};

fn main() {
    let r = run_campaign(CampaignConfig::default());
    println!("E5: Figure 5 — latency per request (log-scale bar per sample)\n");
    println!("  {:>8} {:>14}  log10 bar", "request", "latency (s)");
    let part2: Vec<(u32, f64)> = r
        .latency
        .iter()
        .filter(|(req, _)| *req >= 1)
        .cloned()
        .collect();
    for (req, l) in downsample(&part2, 25) {
        let log = (l.max(1e-3)).log10();
        let bar = "#".repeat(((log + 3.0) * 4.0).max(0.0).round() as usize);
        println!("  {req:>8} {l:>14.3}  {bar}");
    }

    // The first 12 executions start almost immediately — the paper computes
    // its 20.8 ms initiation figure on them.
    let first_wave: Vec<f64> = part2.iter().take(11).map(|(_, l)| *l).collect();
    let tail_max = part2.iter().map(|(_, l)| *l).fold(0.0f64, f64::max);
    println!(
        "\nfirst 11 requests: latency {:.3}-{:.3}s (immediate dispatch);",
        first_wave.iter().cloned().fold(f64::INFINITY, f64::min),
        first_wave.iter().cloned().fold(0.0f64, f64::max),
    );
    println!(
        "last requests wait behind earlier sub-simulations: up to {} —\n\
         4-5 orders of magnitude growth, the paper's log-scale Figure 5 shape.",
        cosmogrid::campaign::fmt_hms(tail_max)
    );
    assert!(first_wave.iter().all(|&l| l < 60.0));
    assert!(tail_max > 5.0 * 3600.0);
    if let Some(p) = bench::write_artifact(
        "fig5_latency.csv",
        &bench::series_csv(("request", "latency_s"), &r.latency),
    ) {
        println!("series written to {}", p.display());
    }
    println!("E5 shape checks passed (latency grows rapidly)");
}
