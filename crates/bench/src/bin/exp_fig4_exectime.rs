//! E3 — Figure 4 (right): total execution time of the sub-simulations per
//! SeD. The paper reads "about 15h for Toulouse and 10h30 for Nancy": the
//! equal request split meets heterogeneous Opterons, so totals spread.

use cosmogrid::campaign::{fmt_hms, run_campaign, CampaignConfig};

fn main() {
    let r = run_campaign(CampaignConfig::default());
    println!("E3: Figure 4 (right) — per-SeD execution time of the 100 sub-simulations\n");
    println!("  {:<22} {:>8} {:>12}  bar", "SeD", "requests", "busy");
    let max_busy = r.sed_rows.iter().map(|(_, _, b)| *b).fold(0.0f64, f64::max);
    for (label, requests, busy) in &r.sed_rows {
        let bar = "#".repeat((busy / max_busy * 40.0).round() as usize);
        println!("  {label:<22} {requests:>8} {:>12}  {bar}", fmt_hms(*busy));
    }

    let busiest = r
        .sed_rows
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .unwrap();
    let idlest = r
        .sed_rows
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .unwrap();
    println!(
        "\npaper: ~15h (Toulouse) vs ~10h30 (Nancy); measured: {} ({}) vs {} ({})",
        fmt_hms(busiest.2),
        busiest.0,
        fmt_hms(idlest.2),
        idlest.0
    );
    println!(
        "imbalance ratio: paper ~1.43, measured {:.2}",
        busiest.2 / idlest.2
    );
    assert!(
        busiest.0.contains("toulouse") || busiest.0.contains("capricorne"),
        "busiest SeD should be an Opteron-246 cluster, got {}",
        busiest.0
    );
    assert!(idlest.0.contains("nancy"), "idlest should be Nancy");
    assert!(
        busiest.2 / idlest.2 > 1.25 && busiest.2 / idlest.2 < 1.7,
        "imbalance ratio diverges: {:.2}",
        busiest.2 / idlest.2
    );
    println!("E3 shape checks passed (slow clusters run ~1.3-1.5x longer)");
}
