//! E8 — the qualitative claims of Section 3 (Figures 2 and 3), verified on
//! the real Rust pipeline at laptop scale:
//!
//! * the low-resolution run produces a catalog of dark-matter halos
//!   ("high-density peaks ... containing each halo position, mass and
//!   velocity");
//! * the zoom re-simulation populates the selected halo's region with many
//!   more, lighter particles ("a lot more particles, in order to obtain more
//!   accurate results") while conserving the mass hierarchy.

use grafic::CosmoParams;
use ramses::nbody::{RunParams, Simulation};

fn main() {
    println!("E8: zoom re-simulation quality (Section 3, Figures 2-3)\n");
    let cosmo = CosmoParams {
        a_init: 0.1,
        ..CosmoParams::default()
    };

    // Part 1: full box at 8^3.
    let coarse = grafic::generate_single_level(&cosmo, 8, 50.0, 1915);
    let params = RunParams {
        cosmo: cosmo.clone(),
        box_mpc_h: 50.0,
        mesh_n: 32,
        a_end: 1.0,
        aout: vec![],
        max_steps: 600,
        ..RunParams::default()
    };
    let mut sim = Simulation::from_ics(params.clone(), &coarse.particles);
    let snaps = sim.run();
    let cat = galics::halo::halo_maker(
        snaps.last().unwrap(),
        &galics::FofParams {
            b: 0.2,
            min_members: 5,
        },
    );
    println!(
        "part 1 (8^3 full box, evolved to a={:.2}): {} halos in the catalog",
        sim.a,
        cat.len()
    );
    assert!(!cat.is_empty(), "E8 needs at least one halo");
    let target = cat.most_massive(1)[0];
    println!(
        "  most massive: {:.2e} M_sun/h at {:?} ({} particles)",
        target.mass_msun,
        target.pos.map(|x| (x * 100.0).round() / 100.0),
        target.npart
    );

    // Part 2: nested zoom ICs centred on that halo.
    let center = [
        target.pos[0] * 50.0,
        target.pos[1] * 50.0,
        target.pos[2] * 50.0,
    ];
    let zoom = grafic::zoom::generate_zoom(&cosmo, 8, 50.0, center, 2, 1915);
    println!(
        "\nzoom ICs (2 nested boxes): {} particles total, per level {:?}",
        zoom.particles.len(),
        zoom.counts
    );
    println!(
        "  particle-mass dynamic range: {:.0}x (coarse envelope vs refined core)",
        zoom.mass_dynamic_range()
    );

    // Count particles inside the target region before/after refinement.
    let half = zoom.levels.last().unwrap().half_extent;
    let inside = |pos: &[[f64; 3]], box_l: f64| {
        pos.iter()
            .filter(|p| {
                (0..3).all(|d| {
                    let mut dx = (p[d] - center[d]).abs();
                    if dx > box_l / 2.0 {
                        dx = box_l - dx;
                    }
                    dx <= half
                })
            })
            .count()
    };
    let coarse_inside = inside(&coarse.particles.pos, 50.0);
    let zoom_inside = inside(&zoom.particles.pos, 50.0);
    println!(
        "  particles inside the halo region: {} (single-level) -> {} (zoom)",
        coarse_inside, zoom_inside
    );
    assert!(
        zoom_inside > coarse_inside.max(1) * 8,
        "zoom should refine the target region by >= 8x in particle count"
    );
    assert!(zoom.mass_dynamic_range() >= 8.0);

    // Run the zoom load and confirm the halo survives at higher resolution.
    let mut zsim = Simulation::from_ics(params, &zoom.particles);
    let zsnaps = zsim.run();
    let zlast = zsnaps.last().unwrap();

    // Re-detect on the refined subset — HaloMaker run on the high-resolution
    // sub-box, where the linking length follows the *local* particle spacing
    // (a global b over a mixed-mass load would use the wrong density).
    let coarse_mass = zoom.particles.mass.iter().cloned().fold(0.0f64, f64::max);
    let mut refined = ramses::particles::Particles::default();
    for i in 0..zlast.particles.len() {
        if zlast.particles.mass[i] < 0.5 * coarse_mass {
            refined.push(
                zlast.particles.pos[i],
                zlast.particles.vel[i],
                zlast.particles.mass[i],
                zlast.particles.id[i],
            );
        }
    }
    println!(
        "\nzoom run reached a={:.2}; refined subset: {} light particles",
        zsim.a,
        refined.len()
    );
    let groups = galics::fof::friends_of_friends(
        &refined,
        &galics::FofParams {
            b: 0.2,
            min_members: 5,
        },
    );
    assert!(
        !groups.is_empty(),
        "no refined halo found in the zoom region"
    );
    let biggest = &groups[0];
    let com = {
        let mut c = [0.0f64; 3];
        for &i in biggest {
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                c[d] += refined.pos[i as usize][d];
            }
        }
        c.map(|x| x / biggest.len() as f64)
    };
    let dist: f64 = (0..3)
        .map(|d| {
            let mut dx = (com[d] - target.pos[d]).abs();
            if dx > 0.5 {
                dx = 1.0 - dx;
            }
            dx * dx
        })
        .sum::<f64>()
        .sqrt();
    println!(
        "  largest refined halo: {} particles (vs {} at low resolution), \
         {:.3} box units from the target",
        biggest.len(),
        target.npart,
        dist
    );
    assert!(
        biggest.len() > target.npart,
        "re-simulated halo should resolve more particles"
    );
    assert!(dist < 0.2, "refined halo drifted from the target region");
    println!("\nE8 shape checks passed (zoom raises local resolution; halo persists)");
}
