//! Experiment: DAGDA-style data reuse vs. the all-volatile baseline, live.
//!
//! The paper's campaign ships the same namelist/IC file with every one of
//! the 100 `ramsesZoom2` requests. With the data-management subsystem the
//! client stores the shared file once (`Persistent`), every request carries
//! only its id, and SeDs that don't hold it pull it from a replica holder
//! SeD-to-SeD. This experiment runs the same request batch both ways over
//! real TCP sockets and reports client-side bytes-on-the-wire and makespan;
//! the solver outputs must be byte-identical across modes.
//!
//! Artifacts (target/experiments/): `data_reuse.csv`.
//!
//! Usage: `exp_data_reuse [--quick]` (fewer requests in quick mode).

use bench::write_artifact;
use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{
    cosmology_service_table, namelist_value, serve_sed_over_tcp, status, zoom2_profile,
    zoom2_profile_ref,
};
use diet_core::agent::{AgentNode, MasterAgent};
use diet_core::client::{DietClient, RetryPolicy};
use diet_core::codec::{encode_message, Message};
use diet_core::data::Persistence;
use diet_core::sched::DataLocal;
use diet_core::sed::{SedConfig, SedHandle};
use diet_core::transport::TcpSedPool;
use diet_core::Obs;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEDS: usize = 3;

struct ModeResult {
    client_bytes: u64,
    makespan_s: f64,
    tarballs: Vec<bytes::Bytes>,
    pulls: u64,
    hits: u64,
    pull_bytes: u64,
}

fn quick_namelist() -> cosmogrid::namelist::Namelist {
    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5");
    nl
}

/// The request batch: same zoom parameters in both modes, varied per
/// request so the batch isn't one repeated simulation.
fn zoom_params(i: usize) -> ([i32; 3], i32) {
    (
        [20 + (i as i32 * 17) % 60, 30 + (i as i32 * 11) % 40, 50],
        1,
    )
}

fn run_mode(persistent: bool, requests: usize) -> ModeResult {
    let shared = Arc::new(Obs::new());
    let seds: Vec<Arc<SedHandle>> = (0..SEDS)
        .map(|i| {
            SedHandle::spawn_with_obs(
                SedConfig::new(&format!("dr/{i}"), 1.0),
                cosmology_service_table(),
                shared.clone(),
            )
        })
        .collect();
    let servers: Vec<_> = seds
        .iter()
        .map(|s| serve_sed_over_tcp(s.clone()).expect("bind"))
        .collect();
    let pool = Arc::new(TcpSedPool::new());
    for (sed, srv) in seds.iter().zip(&servers) {
        pool.register(&sed.config.label, srv.local_addr);
    }
    let la = AgentNode::leaf("LA", seds.clone());
    let ma = MasterAgent::new_with_obs(
        "MA",
        vec![la],
        Arc::new(DataLocal::default()),
        shared.clone(),
    );
    ma.register_catalog(Arc::new(diet_core::dagda::ReplicaCatalog::new()));
    for sed in &seds {
        sed.set_resolver(pool.clone());
    }
    let client = DietClient::initialize_with_obs(ma.clone(), shared.clone());
    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(120),
        max_retries: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..RetryPolicy::default()
    };

    let nl = quick_namelist();
    let mut client_bytes = 0u64;
    let started = Instant::now();
    if persistent {
        // One-time store: the PutData frame is client wire traffic too.
        let blob = namelist_value(&nl);
        client_bytes += encode_message(&Message::PutData {
            request_id: 1,
            id: "nml".into(),
            mode: Persistence::Persistent,
            value: blob.clone(),
        })
        .len() as u64;
        client
            .store_data_over_tcp(
                &pool,
                "dr/0",
                "nml",
                blob,
                Persistence::Persistent,
                Duration::from_secs(10),
            )
            .expect("store shared namelist");
    }
    let mut tarballs = Vec::with_capacity(requests);
    for i in 0..requests {
        let (center, nb_box) = zoom_params(i);
        let profile = if persistent {
            zoom2_profile_ref("nml", 8, 50, center, nb_box)
        } else {
            zoom2_profile(&nl, 8, 50, center, nb_box)
        };
        // Client-side bytes on the wire: the encoded Call frame.
        client_bytes += encode_message(&Message::Call {
            request_id: i as u64,
            ctx: obs::TraceCtx::default(),
            profile: profile.clone(),
        })
        .len() as u64;
        let (out, _) = client
            .call_over_tcp(&pool, profile, &policy)
            .unwrap_or_else(|e| panic!("request {i} lost: {e}"));
        assert_eq!(out.get_i32(8).unwrap(), status::OK);
        let (_, tar) = out.get_file(7).unwrap();
        tarballs.push(tar.clone());
    }
    let makespan_s = started.elapsed().as_secs_f64();

    let m = &shared.metrics;
    let result = ModeResult {
        client_bytes,
        makespan_s,
        tarballs,
        pulls: m.counter_value("diet_data_misses_total"),
        hits: m.counter_value("diet_data_hits_total"),
        pull_bytes: m.counter_value("diet_data_pull_bytes_total"),
    };
    for srv in &servers {
        srv.stop();
    }
    for s in &seds {
        s.shutdown();
    }
    result
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 6 } else { 24 };

    println!("== data reuse vs volatile baseline: {requests} ramsesZoom2 requests over {SEDS} SeDs (TCP) ==");
    let volatile = run_mode(false, requests);
    let reuse = run_mode(true, requests);

    // Identical science: every request's result tarball is byte-identical
    // whether the namelist travelled inline or as a grid-data reference.
    assert_eq!(volatile.tarballs.len(), reuse.tarballs.len());
    for (i, (a, b)) in volatile.tarballs.iter().zip(&reuse.tarballs).enumerate() {
        assert_eq!(a, b, "request {i}: results differ between modes");
    }

    // The whole point: the client ships the shared file once, not per
    // request, so its wire traffic drops.
    assert!(
        reuse.client_bytes < volatile.client_bytes,
        "reuse did not reduce client bytes: {} vs {}",
        reuse.client_bytes,
        volatile.client_bytes
    );
    // The baseline never touches the data path.
    assert_eq!(volatile.pulls + volatile.hits, 0);
    // Reuse resolves every request from the store: local hits after at most
    // one SeD-to-SeD pull per non-hosting SeD.
    assert!(reuse.pulls <= (SEDS as u64 - 1));
    assert_eq!(reuse.hits + reuse.pulls, requests as u64);

    let saved = volatile.client_bytes - reuse.client_bytes;
    println!(
        "  volatile : {:>9} client bytes, makespan {:>7.2}s",
        volatile.client_bytes, volatile.makespan_s
    );
    println!(
        "  reuse    : {:>9} client bytes, makespan {:>7.2}s  ({} SeD-to-SeD pull(s), {} local hits, {} bytes pulled)",
        reuse.client_bytes, reuse.makespan_s, reuse.pulls, reuse.hits, reuse.pull_bytes
    );
    println!(
        "  client wire traffic reduced by {saved} bytes ({:.1}%), results byte-identical",
        100.0 * saved as f64 / volatile.client_bytes as f64
    );

    let csv = format!(
        "mode,requests,client_bytes,makespan_s,sed_pulls,sed_hits,sed_pull_bytes\n\
         volatile,{requests},{},{:.4},{},{},{}\n\
         reuse,{requests},{},{:.4},{},{},{}\n",
        volatile.client_bytes,
        volatile.makespan_s,
        volatile.pulls,
        volatile.hits,
        volatile.pull_bytes,
        reuse.client_bytes,
        reuse.makespan_s,
        reuse.pulls,
        reuse.hits,
        reuse.pull_bytes,
    );
    if let Some(p) = write_artifact("data_reuse.csv", &csv) {
        println!("  wrote {}", p.display());
    }
    println!("\ndata reuse checks passed ({requests} requests per mode, identical outputs)");
}
