//! Closed-loop throughput sweep over the live TCP serving path.
//!
//! Compares two client/serving models on identical hardware and an
//! identical (near-zero-cost) echo service, so the *middleware* is the
//! thing being measured:
//!
//! * `baseline` — one request per connection (dial, call, reply, close):
//!   the regime the pre-change `TcpSedPool` degenerates to under load,
//!   since its one idle slot per label serves at most one of `c`
//!   concurrent callers. This is the gated comparison.
//! * `pooled` — the pre-change one-slot pool with reuse: its serial best
//!   case, reported for context so the reuse upside stays on the record.
//! * `mux` — the pipelined model: every caller shares one multiplexed
//!   connection per SeD; replies are routed by correlation id.
//!
//! Each concurrency level runs `c` closed-loop callers issuing `R`
//! requests each; requests/sec is total/wall, latencies come from the obs
//! histogram registry (p50/p95/p99). A final overload scenario drives an
//! admission-limited SeD far past its queue bound and shows the explicit
//! `Busy` + capped-jittered-backoff path: every request completes, none
//! time out.
//!
//! An idle-connection sweep then holds {1, 256, 2048} established-but-idle
//! connections against the readiness-driven server while a foreground mux
//! workload runs: idle sockets are reactor registrations, not threads, so
//! foreground requests/sec must stay within 10% across the sweep and the
//! process thread count must not grow with the herd. A churn probe
//! (sequential connect → ping → close under the held herd) pins the
//! acceptor's wake-on-readiness latency.
//!
//! Writes `BENCH_throughput.json` (validated with `bench::validate_json`)
//! and exits non-zero if the concurrency-64 speedup is < 2×, the overload
//! run loses/times-out requests, or the idle sweep violates its rps/thread
//! bounds. `--quick` shrinks the sweep for the CI gate.

use cosmogrid::services::serve_sed_over_tcp_with_config;
use diet_core::client::RetryPolicy;
use diet_core::codec::Message;
use diet_core::data::{DietValue, Persistence};
use diet_core::error::DietError;
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};
use diet_core::transport::{Duplex, ServerConfig, TcpSedPool, TcpTransport};
use obs::Registry;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn echo_desc() -> ProfileDesc {
    let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    d.set_arg(1, ArgTag::Scalar).unwrap();
    d
}

fn echo_table() -> ServiceTable {
    let solve: SolveFn = Arc::new(|p: &mut Profile| {
        let x = p.get_i32(0)?;
        p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
        Ok(0)
    });
    let mut t = ServiceTable::init(1);
    t.add(echo_desc(), solve).unwrap();
    t
}

fn echo_profile(x: i32) -> Profile {
    let mut p = Profile::alloc(&echo_desc());
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    p
}

/// The pre-change client. The old `TcpSedPool` kept at most ONE idle
/// connection per label: a caller `remove`d it (or dialed fresh), carried
/// exactly one request on it, and re-inserted it on success — closing
/// whatever another caller had returned meanwhile. So at concurrency `c`
/// only one caller can hold the pooled connection; the other `c-1` dial,
/// which is the one-request-per-connection regime this bench gates on.
///
/// `reuse = true` keeps the one-slot pool (the old design's best case —
/// a lone serial caller that always wins the slot); `reuse = false` is
/// the steady-state concurrent miss path (dial per request).
struct BaselineClient {
    addr: SocketAddr,
    reuse: bool,
    slot: Mutex<Option<TcpTransport>>,
    next_id: AtomicU64,
    dials: AtomicU64,
}

impl BaselineClient {
    fn new(addr: SocketAddr, reuse: bool) -> Self {
        BaselineClient {
            addr,
            reuse,
            slot: Mutex::new(None),
            next_id: AtomicU64::new(0),
            dials: AtomicU64::new(0),
        }
    }

    fn call(&self, profile: Profile, deadline: Duration) -> Result<Profile, DietError> {
        let pooled = if self.reuse {
            self.slot.lock().unwrap().take()
        } else {
            None
        };
        let conn = match pooled {
            Some(c) => c,
            None => {
                self.dials.fetch_add(1, Ordering::Relaxed);
                TcpTransport::connect(self.addr)?
            }
        };
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        conn.send(&Message::Call {
            request_id,
            ctx: obs::TraceCtx::default(),
            profile,
        })?;
        let started = Instant::now();
        loop {
            let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
                return Err(DietError::Timeout {
                    after_secs: deadline.as_secs_f64(),
                });
            };
            match conn.recv_timeout(remaining)? {
                Some(Message::CallReply {
                    request_id: rid,
                    result,
                    ..
                }) if rid == request_id => {
                    if self.reuse {
                        *self.slot.lock().unwrap() = Some(conn);
                    }
                    return result.map_err(DietError::Rejected);
                }
                Some(_) => continue,
                None => {
                    return Err(DietError::Timeout {
                        after_secs: deadline.as_secs_f64(),
                    })
                }
            }
        }
    }
}

struct ModeStats {
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    dials: u64,
    peak_inflight: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// One request per connection: dial, call, reply, close. What the
    /// pre-change pool degenerates to for all but one concurrent caller.
    Baseline,
    /// The pre-change one-slot pool with reuse — its serial best case.
    Pooled,
    /// The multiplexed pool: every caller shares one pipelined connection.
    Mux,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Pooled => "pooled",
            Mode::Mux => "mux",
        }
    }
}

fn run_mode(
    mode: Mode,
    addr: SocketAddr,
    concurrency: usize,
    requests_per_caller: usize,
    registry: &Registry,
) -> ModeStats {
    let c_label = concurrency.to_string();
    let hist = registry.histogram_with(
        "throughput_latency_seconds",
        &[("mode", mode.label()), ("concurrency", &c_label)],
    );

    let pool = Arc::new(TcpSedPool::new());
    pool.register("sed/0", addr);
    let baseline = Arc::new(BaselineClient::new(addr, mode == Mode::Pooled));

    let wall = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|caller| {
            let pool = pool.clone();
            let baseline = baseline.clone();
            let hist = hist.clone();
            std::thread::spawn(move || {
                for j in 0..requests_per_caller {
                    let x = (caller * requests_per_caller + j) as i32;
                    let t = Instant::now();
                    let out = if mode == Mode::Mux {
                        pool.call("sed/0", echo_profile(x), Duration::from_secs(30))
                    } else {
                        baseline.call(echo_profile(x), Duration::from_secs(30))
                    }
                    .unwrap_or_else(|e| panic!("{} request lost: {e}", mode.label()));
                    hist.observe(t.elapsed().as_secs_f64());
                    assert_eq!(out.get_i32(1).unwrap(), x, "mis-correlated echo");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = wall.elapsed().as_secs_f64();
    let total = (concurrency * requests_per_caller) as f64;

    ModeStats {
        rps: total / elapsed,
        p50_ms: hist.p50() * 1e3,
        p95_ms: hist.p95() * 1e3,
        p99_ms: hist.p99() * 1e3,
        dials: if mode == Mode::Mux {
            pool.dials()
        } else {
            baseline.dials.load(Ordering::Relaxed)
        },
        peak_inflight: if mode == Mode::Mux {
            pool.peak_inflight("sed/0")
        } else {
            1
        },
    }
}

struct OverloadStats {
    callers: usize,
    requests: usize,
    busy_bounces: u64,
    timeouts: u64,
    lost: u64,
    sed_busy_total: u64,
}

/// Drive an admission-limited SeD far past its queue bound: every overrun
/// request must bounce with `Busy` and succeed on a later (capped,
/// jittered) retry — the failure mode this replaces is a pile of timeouts.
fn run_overload(quick: bool) -> OverloadStats {
    let sed = SedHandle::spawn(
        SedConfig::new("sed/ov", 1.0).with_admission_limit(4),
        echo_table(),
    );
    sed.faults().set_stall(Duration::from_millis(2));
    let server = serve_sed_over_tcp_with_config(sed.clone(), ServerConfig::default())
        .expect("bind overload server");
    let pool = Arc::new(TcpSedPool::new());
    pool.register("sed/ov", server.local_addr);

    let callers = if quick { 16 } else { 32 };
    let per_caller = if quick { 2 } else { 4 };
    let policy = RetryPolicy {
        max_retries: 40,
        backoff_base: Duration::from_millis(4),
        backoff_cap: Duration::from_millis(100),
        jitter: 0.5,
        ..RetryPolicy::default()
    };

    let busy = Arc::new(AtomicU64::new(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let lost = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..callers)
        .map(|caller| {
            let pool = pool.clone();
            let busy = busy.clone();
            let timeouts = timeouts.clone();
            let lost = lost.clone();
            std::thread::spawn(move || {
                for j in 0..per_caller {
                    let x = (caller * per_caller + j) as i32;
                    let mut attempt = 0u32;
                    loop {
                        match pool.call("sed/ov", echo_profile(x), Duration::from_secs(30)) {
                            Ok(out) => {
                                assert_eq!(out.get_i32(1).unwrap(), x);
                                break;
                            }
                            Err(DietError::Busy) if attempt < policy.max_retries => {
                                busy.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(policy.backoff_jittered(attempt, x as u64 + 1));
                                attempt += 1;
                            }
                            Err(DietError::Timeout { .. }) => {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                                lost.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(_) => {
                                lost.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = OverloadStats {
        callers,
        requests: callers * per_caller,
        busy_bounces: busy.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
        lost: lost.load(Ordering::Relaxed),
        sed_busy_total: sed.obs().metrics.counter_value("diet_sed_busy_total"),
    };
    server.stop();
    sed.shutdown();
    stats
}

struct IdleStats {
    idle: usize,
    rps: f64,
    p99_ms: f64,
    process_threads: usize,
    server_conns: usize,
    churn_p50_ms: f64,
    churn_p99_ms: f64,
}

/// Kernel-reported thread count of this process (clients and server share
/// it here, but the client side contributes a fixed number of threads per
/// sweep level, so growth with the idle herd would be the server's).
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Hold `idle` established connections (each proven live with one
/// ping/pong) while a foreground mux workload runs, then probe accept
/// latency with sequential connect → ping → close churn under the herd.
fn run_idle_sweep(quick: bool) -> Vec<IdleStats> {
    let sed = SedHandle::spawn(SedConfig::new("sed/idle", 1.0), echo_table());
    let server = serve_sed_over_tcp_with_config(
        sed.clone(),
        ServerConfig {
            workers: 8,
            accept_queue: 64,
            faults: None,
            obs: None,
        },
    )
    .expect("bind idle-sweep server");
    let addr = server.local_addr;

    let idle_counts: &[usize] = if quick {
        &[1, 64, 256]
    } else {
        &[1, 256, 2048]
    };
    let concurrency = if quick { 8 } else { 32 };
    let reqs = if quick { 20 } else { 50 };
    let churn_n = if quick { 50 } else { 200 };

    let mut out = Vec::new();
    for &idle in idle_counts {
        let herd: Vec<TcpTransport> = (0..idle)
            .map(|_| {
                let t = TcpTransport::connect(addr).expect("idle dial");
                t.send(&Message::Ping).expect("idle ping");
                match t.recv() {
                    Ok(Message::Pong) => t,
                    other => panic!("idle conn expected Pong, got {other:?}"),
                }
            })
            .collect();
        // Measured here — after the herd is up, before the foreground's
        // transient caller threads — so growth tracks the server side.
        let threads = process_threads();
        let server_conns = server.tracked_connections();

        // One untimed warm-up pass per level (not just once globally): the
        // sweep compares levels against each other, so every level should
        // enter its timed passes equally warm — cold-start costs on the
        // first level, or cache/scheduler drift after a 2048-conn herd-up,
        // would otherwise masquerade as an idle-connection effect.
        run_mode(Mode::Mux, addr, concurrency, reqs, &Registry::new());

        // Median of five foreground passes: the gate compares levels
        // within 10%, tighter than single-run scheduler noise on a shared
        // 1-CPU box.
        let mut passes: Vec<ModeStats> = (0..5)
            .map(|_| run_mode(Mode::Mux, addr, concurrency, reqs, &Registry::new()))
            .collect();
        passes.sort_by(|a, b| a.rps.partial_cmp(&b.rps).unwrap());
        let fg = passes.swap_remove(2);

        let mut churn_ms: Vec<f64> = (0..churn_n)
            .map(|_| {
                let t0 = Instant::now();
                let t = TcpTransport::connect(addr).expect("churn dial");
                t.send(&Message::Ping).expect("churn ping");
                match t.recv() {
                    Ok(Message::Pong) => {}
                    other => panic!("churn expected Pong, got {other:?}"),
                }
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        churn_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

        out.push(IdleStats {
            idle,
            rps: fg.rps,
            p99_ms: fg.p99_ms,
            process_threads: threads,
            server_conns,
            churn_p50_ms: churn_ms[churn_ms.len() / 2],
            churn_p99_ms: churn_ms[(churn_ms.len() * 99 / 100).min(churn_ms.len() - 1)],
        });
        drop(herd);
    }
    server.stop();
    sed.shutdown();
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sweep: &[usize] = if quick { &[1, 8, 64] } else { &[1, 4, 16, 64] };
    let requests_per_caller = if quick { 20 } else { 50 };

    // One SeD for both modes. The server pool is sized so the baseline's
    // 64 concurrent connections are never throttled by admission control —
    // the comparison isolates the client/connection model, and the old
    // server was an unbounded thread-per-connection spawn anyway.
    let sed = SedHandle::spawn(SedConfig::new("sed/0", 1.0), echo_table());
    let server = serve_sed_over_tcp_with_config(
        sed.clone(),
        ServerConfig {
            workers: 96,
            accept_queue: 128,
            faults: None,
            obs: None,
        },
    )
    .expect("bind throughput server");
    let addr = server.local_addr;

    let registry = Registry::new();
    println!("== exp_throughput: closed-loop sweep (R = {requests_per_caller}/caller) ==");
    println!(
        "  {:>11} {:>6} {:>12} {:>9} {:>9} {:>9} {:>7} {:>9}",
        "mode", "conc", "req/s", "p50 ms", "p95 ms", "p99 ms", "dials", "inflight"
    );

    let mut rows = Vec::new();
    for &c in sweep {
        let base = run_mode(Mode::Baseline, addr, c, requests_per_caller, &registry);
        let pooled = run_mode(Mode::Pooled, addr, c, requests_per_caller, &registry);
        let mux = run_mode(Mode::Mux, addr, c, requests_per_caller, &registry);
        for (name, s) in [("baseline", &base), ("pooled", &pooled), ("mux", &mux)] {
            println!(
                "  {:>11} {:>6} {:>12.0} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>9}",
                name, c, s.rps, s.p50_ms, s.p95_ms, s.p99_ms, s.dials, s.peak_inflight
            );
        }
        println!("  {:>11} {:>6} {:>12.2}x", "speedup", c, mux.rps / base.rps);
        rows.push((c, base, pooled, mux));
    }
    server.stop();
    sed.shutdown();

    println!("== exp_throughput: overload (admission limit 4) ==");
    let ov = run_overload(quick);
    println!(
        "  {} callers, {} requests: {} Busy bounces ({} observed SeD-side), {} timeouts, {} lost",
        ov.callers, ov.requests, ov.busy_bounces, ov.sed_busy_total, ov.timeouts, ov.lost
    );

    println!("== exp_throughput: idle-connection sweep (foreground mux) ==");
    let idle_rows = run_idle_sweep(quick);
    println!(
        "  {:>6} {:>12} {:>9} {:>8} {:>10} {:>11} {:>11}",
        "idle", "req/s", "p99 ms", "threads", "srv conns", "churn p50", "churn p99"
    );
    for r in &idle_rows {
        println!(
            "  {:>6} {:>12.0} {:>9.3} {:>8} {:>10} {:>9.3}ms {:>9.3}ms",
            r.idle,
            r.rps,
            r.p99_ms,
            r.process_threads,
            r.server_conns,
            r.churn_p50_ms,
            r.churn_p99_ms
        );
    }

    // ---- artifact ----
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n  \"experiment\": \"throughput\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str(&format!(
        "  \"requests_per_caller\": {requests_per_caller},\n  \"sweep\": [\n"
    ));
    for (i, (c, base, pooled, mux)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"concurrency\": {c}, \
             \"baseline\": {{\"rps\": {:.1}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"dials\": {}}}, \
             \"pooled\": {{\"rps\": {:.1}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"dials\": {}}}, \
             \"mux\": {{\"rps\": {:.1}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"dials\": {}, \"peak_inflight\": {}}}, \
             \"speedup\": {:.3}}}{}\n",
            base.rps, base.p50_ms, base.p95_ms, base.p99_ms, base.dials,
            pooled.rps, pooled.p50_ms, pooled.p95_ms, pooled.p99_ms, pooled.dials,
            mux.rps, mux.p50_ms, mux.p95_ms, mux.p99_ms, mux.dials, mux.peak_inflight,
            mux.rps / base.rps,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"overload\": {{\"callers\": {}, \"requests\": {}, \"busy_bounces\": {}, \
         \"sed_busy_total\": {}, \"timeouts\": {}, \"lost\": {}}},\n",
        ov.callers, ov.requests, ov.busy_bounces, ov.sed_busy_total, ov.timeouts, ov.lost
    ));
    json.push_str("  \"idle_sweep\": [\n");
    for (i, r) in idle_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"idle_connections\": {}, \"foreground_rps\": {:.1}, \
             \"foreground_p99_ms\": {:.4}, \"process_threads\": {}, \
             \"server_tracked_conns\": {}, \"churn_p50_ms\": {:.4}, \
             \"churn_p99_ms\": {:.4}}}{}\n",
            r.idle,
            r.rps,
            r.p99_ms,
            r.process_threads,
            r.server_conns,
            r.churn_p50_ms,
            r.churn_p99_ms,
            if i + 1 == idle_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    bench::validate_json(&json).expect("generated artifact is not valid JSON");

    let path = if quick {
        bench::artifact_dir().join("BENCH_throughput_quick.json")
    } else {
        std::path::PathBuf::from("BENCH_throughput.json")
    };
    std::fs::write(&path, &json).expect("failed to write artifact");
    println!("wrote {}", path.display());

    // ---- self-checks (the CI gate runs this binary) ----
    let (_, base64, _, mux64) = rows
        .iter()
        .find(|(c, _, _, _)| *c == 64)
        .expect("sweep includes concurrency 64");
    let speedup = mux64.rps / base64.rps;
    let mut failed = false;
    if speedup < 2.0 {
        eprintln!("FAIL: concurrency-64 speedup {speedup:.2}x < 2.0x");
        failed = true;
    }
    if mux64.peak_inflight < 8 {
        eprintln!(
            "FAIL: mux peak in-flight {} < 8 — pipelining not engaged",
            mux64.peak_inflight
        );
        failed = true;
    }
    if ov.busy_bounces == 0 || ov.sed_busy_total == 0 {
        eprintln!("FAIL: overload run never produced a Busy rejection");
        failed = true;
    }
    if ov.timeouts > 0 || ov.lost > 0 {
        eprintln!(
            "FAIL: overload run lost {} requests ({} timeouts) — backpressure did not hold",
            ov.lost, ov.timeouts
        );
        failed = true;
    }

    // Idle-herd gates. Full mode holds the headline 10% bound; quick mode
    // (CI on a shared 1-CPU runner) keeps a looser 30% sanity band so
    // scheduler noise can't flake the gate while regressions that matter
    // (thread-per-connection relapse, O(conns) scans) still trip it.
    let rps_min = idle_rows
        .iter()
        .map(|r| r.rps)
        .fold(f64::INFINITY, f64::min);
    let rps_max = idle_rows.iter().map(|r| r.rps).fold(0.0, f64::max);
    let rps_floor = if quick { 0.70 } else { 0.90 };
    if rps_min < rps_floor * rps_max {
        eprintln!(
            "FAIL: foreground rps varies {rps_min:.0}..{rps_max:.0} across idle herd — \
             idle connections are not free (floor {rps_floor})"
        );
        failed = true;
    }
    let t_first = idle_rows.first().map(|r| r.process_threads).unwrap_or(0);
    let t_last = idle_rows.last().map(|r| r.process_threads).unwrap_or(0);
    if t_first > 0 && t_last > t_first + 4 {
        eprintln!(
            "FAIL: process threads grew {t_first} -> {t_last} with the idle herd — \
             serving is not O(workers)"
        );
        failed = true;
    }
    for r in &idle_rows {
        if r.server_conns < r.idle {
            eprintln!(
                "FAIL: server tracks {} conns with {} idle held — registrations lost",
                r.server_conns, r.idle
            );
            failed = true;
        }
        if r.churn_p99_ms > 1000.0 {
            eprintln!(
                "FAIL: churn p99 {:.1}ms at {} idle — acceptor starved",
                r.churn_p99_ms, r.idle
            );
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: {speedup:.2}x at concurrency 64; overload drained via Busy+backoff; \
         idle herd {}..{} conns holds rps within {:.0}% (threads {t_first} -> {t_last})",
        idle_rows.first().map(|r| r.idle).unwrap_or(0),
        idle_rows.last().map(|r| r.idle).unwrap_or(0),
        (1.0 - rps_min / rps_max.max(1.0)) * 100.0
    );
}
