//! E1 — the campaign headline numbers of Section 5.2.
//!
//! Regenerates the paper's reported totals: part-1 duration, part-2 mean,
//! the 16h18m43s makespan, the >141h sequential baseline and the implied
//! speedup, plus the ~70 ms overhead decomposition.

use bench::{duration_row, ms_row, render_rows, Row};
use cosmogrid::campaign::{run_campaign, CampaignConfig};

fn main() {
    let r = run_campaign(CampaignConfig::default());

    let rows = vec![
        duration_row("part 1 duration", 4511.0, r.part1_s, 0.20),
        duration_row("part 2 mean duration", 5041.0, r.part2_mean_s, 0.10),
        duration_row("campaign makespan", 58723.0, r.makespan, 0.10),
        Row {
            quantity: "sequential baseline",
            paper: ">141h".into(),
            measured: cosmogrid::campaign::fmt_hms(r.sequential_s),
            ok: r.sequential_s > 141.0 * 3600.0,
        },
        Row {
            quantity: "speedup",
            paper: "~8.6x".into(),
            measured: format!("{:.1}x", r.speedup()),
            ok: r.speedup() > 7.0,
        },
        ms_row("finding time mean", 49.8, r.finding_mean, 0.10),
        ms_row("overhead per request", 70.6, r.overhead_mean, 0.25),
        Row {
            quantity: "total overhead (101 req)",
            paper: "~7 s".into(),
            measured: format!("{:.1} s", r.overhead_mean * 101.0),
            ok: r.overhead_mean * 101.0 < 15.0,
        },
    ];
    print!(
        "{}",
        render_rows("E1: campaign totals (Section 5.2)", &rows)
    );
    assert!(rows.iter().all(|r| r.ok), "E1 shape check failed");
    println!("\nall E1 shape checks passed");
}
