//! E10 — Figure 2 (qualitative): "Time sequence (from left to right) of the
//! projected density field in a cosmological simulation (large scale
//! periodic box)." Runs the real pipeline and renders the projected density
//! at three epochs as ASCII maps, checking that structure (density contrast)
//! grows through cosmic time — the visual the paper opens with.

use grafic::CosmoParams;
use ramses::nbody::{RunParams, Simulation};
use ramses::particles::cic_deposit;

const SHADES: &[u8] = b" .:-=+*#%@";

fn render_projection(snap: &ramses::nbody::Snapshot, n: usize) -> (String, f64) {
    // Project the CIC density along z.
    let rho = cic_deposit(&snap.particles, n);
    let mut proj = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                proj[i * n + j] += rho.get(i, j, k);
            }
        }
    }
    for v in proj.iter_mut() {
        *v /= n as f64;
    }
    let max = proj.iter().cloned().fold(0.0f64, f64::max);
    let mut art = String::new();
    for j in 0..n {
        for i in 0..n {
            // Log stretch like the paper's grayscale images.
            let v = proj[i * n + j].max(1e-3);
            let frac = (v.ln() - (1e-3f64).ln()) / (max.max(1.0).ln() - (1e-3f64).ln());
            let idx = ((frac.clamp(0.0, 1.0)) * (SHADES.len() - 1) as f64) as usize;
            art.push(SHADES[idx] as char);
            art.push(SHADES[idx] as char);
        }
        art.push('\n');
    }
    (art, max)
}

fn main() {
    println!("E10: Figure 2 — time sequence of the projected density field\n");
    let cosmo = CosmoParams {
        a_init: 0.1,
        ..CosmoParams::default()
    };
    let n = 16;
    let mesh = 32;
    let ics = grafic::generate_single_level(&cosmo, n, 100.0, 2007);
    let params = RunParams {
        cosmo,
        box_mpc_h: 100.0,
        mesh_n: mesh,
        a_end: 1.0,
        aout: vec![0.3, 0.6],
        max_steps: 800,
        ..RunParams::default()
    };
    let mut sim = Simulation::from_ics(params, &ics.particles);
    let snaps = sim.run();

    let mut contrasts = Vec::new();
    for snap in &snaps {
        let (art, max) = render_projection(snap, 16);
        let z = 1.0 / snap.a - 1.0;
        println!(
            "-- a = {:.2} (z = {:.1}), projected density max = {max:.1} --",
            snap.a, z
        );
        println!("{art}");
        contrasts.push(max);
    }

    println!("density contrast sequence: {contrasts:?}");
    assert!(snaps.len() >= 3, "expected three epochs");
    assert!(
        contrasts.windows(2).all(|w| w[1] > w[0]),
        "projected density contrast must grow through the sequence"
    );
    println!(
        "\nhigh-density peaks emerge from the near-uniform initial field —\n\
         the paper's Figure 2 sequence; those peaks are the dark-matter halos\n\
         the zoom step re-simulates."
    );
    println!("E10 shape checks passed (structure grows left to right)");
}
