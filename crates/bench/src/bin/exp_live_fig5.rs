//! Live Figure 5 — finding time and request latency per request, measured
//! on the real middleware (TCP sockets, SeD workers, retry engine) instead
//! of the campaign simulator, from the observability layer's own traces.
//!
//! The paper's Figure 5 plots both series over the 100 sub-simulations as
//! recorded by LogService; here the vendored `obs` subsystem plays that
//! role: every request carries one trace id end to end, the client/SeD/MA
//! registries feed Prometheus-style counters and histograms, and the span
//! ring buffer exports a Chrome `trace_event` timeline. A SeD is killed
//! mid-campaign so the resubmission path shows up in the counters, exactly
//! like the Grid'5000 node deaths the paper reports.
//!
//! Artifacts (target/experiments/): `live_fig5_finding.csv`,
//! `live_fig5_latency.csv`, `live_metrics.prom`, `live_trace.json`.

use bench::{render_series, series_csv, validate_json, write_artifact};
use cosmogrid::campaign::gantt_from_spans;
use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{cosmology_service_table, serve_sed_over_tcp, status, zoom1_profile};
use diet_core::agent::{AgentNode, HeartbeatMonitor, MasterAgent};
use diet_core::client::{DietClient, RetryPolicy};
use diet_core::sched::RoundRobin;
use diet_core::sed::{SedConfig, SedHandle};
use diet_core::transport::TcpSedPool;
use diet_core::Obs;
use gridsim::trace::TraceKind;
use obs::chrome_trace;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

const REQUESTS: u32 = 100;
const SEDS: usize = 5;
const PHASES: [&str; 5] = [
    "Finding",
    "Submission",
    "Queued",
    "Execution",
    "ResultReturn",
];

fn quick_profile() -> diet_core::profile::Profile {
    // Instant turnaround (BAD_RESOLUTION) — every measured cost is
    // middleware, which is what Figure 5 plots.
    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5");
    zoom1_profile(&nl, 7)
}

fn main() {
    // One shared sink: client, MA, heartbeats and every SeD trace into the
    // same ring buffer and registry, like one LogService feed.
    let shared = Arc::new(Obs::new());

    let seds: Vec<Arc<SedHandle>> = (0..SEDS)
        .map(|i| {
            SedHandle::spawn_with_obs(
                SedConfig::new(&format!("live/{i}"), 1.0),
                cosmology_service_table(),
                shared.clone(),
            )
        })
        .collect();
    let servers: Vec<_> = seds
        .iter()
        .map(|s| serve_sed_over_tcp(s.clone()).expect("bind"))
        .collect();
    let pool = TcpSedPool::new();
    for (sed, srv) in seds.iter().zip(&servers) {
        pool.register(&sed.config.label, srv.local_addr);
    }

    let la = AgentNode::leaf("LA", seds.clone());
    let ma = MasterAgent::new_with_obs("MA", vec![la], Arc::new(RoundRobin::new()), shared.clone());
    let monitor = HeartbeatMonitor::spawn(
        ma.clone(),
        Duration::from_millis(20),
        Duration::from_millis(200),
        3,
    );
    let client = DietClient::initialize_with_obs(ma.clone(), shared.clone());

    // A mid-campaign node death, as on Grid'5000.
    seds[SEDS - 1].faults().kill_at_request(8);

    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(10),
        max_retries: 3,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        ..RetryPolicy::default()
    };

    let mut finding = Vec::with_capacity(REQUESTS as usize);
    let mut latency = Vec::with_capacity(REQUESTS as usize);
    let mut request_of: HashMap<u64, u32> = HashMap::new();
    for req in 1..=REQUESTS {
        let (out, stats) = client
            .call_over_tcp(&pool, quick_profile(), &policy)
            .unwrap_or_else(|e| panic!("request {req} lost: {e}"));
        assert_eq!(out.get_i32(3).unwrap(), status::BAD_RESOLUTION);
        finding.push((req, stats.finding));
        latency.push((req, stats.latency()));
        request_of.insert(stats.trace_id, req);
    }
    // The burst can drain faster than the first heartbeat interval; let the
    // monitor complete at least one probe round before reading its counters.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while shared.metrics.counter_value("diet_heartbeat_beats_total") == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "heartbeat monitor never probed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    monitor.stop();

    // ---------------------------------------------------------- exporters
    let spans = shared.tracer.snapshot();
    let prom = obs::render_prometheus_multi(&[&shared.metrics]);
    let trace_json = chrome_trace(&spans);
    validate_json(&trace_json).expect("chrome trace must be well-formed JSON");

    // The dump-metrics request over the live TCP transport returns the same
    // registry text a LogService tail would.
    let wire_dump = pool
        .dump_metrics(&seds[0].config.label, Duration::from_secs(5))
        .expect("dump-metrics over TCP");
    assert!(wire_dump.contains("diet_sed_solves_total"));

    // Every request's spans share one trace id covering all five phases.
    let mut phases_by_trace: HashMap<u64, HashSet<&str>> = HashMap::new();
    for s in &spans {
        if request_of.contains_key(&s.trace_id) {
            phases_by_trace
                .entry(s.trace_id)
                .or_default()
                .insert(s.name);
        }
    }
    for (&trace_id, &req) in &request_of {
        let seen = &phases_by_trace[&trace_id];
        for p in PHASES {
            assert!(seen.contains(p), "request {req} trace missing phase {p}");
        }
    }

    // Registry shape: the counters and histograms the acceptance demands.
    let m = &shared.metrics;
    assert_eq!(
        m.counter_value("diet_client_requests_total"),
        REQUESTS as u64
    );
    assert!(m.counter_value("diet_client_resubmissions_total") >= 1);
    assert!(m.counter_value("diet_heartbeat_beats_total") > 0);
    assert!(m.counter_value("diet_sed_solves_total") >= REQUESTS as u64);
    for h in ["diet_client_finding_seconds", "diet_client_latency_seconds"] {
        assert!(
            prom.contains(&format!("{h}_count")) && !prom.contains(&format!("{h}_count 0")),
            "{h} histogram must have non-zero count"
        );
    }

    // ---------------------------------------------------------- reporting
    let fh = m.histogram("diet_client_finding_seconds");
    let lh = m.histogram("diet_client_latency_seconds");
    println!("== live Figure 5: {REQUESTS} requests over {SEDS} SeDs (TCP) ==");
    println!(
        "  finding  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        fh.p50() * 1e3,
        fh.p95() * 1e3,
        fh.p99() * 1e3
    );
    println!(
        "  latency  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        lh.p50() * 1e3,
        lh.p95() * 1e3,
        lh.p99() * 1e3
    );
    println!(
        "  resubmissions {}  seds deregistered {}  spans {} (dropped {})",
        m.counter_value("diet_client_resubmissions_total"),
        m.counter_value("diet_ma_sed_deregistered_total"),
        spans.len(),
        shared.tracer.dropped()
    );

    // The simulator's Gantt analysis works unchanged on the live spans.
    let gantt = gantt_from_spans(&spans, &request_of);
    assert_eq!(
        gantt.per_request(TraceKind::Execution).len(),
        REQUESTS as usize
    );
    println!(
        "\n  live gantt: makespan {:.3} s, per-SeD requests:",
        gantt.makespan()
    );
    for s in gantt.sed_summaries() {
        println!(
            "    {:<10} {:>3} requests, busy {:.3} ms",
            s.resource,
            s.requests,
            s.busy * 1e3
        );
    }

    let head = &finding[..8.min(finding.len())];
    println!("\n  first requests (finding time):");
    print!("{}", render_series(("request", "finding"), head, 1e3, "ms"));

    for (name, header, series) in [
        ("live_fig5_finding.csv", ("request", "finding_s"), &finding),
        ("live_fig5_latency.csv", ("request", "latency_s"), &latency),
    ] {
        if let Some(p) = write_artifact(name, &series_csv(header, series)) {
            println!("  wrote {}", p.display());
        }
    }
    if let Some(p) = write_artifact("live_metrics.prom", &prom) {
        println!("  wrote {}", p.display());
    }
    if let Some(p) = write_artifact("live_trace.json", &trace_json) {
        println!("  wrote {}", p.display());
    }

    for srv in &servers {
        srv.stop();
    }
    for s in &seds[..SEDS - 1] {
        s.shutdown();
    }
    println!("\nlive Figure 5 shape checks passed (all {REQUESTS} requests traced end to end)");
}
