//! E14 — durable campaign jobserver: `kill -9` mid-campaign, restart,
//! prove zero recomputation of completed work and bounded recovery.
//!
//! The parent deploys a real MA + SeD fleet over TCP with a counting
//! `echo` service (every solve of input `x` is tallied), then launches
//! the `diet_jobserver` binary as a separate OS process pointed at that
//! hierarchy. A campaign of N tasks is submitted over the wire; once a
//! third of it is done, the jobserver is killed with SIGKILL — no
//! shutdown path, possibly a torn WAL record. A fresh process on the same
//! directory must replay the log, keep every logged-Done task done, and
//! finish the remainder.
//!
//! Gates:
//!   * the campaign drains: done == N, failed == 0;
//!   * zero recomputation — no task that was logged Done before the kill
//!     was ever solved again (solve tallies stay at 1);
//!   * recovery is bounded — the restarted server answers an attach
//!     within the recovery budget;
//!   * the kill landed mid-run (0 < done-before-kill < N), else the
//!     experiment proved nothing.
//!
//! Writes `BENCH_jobserver.json` (validated with `bench::validate_json`);
//! `--quick` shrinks the campaign for CI and writes to the artifact dir.

use diet_core::data::{DietValue, Persistence};
use diet_core::deploy::TcpTopologySpec;
use diet_core::jobserver::{JobClient, TaskPayload, TaskState};
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sched::RoundRobin;
use diet_core::sed::{ServiceTable, SolveFn};
use std::collections::{HashMap, HashSet};
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type SolveCounts = Arc<Mutex<HashMap<i32, u32>>>;

fn counting_table(counts: &SolveCounts, delay: Duration) -> ServiceTable {
    let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let counts = counts.clone();
    let solve: SolveFn = Arc::new(move |p: &mut Profile| {
        let x = p.get_i32(0)?;
        *counts.lock().unwrap().entry(x).or_insert(0) += 1;
        std::thread::sleep(delay);
        p.set(1, DietValue::ScalarI32(x + 1), Persistence::Volatile)?;
        Ok(0)
    });
    let mut t = ServiceTable::init(2);
    t.add(d, solve).unwrap();
    t
}

fn call_task(x: i32) -> TaskPayload {
    let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let mut p = Profile::alloc(&d);
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    TaskPayload::Call(p)
}

/// Launch `diet_jobserver` (a sibling binary in the same target dir) and
/// scrape its bound address from stdout.
fn spawn_jobserver(
    dir: &std::path::Path,
    ma: SocketAddr,
    seds: &[(String, SocketAddr)],
) -> (Child, SocketAddr) {
    let exe = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("target dir")
        .join("diet_jobserver");
    assert!(
        exe.exists(),
        "{} not built — build the diet_jobserver bin first",
        exe.display()
    );
    let mut cmd = Command::new(exe);
    cmd.arg("--dir")
        .arg(dir)
        .arg("--ma")
        .arg(ma.to_string())
        .arg("--snapshot-every")
        .arg("64")
        .arg("--heartbeat-ms")
        .arg("200")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (label, addr) in seds {
        cmd.arg("--sed").arg(format!("{label}={addr}"));
    }
    let mut child = cmd.spawn().expect("spawn diet_jobserver");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("jobserver exited before announcing its address")
        .expect("read jobserver stdout");
    let addr = line
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("cannot parse jobserver address from {line:?}"));
    // Drain any further output so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    (child, addr)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: i32 = if quick { 48 } else { 240 };
    let solve_delay = Duration::from_millis(if quick { 8 } else { 5 });
    let recovery_budget_ms: u128 = 15_000;

    println!("E14: durable jobserver crash recovery — {n} tasks, SIGKILL at ~1/3 done\n");

    // Real hierarchy in this process: MA + 3 SeDs over TCP.
    let counts: SolveCounts = Arc::new(Mutex::new(HashMap::new()));
    let d = TcpTopologySpec::chain(1, 3)
        .deploy(Arc::new(RoundRobin::new()), |_| {
            counting_table(&counts, solve_delay)
        })
        .expect("deploy hierarchy");
    let seds: Vec<(String, SocketAddr)> = d
        .pool
        .labels()
        .into_iter()
        .map(|l| {
            let a = d.pool.endpoint(&l).expect("endpoint");
            (l, a)
        })
        .collect();
    let ma_addr = d.ma_server.local_addr;
    let dir = std::env::temp_dir().join(format!("diet-exp-jobserver-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    // ---- phase 1: run until ~1/3 done, then SIGKILL ----------------------
    let t0 = Instant::now();
    let (mut child, addr) = spawn_jobserver(&dir, ma_addr, &seds);
    let client = JobClient::with_timeout(addr, Duration::from_secs(5));
    let (cid, _ids) = client
        .submit_tasks("crash-campaign", (0..n).map(call_task).collect())
        .expect("submit");

    let kill_at = n as u64 / 3;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = client.attach("crash-campaign").expect("attach");
        if s.done >= kill_at {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "campaign never reached {kill_at} done"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // What the log says is durably Done right now. The kill may land after
    // further completions — read the feed again post-mortem for the true
    // "done before kill" set; this pre-kill snapshot only gates progress.
    child.kill().expect("SIGKILL jobserver");
    let _ = child.wait();
    let phase1_ms = t0.elapsed().as_millis();

    // Post-mortem: replay the WAL offline to learn exactly which tasks the
    // dead server had logged Done. (Reading the file is safe — the process
    // is gone.) This is the recomputation baseline.
    let done_before: HashSet<u64> = {
        use diet_core::Obs;
        let probe = diet_core::JobStore::open(
            &dir,
            diet_core::JobStoreConfig::default(),
            Arc::new(Obs::new()),
        )
        .expect("offline replay of the dead server's log");
        (0..n as u64)
            .filter(|&tid| probe.task_status(cid, tid).map(|t| t.state) == Some(TaskState::Done))
            .collect()
    };
    let solves_at_kill: HashMap<i32, u32> = counts.lock().unwrap().clone();
    println!(
        "  killed jobserver at {} / {n} logged done ({} solves started)",
        done_before.len(),
        solves_at_kill.len()
    );

    // ---- phase 2: restart on the same dir, recover, finish ---------------
    let t1 = Instant::now();
    let (mut child2, addr2) = spawn_jobserver(&dir, ma_addr, &seds);
    let client2 = JobClient::with_timeout(addr2, Duration::from_secs(5));
    let att = client2
        .attach("crash-campaign")
        .expect("attach after restart");
    let recovery_ms = t1.elapsed().as_millis();
    assert_eq!(att.campaign_id, cid, "campaign lost in restart");

    let (summary, events) = client2
        .wait(cid, Duration::from_millis(10), Duration::from_secs(120))
        .expect("campaign never finished after restart");
    let phase2_ms = t1.elapsed().as_millis();
    child2.kill().expect("stop jobserver");
    let _ = child2.wait();

    // ---- analysis --------------------------------------------------------
    let final_counts = counts.lock().unwrap().clone();
    // Recomputed = a task the dead server had logged Done that was solved
    // AGAIN after the kill (comparing against the at-kill tallies, so
    // phase-1 in-round retries can't masquerade as recovery recompute).
    let recomputed: Vec<u64> = done_before
        .iter()
        .copied()
        .filter(|&tid| {
            let x = tid as i32;
            final_counts.get(&x).copied().unwrap_or(0)
                > solves_at_kill.get(&x).copied().unwrap_or(0)
        })
        .collect();
    let max_solves = final_counts.values().copied().max().unwrap_or(0);
    let resubmissions = summary.resubmissions;
    let wal_bytes = std::fs::metadata(dir.join("wal.log"))
        .map(|m| m.len())
        .unwrap_or(0);
    let snapshot_bytes = std::fs::metadata(dir.join("snapshot.bin"))
        .map(|m| m.len())
        .unwrap_or(0);
    let done_events = events.iter().filter(|e| e.state == TaskState::Done).count();

    println!(
        "  recovered in {recovery_ms} ms; finished {}/{} ({} failed)",
        summary.done, n, summary.failed
    );
    println!(
        "  done-before-kill {} | recomputed {} | max solves/task {} | resubmissions {}",
        done_before.len(),
        recomputed.len(),
        max_solves,
        resubmissions
    );
    println!("  wal {wal_bytes} B, snapshot {snapshot_bytes} B, {done_events} Done events in feed");

    // ---- artifact --------------------------------------------------------
    let mut json = String::from("{\n  \"experiment\": \"jobserver\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"tasks\": {n},\n"));
    json.push_str(&format!("  \"done_before_kill\": {},\n", done_before.len()));
    json.push_str(&format!("  \"done\": {},\n", summary.done));
    json.push_str(&format!("  \"failed\": {},\n", summary.failed));
    json.push_str(&format!("  \"recomputed\": {},\n", recomputed.len()));
    json.push_str(&format!("  \"max_solves_per_task\": {max_solves},\n"));
    json.push_str(&format!("  \"resubmissions\": {resubmissions},\n"));
    json.push_str(&format!("  \"recovery_ms\": {recovery_ms},\n"));
    json.push_str(&format!("  \"phase1_ms\": {phase1_ms},\n"));
    json.push_str(&format!("  \"phase2_ms\": {phase2_ms},\n"));
    json.push_str(&format!("  \"wal_bytes\": {wal_bytes},\n"));
    json.push_str(&format!("  \"snapshot_bytes\": {snapshot_bytes}\n}}\n"));
    bench::validate_json(&json).expect("generated artifact is not valid JSON");

    let path = if quick {
        bench::artifact_dir().join("BENCH_jobserver_quick.json")
    } else {
        std::path::PathBuf::from("BENCH_jobserver.json")
    };
    std::fs::write(&path, &json).expect("failed to write artifact");
    println!("wrote {}", path.display());

    // ---- gates -----------------------------------------------------------
    let mut failed = false;
    if summary.done != n as u64 || summary.failed != 0 {
        eprintln!(
            "FAIL: campaign did not drain — done {}/{n}, failed {}",
            summary.done, summary.failed
        );
        failed = true;
    }
    if !recomputed.is_empty() {
        eprintln!(
            "FAIL: {} tasks logged Done before the kill were solved again: {:?}",
            recomputed.len(),
            &recomputed[..recomputed.len().min(8)]
        );
        failed = true;
    }
    if done_before.is_empty() || done_before.len() >= n as usize {
        eprintln!(
            "FAIL: kill landed outside the campaign ({} of {n} done) — nothing proven",
            done_before.len()
        );
        failed = true;
    }
    if recovery_ms > recovery_budget_ms {
        eprintln!("FAIL: recovery took {recovery_ms} ms (budget {recovery_budget_ms} ms)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: SIGKILL at {}/{n} done; restart recovered in {recovery_ms} ms, \
         finished {}/{n} with 0 recomputed completions",
        done_before.len(),
        summary.done
    );
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
