//! Kernel-scaling baseline: wall-clock of the hot compute kernels versus
//! thread count (DESIGN.md §8, threading model).
//!
//! Sweeps the pool width over {1, 2, 4, 8} via `ThreadPool::install` and
//! times the Poisson multigrid solve, the CIC deposit + force interpolation,
//! one Godunov hydro step, and a 3-D FFT roundtrip. Each kernel reports the
//! median of several repetitions plus the speedup relative to one thread,
//! and a rotate-XOR checksum over the output bits — asserted identical at
//! every width, pinning the pool's bitwise-determinism guarantee at the
//! benchmark level too.
//!
//! Writes `BENCH_kernels.json`. Note: speedups are only meaningful when the
//! host exposes real cores; the artifact records `available_parallelism` so
//! readers can judge (a 1-CPU container reports ~1.0x throughout — the
//! sweep still validates determinism and oversubscription safety there).
//!
//! `--quick` runs a reduced sweep (16-cubed, threads {1, 2}, fewer reps)
//! into `target/experiments/` and validates the JSON artifact, as a CI
//! smoke test.

use bench::validate_json;
use grafic::fft::{Complex, Direction, Grid3};
use grafic::CosmoParams;
use ramses::hydro::{HydroGrid, Prim, Riemann, GAMMA_DEFAULT};
use ramses::particles::{cic_deposit, cic_interp_force, Mesh, Particles};
use ramses::poisson::{
    gradient_force, residual_mesh, residual_unblocked, smooth_sweep, smooth_sweep_unblocked, solve,
    MgConfig,
};
use std::time::Instant;

/// Order-sensitive checksum over f64 bit patterns: any single-bit change in
/// any value, or any reordering, changes the digest.
fn checksum(vals: impl Iterator<Item = f64>) -> u64 {
    vals.fold(0u64, |h, v| h.rotate_left(1) ^ v.to_bits())
}

struct Sample {
    threads: usize,
    median_ns: u128,
    check: u64,
}

/// Time `op` at each pool width: `reps` timed runs per width (after one
/// warm-up), keeping the median and the output checksum.
fn sweep(threads: &[usize], reps: usize, mut op: impl FnMut() -> u64) -> Vec<Sample> {
    threads
        .iter()
        .map(|&t| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("pool build cannot fail");
            pool.install(|| {
                let mut check = op(); // warm-up (also seeds the checksum)
                let mut times: Vec<u128> = (0..reps)
                    .map(|_| {
                        let t0 = Instant::now();
                        check = op();
                        t0.elapsed().as_nanos()
                    })
                    .collect();
                times.sort_unstable();
                Sample {
                    threads: t,
                    median_ns: times[times.len() / 2],
                    check,
                }
            })
        })
        .collect()
}

fn fixture_source(n: usize) -> Mesh {
    let mut s = Mesh::zeros(n);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let x = (i as f64 + 0.5) / n as f64;
                let y = (j as f64 + 0.5) / n as f64;
                let z = (k as f64 + 0.5) / n as f64;
                let ix = s.idx(i, j, k);
                s.data[ix] = (2.0 * std::f64::consts::PI * x).sin()
                    * (4.0 * std::f64::consts::PI * y).cos()
                    + (6.0 * std::f64::consts::PI * z).sin();
            }
        }
    }
    s
}

struct KernelReport {
    name: &'static str,
    samples: Vec<Sample>,
}

impl KernelReport {
    fn checks_consistent(&self) -> bool {
        self.samples.windows(2).all(|w| w[0].check == w[1].check)
    }

    fn to_json(&self) -> String {
        let base = self.samples[0].median_ns.max(1) as f64;
        let rows: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                format!(
                    "{{\"threads\": {}, \"median_ns\": {}, \"speedup\": {:.3}}}",
                    s.threads,
                    s.median_ns,
                    base / s.median_ns.max(1) as f64
                )
            })
            .collect();
        format!(
            "{{\"name\": \"{}\", \"checksum_consistent\": {}, \"results\": [{}]}}",
            self.name,
            self.checks_consistent(),
            rows.join(", ")
        )
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, threads, reps): (usize, &[usize], usize) = if quick {
        (16, &[1, 2], 2)
    } else {
        (32, &[1, 2, 4, 8], 5)
    };

    println!("== kernel scaling: n = {n}, threads = {threads:?}, {reps} reps ==");

    let cosmo = CosmoParams::default();
    let parts = Particles::from_ics(
        &grafic::generate_single_level(&cosmo, n, 100.0, 7).particles,
        100.0,
    );
    let source = fixture_source(n);
    let mg = MgConfig::default();

    let mut reports = Vec::new();

    // Poisson multigrid solve (smooth/residual/restrict/prolong stack).
    reports.push(KernelReport {
        name: "poisson_mg",
        samples: sweep(threads, reps, || {
            let sol = solve(&source, &mg);
            checksum(sol.phi.data.iter().copied())
        }),
    });

    // CIC deposit + gradient force + interpolation back to particles — the
    // particle half of one PM gravity evaluation.
    let phi = solve(&source, &mg).phi;
    let accel = gradient_force(&phi);
    reports.push(KernelReport {
        name: "nbody_cic",
        samples: sweep(threads, reps, || {
            let rho = cic_deposit(&parts, n);
            let f = cic_interp_force(&parts, &accel);
            checksum(
                rho.data
                    .iter()
                    .copied()
                    .chain(f.iter().flat_map(|a| a.iter().copied())),
            )
        }),
    });

    // One Godunov step on a smooth over-pressured sphere.
    let gas0 = HydroGrid::from_fn(n, GAMMA_DEFAULT, |x| {
        let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2) + (x[2] - 0.5).powi(2);
        Prim {
            rho: 1.0,
            vel: [0.0; 3],
            p: if r2 < 0.05 { 1.0 } else { 0.1 },
        }
    });
    reports.push(KernelReport {
        name: "hydro_step",
        samples: sweep(threads, reps, || {
            let mut gas = gas0.clone();
            let dt = gas.max_dt(0.4);
            gas.step(dt, Riemann::Hllc);
            checksum(
                gas.cells
                    .iter()
                    .flat_map(|c| [c.rho, c.mom[0], c.mom[1], c.mom[2], c.e].into_iter()),
            )
        }),
    });

    // Cache-blocked, wrap-free smoother + residual versus the pre-tiling
    // reference (full-width loops, per-cell `% n` neighbour indexing): the
    // same fixture on a larger mesh (where row working sets exceed L1),
    // 4 red-black sweeps plus one residual per rep. The checksum covers the
    // smoothed mesh and the residual, so the assertion below pins the
    // blocked and unblocked orderings bitwise-equal at the benchmark scale.
    let sn = if quick { 16 } else { 64 };
    let s_smooth = fixture_source(sn);
    let smooth_rounds = |blocked: bool| {
        let mut phi = Mesh::zeros(sn);
        for _ in 0..4 {
            if blocked {
                smooth_sweep(&mut phi, &s_smooth);
            } else {
                smooth_sweep_unblocked(&mut phi, &s_smooth);
            }
        }
        let r = if blocked {
            residual_mesh(&phi, &s_smooth)
        } else {
            residual_unblocked(&phi, &s_smooth)
        };
        checksum(phi.data.iter().chain(r.data.iter()).copied())
    };
    reports.push(KernelReport {
        name: "poisson_smooth_blocked",
        samples: sweep(threads, reps, || smooth_rounds(true)),
    });
    reports.push(KernelReport {
        name: "poisson_smooth_unblocked",
        samples: sweep(threads, reps, || smooth_rounds(false)),
    });

    // 3-D FFT roundtrip.
    let mut grid0 = Grid3::zeros(n);
    for (i, v) in grid0.data.iter_mut().enumerate() {
        *v = Complex::new((i % 13) as f64, 0.0);
    }
    reports.push(KernelReport {
        name: "fft3d_roundtrip",
        samples: sweep(threads, reps, || {
            let mut g = grid0.clone();
            g.fft(Direction::Forward);
            g.fft(Direction::Inverse);
            checksum(g.data.iter().flat_map(|c| [c.re, c.im].into_iter()))
        }),
    });

    let mut ok = true;
    for r in &reports {
        let base = r.samples[0].median_ns.max(1) as f64;
        println!("  {}:", r.name);
        for s in &r.samples {
            println!(
                "    {} thread(s): {:>12} ns/op  speedup {:.2}x",
                s.threads,
                s.median_ns,
                base / s.median_ns.max(1) as f64
            );
        }
        if r.checks_consistent() {
            println!("    checksums: identical at every width");
        } else {
            println!("    checksums: MISMATCH — determinism violated");
            ok = false;
        }
    }

    // The blocked and unblocked smoother orderings must agree bit-for-bit —
    // cache blocking and wrap-free indexing are locality/instruction
    // changes, not numerical ones.
    let find = |name: &str| reports.iter().find(|r| r.name == name).expect("report");
    let blocked = find("poisson_smooth_blocked");
    let unblocked = find("poisson_smooth_unblocked");
    if blocked.samples[0].check != unblocked.samples[0].check {
        println!("  blocked vs unblocked smoother: checksum MISMATCH");
        ok = false;
    } else {
        println!("  blocked vs unblocked smoother: bitwise identical");
    }
    let tile_speedup =
        unblocked.samples[0].median_ns.max(1) as f64 / blocked.samples[0].median_ns.max(1) as f64;
    println!(
        "  blocked + wrap-free smoother speedup at 1 thread: {tile_speedup:.3}x (mesh n = {sn})"
    );

    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"kernel_scaling\",\n  \"mesh_n\": {n},\n  \
         \"threads_swept\": [{}],\n  \"reps\": {reps},\n  \
         \"available_parallelism\": {avail},\n  \
         \"smoother_blocking\": {{\"mesh_n\": {sn}, \"tile\": 32, \"sweeps\": 4, \
         \"bitwise_equal\": {}, \"speedup_vs_unblocked\": {:.3}}},\n  \
         \"rayon_default_threads\": {},\n  \"kernels\": [\n    {}\n  ]\n}}\n",
        threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        blocked.samples[0].check == unblocked.samples[0].check,
        tile_speedup,
        rayon::current_num_threads(),
        reports
            .iter()
            .map(|r| r.to_json())
            .collect::<Vec<_>>()
            .join(",\n    ")
    );
    validate_json(&json).expect("generated artifact must be well-formed JSON");

    let path = if quick {
        bench::artifact_dir().join("BENCH_kernels_quick.json")
    } else {
        std::path::PathBuf::from("BENCH_kernels.json")
    };
    std::fs::write(&path, &json).expect("failed to write artifact");
    println!("wrote {}", path.display());

    // Smoke-check the artifact on disk: re-read, re-validate, and require
    // the keys downstream tooling consumes.
    let disk = std::fs::read_to_string(&path).expect("artifact unreadable");
    validate_json(&disk).expect("artifact on disk must be well-formed JSON");
    for key in [
        "\"experiment\"",
        "\"kernels\"",
        "\"median_ns\"",
        "\"speedup\"",
        "\"available_parallelism\"",
    ] {
        assert!(disk.contains(key), "artifact missing {key}");
    }

    if !ok {
        eprintln!("FAIL: checksum mismatch across thread counts");
        std::process::exit(1);
    }
}
