//! Distributed-telemetry overhead and stitching check.
//!
//! Three questions, one artifact:
//!
//! 1. **Overhead** — does shipping telemetry cost throughput? A mux
//!    closed-loop workload runs against two identically-configured SeDs:
//!    one silent, one with a live `TelemetryFlusher` draining its spans
//!    and metric deltas to a collector every 50 ms *during* the run.
//!    Passes interleave (silent, shipping, silent, ...) and compare
//!    medians, so scheduler drift hits both sides equally. The gate:
//!    telemetry-enabled throughput within 10% of disabled (30% in
//!    `--quick` mode on shared CI runners).
//! 2. **Stitching** — a 3-level topology (MA → LA → LA → 2 SeDs), every
//!    component with a private `Obs` flushing to the collector, plus a
//!    client doing the same. After one request and a flush, the collector
//!    must hold ONE trace covering every hop: Finding, Submission, both
//!    agents' estimate windows, Queued, Execution, ResultReturn.
//! 3. **Reactor visibility** — the collector's own Prometheus scrape
//!    (fetched over the wire via the correlated dump) must include the
//!    reactor's tick-latency histogram and queue-depth gauges.
//!
//! Writes `BENCH_telemetry.json` (validated with `bench::validate_json`)
//! and exits non-zero if any gate fails. `--quick` shrinks the workload
//! for the CI gate.

use cosmogrid::services::serve_sed_over_tcp_with_config;
use diet_core::client::RetryPolicy;
use diet_core::data::{DietValue, Persistence};
use diet_core::deploy::{TcpTopologySpec, TelemetrySpec};
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sched::RoundRobin;
use diet_core::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};
use diet_core::transport::{ServerConfig, TcpSedPool};
use diet_core::{
    serve_collector_over_tcp, Collector, DietClient, TelemetryConfig, TelemetryFlusher,
};
use obs::Obs;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn echo_desc() -> ProfileDesc {
    let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    d.set_arg(1, ArgTag::Scalar).unwrap();
    d
}

fn echo_table() -> ServiceTable {
    let solve: SolveFn = Arc::new(|p: &mut Profile| {
        let x = p.get_i32(0)?;
        p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
        Ok(0)
    });
    let mut t = ServiceTable::init(1);
    t.add(echo_desc(), solve).unwrap();
    t
}

fn echo_profile(x: i32) -> Profile {
    let mut p = Profile::alloc(&echo_desc());
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    p
}

/// One closed-loop mux pass: `concurrency` callers, `reqs` requests each,
/// all down one multiplexed connection. Every call carries a live trace
/// context, so the SeD records its Queued/Execution/ResultReturn windows —
/// the span traffic whose shipping cost this experiment measures. Returns
/// requests/sec.
fn mux_pass(addr: SocketAddr, concurrency: usize, reqs: usize) -> f64 {
    let pool = Arc::new(TcpSedPool::new());
    pool.register("sed", addr);
    let wall = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|caller| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                for j in 0..reqs {
                    let x = (caller * reqs + j) as i32;
                    // High trace ids so these spans can't collide with the
                    // stitching run's traces in the shared collector.
                    let ctx = obs::TraceCtx {
                        trace_id: 0x5ED0_0000_0000 + x as u64 + 1,
                        parent_span: 0,
                    };
                    let (out, _, _) = pool
                        .call_traced("sed", echo_profile(x), Duration::from_secs(30), ctx)
                        .unwrap_or_else(|e| panic!("request lost: {e}"));
                    assert_eq!(out.get_i32(1).unwrap(), x, "mis-correlated echo");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (concurrency * reqs) as f64 / wall.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct OverheadStats {
    baseline_rps: f64,
    telemetry_rps: f64,
    ratio: f64,
    flush_errors: u64,
    spans_shipped: u64,
}

fn run_overhead(collector_addr: SocketAddr, collector: &Collector, quick: bool) -> OverheadStats {
    // Passes must be long enough (hundreds of ms) that wall-clock noise
    // doesn't dominate the ratio on a shared box.
    let concurrency = if quick { 8 } else { 16 };
    let reqs = if quick { 200 } else { 500 };
    let passes = 5;

    // Two identical SeDs; only one ships telemetry, continuously (50 ms
    // interval), while its workload runs.
    let silent = SedHandle::spawn(SedConfig::new("bench/silent", 1.0), echo_table());
    let silent_srv = serve_sed_over_tcp_with_config(silent.clone(), ServerConfig::default())
        .expect("bind silent SeD");
    let shipping = SedHandle::spawn(SedConfig::new("bench/shipping", 1.0), echo_table());
    let shipping_srv = serve_sed_over_tcp_with_config(shipping.clone(), ServerConfig::default())
        .expect("bind shipping SeD");
    let flusher = TelemetryFlusher::spawn(
        shipping.obs(),
        TelemetryConfig::new(collector_addr, "sed", "bench/shipping")
            .site("bench")
            .interval(Duration::from_millis(50)),
    );

    // Warm both paths, then interleave timed passes.
    mux_pass(silent_srv.local_addr, concurrency, reqs);
    mux_pass(shipping_srv.local_addr, concurrency, reqs);
    let mut base = Vec::new();
    let mut tel = Vec::new();
    for _ in 0..passes {
        base.push(mux_pass(silent_srv.local_addr, concurrency, reqs));
        tel.push(mux_pass(shipping_srv.local_addr, concurrency, reqs));
    }
    flusher.flush_now().expect("final bench flush");

    let spans_shipped = collector
        .sources()
        .iter()
        .find(|(src, _)| src.label == "bench/shipping")
        .map(|(_, h)| h.spans)
        .unwrap_or(0);
    let stats = OverheadStats {
        baseline_rps: median(base),
        telemetry_rps: median(tel),
        ratio: 0.0,
        flush_errors: flusher.flush_errors(),
        spans_shipped,
    };
    drop(flusher);
    silent_srv.stop();
    shipping_srv.stop();
    silent.shutdown();
    shipping.shutdown();
    OverheadStats {
        ratio: stats.telemetry_rps / stats.baseline_rps,
        ..stats
    }
}

struct TraceStats {
    trace_id: u64,
    spans: usize,
    phases_present: Vec<&'static str>,
    hops_present: Vec<&'static str>,
    sources: usize,
}

/// Stand up the 3-level telemetry deployment, run one traced request
/// through every hop, flush, and inspect the stitched result.
fn run_stitching(collector_addr: SocketAddr, collector: &Collector) -> TraceStats {
    let spec = TcpTopologySpec::chain(3, 2);
    let d = spec
        .deploy_with_telemetry(
            Arc::new(RoundRobin::new()),
            |_| echo_table(),
            &TelemetrySpec {
                collector: collector_addr,
                interval: Duration::from_secs(3600), // flushed explicitly
            },
        )
        .expect("deploy 3-level telemetry topology");
    let client_obs = Arc::new(Obs::new());
    let client = DietClient::initialize_distributed(client_obs.clone());
    let client_flusher = TelemetryFlusher::spawn(
        client_obs,
        TelemetryConfig::new(collector_addr, "client", "bench-client")
            .site("bench")
            .interval(Duration::from_secs(3600)),
    );
    let (out, stats) = client
        .call_distributed(
            &d.ma_client,
            &d.pool,
            echo_profile(7),
            &RetryPolicy::default(),
        )
        .expect("traced request");
    assert_eq!(out.get_i32(1).unwrap(), 7);

    assert_eq!(d.flush_telemetry(), 0, "component flushes failed");
    client_flusher.flush_now().expect("client flush");

    let trace = collector.trace(stats.trace_id);
    let phases_present: Vec<&'static str> = [
        "Finding",
        "Submission",
        "AgentEstimate",
        "Queued",
        "Execution",
        "ResultReturn",
    ]
    .into_iter()
    .filter(|p| trace.iter().any(|s| s.name == *p))
    .collect();
    let hops_present: Vec<&'static str> = ["la1", "la2"]
        .into_iter()
        .filter(|hop| {
            trace
                .iter()
                .any(|s| s.name == "AgentEstimate" && s.resource == *hop)
        })
        .collect();
    let out = TraceStats {
        trace_id: stats.trace_id,
        spans: trace.len(),
        phases_present,
        hops_present,
        sources: collector.sources().len(),
    };
    drop(client_flusher);
    d.shutdown();
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    let collector = Arc::new(Collector::new());
    let col_server =
        serve_collector_over_tcp(collector.clone(), "127.0.0.1:0", ServerConfig::default())
            .expect("bind collector");
    let col_addr = col_server.local_addr;

    println!("== exp_telemetry: mux throughput with/without live shipping ==");
    let ov = run_overhead(col_addr, &collector, quick);
    println!(
        "  silent {:>9.0} req/s | shipping {:>9.0} req/s | ratio {:.3} \
         ({} spans shipped, {} flush errors)",
        ov.baseline_rps, ov.telemetry_rps, ov.ratio, ov.spans_shipped, ov.flush_errors
    );

    println!("== exp_telemetry: cross-process trace stitching (3-level) ==");
    let tr = run_stitching(col_addr, &collector);
    println!(
        "  trace {:#018x}: {} spans, phases {:?}, agent hops {:?}, {} reporting sources",
        tr.trace_id, tr.spans, tr.phases_present, tr.hops_present, tr.sources
    );

    println!("== exp_telemetry: collector self-scrape ==");
    let pool = TcpSedPool::new();
    pool.register("collector", col_addr);
    let prom = pool
        .dump_metrics_correlated("collector", "", Duration::from_secs(5))
        .expect("collector scrape");
    let reactor_series = [
        "diet_reactor_tick_seconds",
        "diet_reactor_ready_events",
        "diet_reactor_dispatch_depth",
        "diet_reactor_write_queue_bytes",
    ];
    let series_present: Vec<&str> = reactor_series
        .into_iter()
        .filter(|s| prom.contains(*s))
        .collect();
    let topo = pool
        .dump_metrics_correlated("collector", "topology", Duration::from_secs(5))
        .expect("collector topology view");
    println!(
        "  scrape {} bytes, reactor series present: {:?}",
        prom.len(),
        series_present
    );
    print!("{topo}");
    col_server.stop();

    // ---- artifact ----
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n  \"experiment\": \"telemetry\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str(&format!(
        "  \"overhead\": {{\"baseline_rps\": {:.1}, \"telemetry_rps\": {:.1}, \
         \"ratio\": {:.4}, \"spans_shipped\": {}, \"flush_errors\": {}}},\n",
        ov.baseline_rps, ov.telemetry_rps, ov.ratio, ov.spans_shipped, ov.flush_errors
    ));
    json.push_str(&format!(
        "  \"stitching\": {{\"spans\": {}, \"phases_present\": [{}], \
         \"agent_hops_present\": [{}], \"reporting_sources\": {}}},\n",
        tr.spans,
        tr.phases_present
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", "),
        tr.hops_present
            .iter()
            .map(|h| format!("\"{h}\""))
            .collect::<Vec<_>>()
            .join(", "),
        tr.sources
    ));
    json.push_str(&format!(
        "  \"collector_scrape\": {{\"bytes\": {}, \"reactor_series_present\": [{}]}}\n}}\n",
        prom.len(),
        series_present
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    bench::validate_json(&json).expect("generated artifact is not valid JSON");

    let path = if quick {
        bench::artifact_dir().join("BENCH_telemetry_quick.json")
    } else {
        std::path::PathBuf::from("BENCH_telemetry.json")
    };
    std::fs::write(&path, &json).expect("failed to write artifact");
    println!("wrote {}", path.display());

    // ---- self-checks (the CI gate runs this binary) ----
    let mut failed = false;
    // Full mode holds the headline 10% bound; quick mode (shared 1-CPU CI
    // runner) keeps a looser 30% band so scheduler noise can't flake the
    // gate while a real shipping-path regression still trips it.
    let floor = if quick { 0.70 } else { 0.90 };
    if ov.ratio < floor {
        eprintln!(
            "FAIL: telemetry-enabled throughput is {:.1}% of disabled (floor {:.0}%)",
            ov.ratio * 100.0,
            floor * 100.0
        );
        failed = true;
    }
    if ov.spans_shipped == 0 {
        eprintln!("FAIL: shipping SeD delivered no spans — overhead run measured nothing");
        failed = true;
    }
    if ov.flush_errors > 0 {
        eprintln!(
            "FAIL: {} telemetry flushes failed during the run",
            ov.flush_errors
        );
        failed = true;
    }
    if tr.phases_present.len() != 6 {
        eprintln!(
            "FAIL: stitched trace covers {:?}, expected all six phases",
            tr.phases_present
        );
        failed = true;
    }
    if tr.hops_present.len() != 2 {
        eprintln!(
            "FAIL: stitched trace shows agent hops {:?}, expected la1 and la2",
            tr.hops_present
        );
        failed = true;
    }
    if series_present.len() != reactor_series.len() {
        eprintln!(
            "FAIL: collector scrape has reactor series {series_present:?}, expected {reactor_series:?}"
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: shipping costs {:.1}% throughput; one trace stitched across {} sources; \
         reactor instrumentation visible in the collector scrape",
        (1.0 - ov.ratio) * 100.0,
        tr.sources
    );
}
