//! Finding time vs. hierarchy depth over the live distributed tree.
//!
//! The paper's "finding time" is the submit phase: the request's traversal
//! down the agent hierarchy, the estimates' trip back up, and the
//! scheduling decision. This experiment stands up chains of depth 1
//! (MA with local SeDs), 2 (MA → LA), and 3 (MA → LA → LA) as separate
//! local TCP processes — every hop a real socket speaking
//! `Forward`/`EstimateBatch` frames — and measures the client-observed
//! finding time per depth. The solve is a near-zero-cost echo, so what
//! grows with depth is pure middleware: one extra mux round-trip and one
//! extra `EstimateBatch` aggregation per level.
//!
//! Writes `BENCH_finding.json` (validated with `bench::validate_json`)
//! with per-depth p50/p95/max finding times, and exits non-zero if any
//! submit fails to resolve, any call loses its result, or a deeper chain
//! is implausibly faster than depth 1 at the median (sanity floor: depth
//! adds work, it cannot remove it; a generous 0.5x slack absorbs noise).
//! `--quick` shrinks the request count for the CI gate.

use diet_core::client::{DietClient, RetryPolicy};
use diet_core::data::{DietValue, Persistence};
use diet_core::deploy::TcpTopologySpec;
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sched::RoundRobin;
use diet_core::sed::{ServiceTable, SolveFn};
use std::sync::Arc;
use std::time::Duration;

fn echo_desc() -> ProfileDesc {
    let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    d.set_arg(1, ArgTag::Scalar).unwrap();
    d
}

fn echo_table() -> ServiceTable {
    let solve: SolveFn = Arc::new(|p: &mut Profile| {
        let x = p.get_i32(0)?;
        p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
        Ok(0)
    });
    let mut t = ServiceTable::init(1);
    t.add(echo_desc(), solve).unwrap();
    t
}

fn echo_profile(x: i32) -> Profile {
    let mut p = Profile::alloc(&echo_desc());
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    p
}

struct DepthStats {
    depth: usize,
    requests: usize,
    p50_ms: f64,
    p95_ms: f64,
    max_ms: f64,
    lost: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_depth(depth: usize, requests: usize) -> DepthStats {
    let spec = TcpTopologySpec::chain(depth, 2);
    let deployment = spec
        .deploy(Arc::new(RoundRobin::new()), |_| echo_table())
        .unwrap_or_else(|e| panic!("deploy depth {depth}: {e}"));
    let client = DietClient::initialize_distributed(deployment.obs.clone());
    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(10),
        max_retries: 4,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        jitter: 0.3,
    };
    let mut findings = Vec::with_capacity(requests);
    let mut lost = 0usize;
    for i in 0..requests {
        match client.call_distributed(
            &deployment.ma_client,
            &deployment.pool,
            echo_profile(i as i32),
            &policy,
        ) {
            Ok((out, stats)) => {
                if out.get_i32(1).unwrap_or(-1) != i as i32 {
                    lost += 1;
                } else {
                    findings.push(stats.finding * 1e3);
                }
            }
            Err(_) => lost += 1,
        }
    }
    deployment.shutdown();
    findings.sort_by(|a, b| a.total_cmp(b));
    DepthStats {
        depth,
        requests,
        p50_ms: percentile(&findings, 0.50),
        p95_ms: percentile(&findings, 0.95),
        max_ms: findings.last().copied().unwrap_or(0.0),
        lost,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 40 } else { 200 };

    println!("== exp_finding_depth: finding time vs. agent-hierarchy depth (N = {requests}) ==");
    println!(
        "  {:>5} {:>8} {:>9} {:>9} {:>9} {:>5}",
        "depth", "requests", "p50 ms", "p95 ms", "max ms", "lost"
    );
    let mut rows = Vec::new();
    for depth in [1usize, 2, 3] {
        let s = run_depth(depth, requests);
        println!(
            "  {:>5} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>5}",
            s.depth, s.requests, s.p50_ms, s.p95_ms, s.max_ms, s.lost
        );
        rows.push(s);
    }

    // ---- artifact ----
    let mut json = String::from("{\n  \"experiment\": \"finding_depth\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"requests_per_depth\": {requests},\n"));
    json.push_str("  \"depths\": [\n");
    for (i, s) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"depth\": {}, \"requests\": {}, \"finding_p50_ms\": {:.4}, \
             \"finding_p95_ms\": {:.4}, \"finding_max_ms\": {:.4}, \"lost\": {}}}{}\n",
            s.depth,
            s.requests,
            s.p50_ms,
            s.p95_ms,
            s.max_ms,
            s.lost,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    bench::validate_json(&json).expect("generated artifact is not valid JSON");

    let path = if quick {
        bench::artifact_dir().join("BENCH_finding_quick.json")
    } else {
        std::path::PathBuf::from("BENCH_finding.json")
    };
    std::fs::write(&path, &json).expect("failed to write artifact");
    println!("wrote {}", path.display());

    // ---- self-checks ----
    let mut failed = false;
    for s in &rows {
        if s.lost > 0 {
            eprintln!(
                "FAIL: depth {} lost {} of {} requests",
                s.depth, s.lost, s.requests
            );
            failed = true;
        }
        if s.p50_ms <= 0.0 {
            eprintln!("FAIL: depth {} recorded no finding time", s.depth);
            failed = true;
        }
    }
    let d1 = rows[0].p50_ms;
    for s in &rows[1..] {
        if s.p50_ms < 0.5 * d1 {
            eprintln!(
                "FAIL: depth {} median finding {:.3} ms implausibly below depth-1 {:.3} ms",
                s.depth, s.p50_ms, d1
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: finding medians {:.3} / {:.3} / {:.3} ms at depths 1/2/3",
        rows[0].p50_ms, rows[1].p50_ms, rows[2].p50_ms
    );
}
