//! E9 (extension) — middleware fault recovery, beyond the paper's
//! failure-free run: a SeD dies mid-campaign; its queued and in-flight
//! requests are resubmitted through the Master Agent and absorbed by the
//! surviving servers. Reports the makespan cost of losing each cluster type.

use cosmogrid::campaign::{fmt_hms, run_campaign, CampaignConfig, SedFailure};

fn main() {
    println!("E9: fault injection — one SeD dies 2h into the campaign\n");
    let baseline = run_campaign(CampaignConfig::default());
    println!(
        "  {:<26} {:>11} {:>9} {:>12} {:>10}",
        "failure", "makespan", "delta", "refindings", "resubmits"
    );
    println!(
        "  {:<26} {:>11} {:>9} {:>12} {:>10}",
        "(none)",
        fmt_hms(baseline.makespan),
        "-",
        baseline.finding.len(),
        baseline.resubmissions
    );
    assert_eq!(baseline.resubmissions, 0, "failure-free run resubmitted");

    for victim in ["nancy-grelon/0", "lyon-sagittaire/0", "toulouse-violette/0"] {
        let r = run_campaign(CampaignConfig {
            failure: Some(SedFailure {
                label_contains: victim.into(),
                at: 2.0 * 3600.0,
            }),
            ..CampaignConfig::default()
        });
        let done: usize = r.sed_rows.iter().map(|(_, c, _)| *c).sum();
        assert_eq!(done, 100, "lost requests after killing {victim}");
        assert!(
            r.resubmissions >= 1,
            "killing {victim} mid-campaign must orphan at least one request"
        );
        println!(
            "  {:<26} {:>11} {:>8.1}% {:>12} {:>10}",
            victim,
            fmt_hms(r.makespan),
            (r.makespan / baseline.makespan - 1.0) * 100.0,
            r.finding.len(),
            r.resubmissions
        );
        assert!(r.makespan >= baseline.makespan * 0.99);
    }

    println!(
        "\nevery campaign drains to 100/100 completed sub-simulations; losing\n\
         a fast (Nancy) SeD costs more than losing a slow (Toulouse) one only\n\
         when the surviving queues were balanced around it — the re-submitted\n\
         orphans always land on live servers via fresh MA findings."
    );
    println!("E9 shape checks passed (no request lost under SeD failure)");
}
