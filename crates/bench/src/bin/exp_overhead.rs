//! E6 — the overhead decomposition of Section 5.2: finding ≈ 49.8 ms,
//! service initiation ≈ 20.8 ms, total per-simulation overhead ≈ 70.6 ms,
//! hence ≈ 7 s over the 101 simulations — "negligible compared to the total
//! processing time".
//!
//! This regenerator measures the overhead twice: in the campaign simulator
//! (virtual time, paper-scale) and on the *live* middleware (wall-clock,
//! an in-process hierarchy with instant solves), showing both land in the
//! tens-of-milliseconds-or-less regime.

use bench::{ms_row, render_rows, Row};
use cosmogrid::campaign::{run_campaign, CampaignConfig};
use diet_core::agent::{AgentNode, MasterAgent};
use diet_core::client::DietClient;
use diet_core::data::{DietValue, Persistence};
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sched::RoundRobin;
use diet_core::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};
use std::sync::Arc;

fn live_overhead(n_calls: usize) -> (f64, f64) {
    // 11 SeDs with an instant no-op service: every measured cost is pure
    // middleware overhead.
    let mut desc = ProfileDesc::alloc("noop", 0, 0, 1);
    desc.set_arg(0, ArgTag::Scalar).unwrap();
    let seds: Vec<Arc<SedHandle>> = (0..11)
        .map(|i| {
            let solve: SolveFn = Arc::new(|p: &mut Profile| {
                let x = p.get_i32(0)?;
                p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
                Ok(0)
            });
            let mut t = ServiceTable::init(1);
            t.add(desc.clone(), solve).unwrap();
            SedHandle::spawn(SedConfig::new(&format!("sed{i}"), 1.0), t)
        })
        .collect();
    let las: Vec<_> = seds
        .iter()
        .enumerate()
        .map(|(i, s)| AgentNode::leaf(&format!("LA{i}"), vec![s.clone()]))
        .collect();
    let ma = MasterAgent::new("MA", las, Arc::new(RoundRobin::new()));
    let client = DietClient::initialize(ma);

    let mut finding = 0.0;
    let mut total = 0.0;
    for i in 0..n_calls {
        let mut p = Profile::alloc(&desc);
        p.set(0, DietValue::ScalarI32(i as i32), Persistence::Volatile)
            .unwrap();
        let (_, stats) = client.call(p).unwrap();
        finding += stats.finding;
        total += stats.overhead();
    }
    for s in seds {
        s.shutdown();
    }
    (finding / n_calls as f64, total / n_calls as f64)
}

fn main() {
    let r = run_campaign(CampaignConfig::default());
    let init_mean = r.overhead_mean - r.finding_mean;

    let rows = vec![
        ms_row("finding time (simulated)", 49.8, r.finding_mean, 0.10),
        ms_row("send + initiation", 20.8, init_mean, 0.40),
        ms_row("overhead per simulation", 70.6, r.overhead_mean, 0.25),
        Row {
            quantity: "total overhead (101 sims)",
            paper: "~7 s".into(),
            measured: format!("{:.1} s", r.overhead_mean * 101.0),
            ok: r.overhead_mean * 101.0 < 15.0,
        },
        Row {
            quantity: "overhead / makespan",
            paper: "negligible".into(),
            measured: format!("{:.5}%", r.overhead_mean * 101.0 / r.makespan * 100.0),
            ok: r.overhead_mean * 101.0 / r.makespan < 1e-3,
        },
    ];
    print!(
        "{}",
        render_rows("E6: middleware overhead (Section 5.2)", &rows)
    );
    assert!(rows.iter().all(|r| r.ok), "E6 shape check failed");

    let (live_finding, live_total) = live_overhead(101);
    println!(
        "\nlive in-process middleware, 101 no-op calls over 11 SeDs:\n  \
         finding {:.3} ms, total overhead {:.3} ms per call\n  \
         (no CORBA and no WAN: the Rust hierarchy traversal itself is far\n  \
         below the paper's 49.8 ms, which was dominated by omniORB + network)",
        live_finding * 1e3,
        live_total * 1e3
    );
    assert!(live_total < 0.050, "live overhead should be tiny");
    println!("\nE6 shape checks passed (overhead negligible in both modes)");
}
