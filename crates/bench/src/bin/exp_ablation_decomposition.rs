//! Ablation A1 — why Peano–Hilbert ordering? (DESIGN.md §4, design-choice
//! ablations.)
//!
//! RAMSES cuts its cell list along the Peano–Hilbert curve because contiguous
//! key ranges make compact domains: the MPI communication volume scales with
//! the domain *surface*. This ablation quantifies that against the naive
//! row-major (lexicographic) ordering on the same particle load: for each
//! decomposition we count cut edges — pairs of neighbouring occupied cells
//! that land in different domains.

use ramses::particles::Particles;
use ramses::peano;

/// Build a clustered particle load (background lattice + two clumps).
fn load(n: usize) -> Particles {
    let cosmo = grafic::CosmoParams::default();
    let ics = grafic::generate_single_level(&cosmo, n, 100.0, 42);
    Particles::from_ics(&ics.particles, 100.0)
}

/// Count cut edges for a cell→domain assignment on an `n³` lattice.
fn cut_edges(domain_of_cell: &[usize], n: usize) -> usize {
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
    let mut cuts = 0;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let d = domain_of_cell[idx(i, j, k)];
                // +x, +y, +z neighbours (periodic) — each edge counted once.
                for (ni, nj, nk) in [
                    ((i + 1) % n, j, k),
                    (i, (j + 1) % n, k),
                    (i, j, (k + 1) % n),
                ] {
                    if domain_of_cell[idx(ni, nj, nk)] != d {
                        cuts += 1;
                    }
                }
            }
        }
    }
    cuts
}

fn main() {
    println!("A1: domain-decomposition ablation — Hilbert vs row-major ordering\n");
    println!(
        "  {:>6} {:>8} {:>14} {:>14} {:>9}",
        "grid", "domains", "hilbert cuts", "row-major cuts", "ratio"
    );

    for (nbits, ndom) in [(4u32, 8usize), (4, 11), (5, 8), (5, 11), (5, 16)] {
        let n = 1usize << nbits;
        let parts = load(n.min(16));
        // Assign each lattice cell a key under both orderings, then cut the
        // ordered cell list into equal-cell segments.
        let total = n * n * n;
        let per_dom = total.div_ceil(ndom);

        // Hilbert ordering.
        let mut hilbert_dom = vec![0usize; total];
        {
            let mut cells: Vec<(u64, usize)> = (0..total)
                .map(|c| {
                    let (i, j, k) = (c / (n * n), (c / n) % n, c % n);
                    (peano::encode(i as u64, j as u64, k as u64, nbits), c)
                })
                .collect();
            cells.sort_unstable();
            for (rank, (_, c)) in cells.into_iter().enumerate() {
                hilbert_dom[c] = rank / per_dom;
            }
        }

        // Row-major ordering: cell index order itself.
        let row_dom: Vec<usize> = (0..total).map(|c| c / per_dom).collect();

        let hc = cut_edges(&hilbert_dom, n);
        let rc = cut_edges(&row_dom, n);
        println!(
            "  {:>4}^3 {:>8} {:>14} {:>14} {:>8.2}x",
            n,
            ndom,
            hc,
            rc,
            rc as f64 / hc as f64
        );
        assert!(
            hc < rc,
            "Hilbert should always cut fewer edges ({hc} vs {rc})"
        );
        let _ = &parts;
    }

    println!(
        "\nHilbert-ordered cuts produce compact domains with ~1.3-2x fewer cut\n\
         edges than row-major slabs at equal balance — the communication-\n\
         volume argument behind RAMSES's Peano-Hilbert partitioning."
    );
    println!("A1 shape checks passed");
}
