//! Criterion benches for the compute kernels behind the services: these
//! anchor the campaign cost model (DESIGN.md §3) and track the hot paths of
//! every substrate crate.

use criterion::{criterion_group, criterion_main, Criterion};
use grafic::fft::{Direction, Grid3};
use grafic::{CosmoParams, GaussianField, PowerSpectrum};
use ramses::particles::{cic_deposit, Particles};
use ramses::peano;
use ramses::poisson::{solve, MgConfig};
use std::hint::black_box;

fn particles_for(n: usize, seed: u64) -> Particles {
    let cosmo = CosmoParams::default();
    let ics = grafic::generate_single_level(&cosmo, n, 100.0, seed);
    Particles::from_ics(&ics.particles, 100.0)
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft3d");
    for n in [16usize, 32] {
        g.bench_function(format!("{n}cubed_roundtrip"), |b| {
            let mut grid = Grid3::zeros(n);
            for (i, v) in grid.data.iter_mut().enumerate() {
                *v = grafic::fft::Complex::new((i % 13) as f64, 0.0);
            }
            b.iter(|| {
                grid.fft(Direction::Forward);
                grid.fft(Direction::Inverse);
                black_box(grid.data[0].re)
            })
        });
    }
    g.finish();
}

fn bench_field_synthesis(c: &mut Criterion) {
    c.bench_function("grafic_field_16cubed", |b| {
        let spec = PowerSpectrum::new(CosmoParams::default());
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(GaussianField::synthesize(&spec, 16, 100.0, seed).rms())
        })
    });
}

fn bench_poisson(c: &mut Criterion) {
    let mut g = c.benchmark_group("poisson_multigrid");
    for n in [16usize, 32] {
        g.bench_function(format!("{n}cubed"), |b| {
            let parts = particles_for(n.min(16), 7);
            let rho = cic_deposit(&parts, n);
            let mut src = rho.clone();
            for v in src.data.iter_mut() {
                *v -= 1.0;
            }
            b.iter(|| black_box(solve(&src, &MgConfig::default()).cycles))
        });
    }
    g.finish();
}

fn bench_cic(c: &mut Criterion) {
    c.bench_function("cic_deposit_16cubed_on_32mesh", |b| {
        let parts = particles_for(16, 3);
        b.iter(|| black_box(cic_deposit(&parts, 32).sum()))
    });
}

fn bench_peano(c: &mut Criterion) {
    c.bench_function("peano_encode_decode_1e4", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                let k = peano::encode(i % 32, (i / 32) % 32, (i / 1024) % 32, 5);
                let (x, _, _) = peano::decode(k, 5);
                acc = acc.wrapping_add(k ^ x);
            }
            black_box(acc)
        })
    });
}

fn bench_fof(c: &mut Criterion) {
    c.bench_function("fof_16cubed", |b| {
        let parts = particles_for(16, 11);
        b.iter(|| {
            black_box(
                galics::fof::friends_of_friends(
                    &parts,
                    &galics::FofParams {
                        b: 0.3,
                        min_members: 5,
                    },
                )
                .len(),
            )
        })
    });
}

fn bench_amr(c: &mut Criterion) {
    c.bench_function("amr_build_16cubed", |b| {
        let parts = particles_for(16, 13);
        b.iter(|| {
            black_box(
                ramses::amr::Octree::build(&parts, ramses::amr::AmrParams::default())
                    .leaves()
                    .len(),
            )
        })
    });
}

fn bench_hydro(c: &mut Criterion) {
    c.bench_function("hydro_step_16cubed_hllc", |b| {
        let mut g = ramses::hydro::HydroGrid::from_fn(16, 1.4, |x| ramses::hydro::Prim {
            rho: 1.0 + 0.3 * (std::f64::consts::TAU * x[0]).sin(),
            vel: [0.1, 0.0, 0.0],
            p: 1.0,
        });
        b.iter(|| {
            let dt = g.max_dt(0.4);
            g.step(dt, ramses::hydro::Riemann::Hllc);
            black_box(g.total_mass())
        })
    });
}

fn bench_refine(c: &mut Criterion) {
    c.bench_function("refine_patch_solve", |b| {
        let parts = particles_for(16, 21);
        let cosmo = ramses::cosmology::Cosmology::new(CosmoParams::default());
        let gravity = ramses::gravity::PmGravity::new(16);
        let field = gravity.field(&parts, &cosmo, 0.5);
        let sel = ramses::refine::select_patch(&field.rho, 3.0).unwrap_or(([4, 4, 4], 4));
        b.iter(|| {
            let p = ramses::refine::RefinedPatch::solve(
                sel.0,
                sel.1,
                &field.phi,
                &parts,
                cosmo.poisson_factor(0.5),
                &MgConfig::default(),
            );
            black_box(p.phi.len())
        })
    });
}

fn bench_xi(c: &mut Criterion) {
    c.bench_function("xi_two_point_2k", |b| {
        let parts = particles_for(16, 9); // 4096 points
        b.iter(|| black_box(galics::correlation::xi(&parts.pos, 0.02, 0.4, 8).bins.len()))
    });
}

fn bench_oar(c: &mut Criterion) {
    c.bench_function("oar_submit_200", |b| {
        b.iter(|| {
            let mut oar = gridsim::oar::OarScheduler::new(64);
            for i in 0..200u64 {
                oar.submit(
                    i as f64,
                    gridsim::oar::Request {
                        nodes: 8 + (i % 5) as usize,
                        walltime: 100.0,
                    },
                )
                .unwrap();
            }
            black_box(oar.reservations().len())
        })
    });
}

fn bench_tar(c: &mut Criterion) {
    use cosmogrid::archive::{pack, unpack, Entry};
    c.bench_function("tar_pack_unpack_1MiB", |b| {
        let entries = vec![
            Entry {
                name: "snapshots/final.bin".into(),
                data: bytes::Bytes::from(vec![7u8; 1 << 20]),
            },
            Entry {
                name: "halos/catalog.txt".into(),
                data: bytes::Bytes::from_static(b"# catalog\n"),
            },
        ];
        b.iter(|| {
            let tar = pack(&entries).unwrap();
            black_box(unpack(&tar).unwrap().len())
        })
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_field_synthesis,
    bench_poisson,
    bench_cic,
    bench_peano,
    bench_fof,
    bench_amr,
    bench_hydro,
    bench_refine,
    bench_xi,
    bench_oar,
    bench_tar
);
criterion_main!(benches);
