//! Criterion benches for the middleware itself: the request path whose cost
//! the paper measures in Figure 5 (finding, submission, initiation), plus
//! the codec and transport layers that replace CORBA.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, Criterion};
use diet_core::agent::{AgentNode, MasterAgent};
use diet_core::codec::{decode_message, encode_message, Message};
use diet_core::data::{DietValue, Persistence};
use diet_core::monitor::Estimate;
use diet_core::profile::{ramses_zoom2_desc, ArgTag, Profile, ProfileDesc};
use diet_core::sched::{RoundRobin, Scheduler, WeightedSpeed};
use diet_core::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};
use diet_core::transport::{inproc_pair, Duplex};
use std::hint::black_box;
use std::sync::Arc;

fn zoom2_call_profile(file_kb: usize) -> Profile {
    let d = ramses_zoom2_desc();
    let mut p = Profile::alloc(&d);
    p.set(
        0,
        DietValue::File {
            name: "ramses.nml".into(),
            data: Bytes::from(vec![b'x'; file_kb * 1024]),
        },
        Persistence::Volatile,
    )
    .unwrap();
    for i in 1..=6 {
        p.set(i, DietValue::ScalarI32(i as i32), Persistence::Volatile)
            .unwrap();
    }
    p
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for kb in [8usize, 256] {
        let msg = Message::Call {
            request_id: 1,
            ctx: obs::TraceCtx::default(),
            profile: zoom2_call_profile(kb),
        };
        g.bench_function(format!("encode_{kb}KiB"), |b| {
            b.iter(|| black_box(encode_message(&msg).len()))
        });
        let enc = encode_message(&msg);
        g.bench_function(format!("decode_{kb}KiB"), |b| {
            b.iter(|| black_box(decode_message(enc.clone()).unwrap()))
        });
    }
    g.finish();
}

fn bench_profile_encode(c: &mut Criterion) {
    c.bench_function("profile_encode_zoom2", |b| {
        let p = zoom2_call_profile(8);
        b.iter(|| {
            let mut buf = BytesMut::new();
            diet_core::codec::encode_profile(&mut buf, &p);
            black_box(buf.len())
        })
    });
}

fn bench_inproc_roundtrip(c: &mut Criterion) {
    c.bench_function("transport_inproc_ping_pong", |b| {
        let (a, z) = inproc_pair();
        let t = std::thread::spawn(move || {
            while let Ok(m) = z.recv() {
                if m == Message::Shutdown {
                    break;
                }
                z.send(&Message::Pong).unwrap();
            }
        });
        b.iter(|| {
            a.send(&Message::Ping).unwrap();
            black_box(a.recv().unwrap());
        });
        a.send(&Message::Shutdown).unwrap();
        t.join().unwrap();
    });
}

fn estimates(n: usize) -> Vec<Estimate> {
    (0..n)
        .map(|i| Estimate {
            server: format!("sed{i}"),
            speed_factor: 0.8 + (i % 5) as f64 * 0.1,
            free_memory: 32 << 30,
            queue_length: i % 7,
            completed: i as u64,
            known_mean_duration: if i % 2 == 0 { Some(5000.0) } else { None },
            ..Estimate::default()
        })
        .collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_decision");
    for n in [11usize, 110, 1100] {
        let ests = estimates(n);
        let rr = RoundRobin::new();
        g.bench_function(format!("round_robin_{n}"), |b| {
            b.iter(|| black_box(rr.select(&ests)))
        });
        let ws = WeightedSpeed;
        g.bench_function(format!("weighted_speed_{n}"), |b| {
            b.iter(|| black_box(ws.select(&ests)))
        });
    }
    g.finish();
}

fn bench_finding_path(c: &mut Criterion) {
    // The live "finding time": MA traversal + estimates + decision over the
    // paper's 11-SeD hierarchy.
    let mut desc = ProfileDesc::alloc("noop", 0, 0, 0);
    desc.set_arg(0, ArgTag::Scalar).unwrap();
    let seds: Vec<Arc<SedHandle>> = (0..11)
        .map(|i| {
            let solve: SolveFn = Arc::new(|_| Ok(0));
            let mut t = ServiceTable::init(1);
            t.add(desc.clone(), solve).unwrap();
            SedHandle::spawn(SedConfig::new(&format!("sed{i}"), 1.0), t)
        })
        .collect();
    let las: Vec<_> = seds
        .iter()
        .enumerate()
        .map(|(i, s)| AgentNode::leaf(&format!("LA{i}"), vec![s.clone()]))
        .collect();
    let ma = MasterAgent::new("MA", las, Arc::new(RoundRobin::new()));
    c.bench_function("ma_submit_11_seds", |b| {
        b.iter(|| black_box(ma.submit("noop").unwrap().config.label.len()))
    });
    for s in seds {
        s.shutdown();
    }
}

criterion_group!(
    benches,
    bench_codec,
    bench_profile_encode,
    bench_inproc_roundtrip,
    bench_schedulers,
    bench_finding_path
);
criterion_main!(benches);
