//! Criterion benches for the experiment regenerators: one group per paper
//! artifact (E1–E7), measuring the full virtual-time campaign replay and its
//! per-policy variants. These anchor the claim that the whole 16-hour
//! Grid'5000 experiment replays in milliseconds of wall-clock.

use cosmogrid::campaign::{run_campaign, CampaignConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use diet_core::sched::{MinQueue, RandomSched, RoundRobin, WeightedSpeed};
use std::hint::black_box;
use std::sync::Arc;

fn bench_e1_campaign(c: &mut Criterion) {
    c.bench_function("E1_campaign_round_robin", |b| {
        b.iter(|| black_box(run_campaign(CampaignConfig::default()).makespan))
    });
}

fn bench_e2_e3_fig4(c: &mut Criterion) {
    c.bench_function("E2_fig4_gantt_render", |b| {
        let r = run_campaign(CampaignConfig::default());
        b.iter(|| black_box(r.part2_gantt().render_ascii(100).len()))
    });
    c.bench_function("E3_fig4_sed_summaries", |b| {
        let r = run_campaign(CampaignConfig::default());
        b.iter(|| black_box(r.gantt.sed_summaries().len()))
    });
}

fn bench_e4_e5_fig5(c: &mut Criterion) {
    c.bench_function("E4_fig5_finding_series", |b| {
        let r = run_campaign(CampaignConfig::default());
        b.iter(|| {
            black_box(
                r.gantt
                    .per_request(gridsim::trace::TraceKind::Finding)
                    .len(),
            )
        })
    });
    c.bench_function("E5_fig5_latency_series", |b| {
        let r = run_campaign(CampaignConfig::default());
        b.iter(|| {
            black_box(
                r.gantt
                    .per_request(gridsim::trace::TraceKind::Submission)
                    .len(),
            )
        })
    });
}

fn bench_e7_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_scheduler_ablation");
    g.bench_function("round_robin", |b| {
        b.iter(|| {
            black_box(
                run_campaign(CampaignConfig {
                    scheduler: Arc::new(RoundRobin::new()),
                    ..CampaignConfig::default()
                })
                .makespan,
            )
        })
    });
    g.bench_function("random", |b| {
        b.iter(|| {
            black_box(
                run_campaign(CampaignConfig {
                    scheduler: Arc::new(RandomSched::new(2007)),
                    ..CampaignConfig::default()
                })
                .makespan,
            )
        })
    });
    g.bench_function("min_queue", |b| {
        b.iter(|| {
            black_box(
                run_campaign(CampaignConfig {
                    scheduler: Arc::new(MinQueue),
                    ..CampaignConfig::default()
                })
                .makespan,
            )
        })
    });
    g.bench_function("weighted_speed", |b| {
        b.iter(|| {
            black_box(
                run_campaign(CampaignConfig {
                    scheduler: Arc::new(WeightedSpeed),
                    ..CampaignConfig::default()
                })
                .makespan,
            )
        })
    });
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Campaign cost as the request count grows (ablation beyond the paper).
    let mut g = c.benchmark_group("campaign_scaling");
    for n in [25u32, 100, 400] {
        g.bench_function(format!("n_zoom_{n}"), |b| {
            b.iter(|| {
                black_box(
                    run_campaign(CampaignConfig {
                        n_zoom: n,
                        ..CampaignConfig::default()
                    })
                    .makespan,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_e1_campaign,
    bench_e2_e3_fig4,
    bench_e4_e5_fig5,
    bench_e7_schedulers,
    bench_scaling
);
criterion_main!(benches);
