//! Property tests for the FFT and spectrum machinery.

use grafic::fft::{fft_1d, freq, Complex, Direction, Grid3};
use grafic::{CosmoParams, PowerSpectrum};
use proptest::prelude::*;

fn signal(len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// IFFT(FFT(x)) == x for arbitrary signals of power-of-two length.
    #[test]
    fn fft_roundtrip(raw in (2u32..9).prop_flat_map(|b| signal(1 << b))) {
        let orig: Vec<Complex> = raw.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let mut d = orig.clone();
        fft_1d(&mut d, Direction::Forward);
        fft_1d(&mut d, Direction::Inverse);
        for (a, b) in orig.iter().zip(&d) {
            prop_assert!((a.re - b.re).abs() < 1e-6 * (1.0 + a.re.abs()));
            prop_assert!((a.im - b.im).abs() < 1e-6 * (1.0 + a.im.abs()));
        }
    }

    /// Parseval: energy is conserved up to the 1/N convention.
    #[test]
    fn fft_parseval(raw in (2u32..8).prop_flat_map(|b| signal(1 << b))) {
        let mut d: Vec<Complex> = raw.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let n = d.len() as f64;
        let time_energy: f64 = d.iter().map(|c| c.norm_sqr()).sum();
        fft_1d(&mut d, Direction::Forward);
        let freq_energy: f64 = d.iter().map(|c| c.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }

    /// The DC bin of the forward transform is the signal sum.
    #[test]
    fn fft_dc_bin_is_sum(raw in (2u32..8).prop_flat_map(|b| signal(1 << b))) {
        let mut d: Vec<Complex> = raw.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let sum_re: f64 = raw.iter().map(|(re, _)| re).sum();
        let sum_im: f64 = raw.iter().map(|(_, im)| im).sum();
        fft_1d(&mut d, Direction::Forward);
        prop_assert!((d[0].re - sum_re).abs() < 1e-6 * (1.0 + sum_re.abs()));
        prop_assert!((d[0].im - sum_im).abs() < 1e-6 * (1.0 + sum_im.abs()));
    }

    /// freq() maps indices into [-n/2, n/2) and is consistent with aliasing.
    #[test]
    fn freq_range(bits in 1u32..10, i in 0usize..1024) {
        let n = 1usize << bits;
        let i = i % n;
        let f = freq(i, n);
        prop_assert!(f >= -(n as i64) / 2);
        prop_assert!(f < (n as i64 + 1) / 2);
        // Aliasing: f ≡ i (mod n).
        prop_assert_eq!(f.rem_euclid(n as i64), i as i64);
    }

    /// A real 3-D field's spectrum is Hermitian: FFT of real data satisfies
    /// F(-k) = conj(F(k)).
    #[test]
    fn grid3_real_field_is_hermitian(vals in prop::collection::vec(-10.0f64..10.0, 64)) {
        let n = 4;
        let mut g = Grid3::zeros(n);
        for (ix, v) in vals.iter().enumerate().take(n * n * n) {
            g.data[ix] = Complex::new(*v, 0.0);
        }
        g.fft(Direction::Forward);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let a = g.get(i, j, k);
                    let b = g.get((n - i) % n, (n - j) % n, (n - k) % n);
                    prop_assert!((a.re - b.re).abs() < 1e-9);
                    prop_assert!((a.im + b.im).abs() < 1e-9);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// σ(R) is monotone decreasing in R for any reasonable cosmology.
    #[test]
    fn sigma_r_decreasing(omega_m in 0.2f64..0.4, sigma8 in 0.6f64..1.0) {
        let cosmo = CosmoParams { omega_m, omega_l: 1.0 - omega_m, sigma8, ..CosmoParams::default() };
        let ps = PowerSpectrum::new(cosmo);
        let s4 = ps.sigma_r(4.0);
        let s8 = ps.sigma_r(8.0);
        let s16 = ps.sigma_r(16.0);
        prop_assert!(s4 > s8 && s8 > s16);
        prop_assert!((s8 - sigma8).abs() < 1e-6);
    }

    /// The growth factor is monotone and bounded by the EdS limit.
    #[test]
    fn growth_monotone(omega_m in 0.15f64..0.5) {
        let cosmo = CosmoParams { omega_m, omega_l: 1.0 - omega_m, ..CosmoParams::default() };
        let mut prev = 0.0;
        for i in 1..=20 {
            let a = i as f64 / 20.0;
            let d = cosmo.growth(a);
            prop_assert!(d > prev);
            prev = d;
        }
        prop_assert!((cosmo.growth(1.0) - 1.0).abs() < 1e-12);
    }
}
