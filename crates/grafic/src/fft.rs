//! In-house radix-2 complex FFT.
//!
//! GRAFIC synthesises Gaussian random fields in Fourier space and transforms
//! them back to real space; we reproduce that with a dependency-free
//! Cooley–Tukey implementation. Sizes are restricted to powers of two, which
//! matches the power-of-two grids used throughout (16³ … 128³).
//!
//! The 3-D transform applies the 1-D transform along each axis; the axis
//! passes over independent lines are parallelised with rayon.

use rayon::prelude::*;

/// A complex number. We keep our own minimal type rather than pulling in a
/// complex-arithmetic crate; only the operations the FFT needs are defined.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// e^{iθ}
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Inverse,
}

/// In-place iterative radix-2 Cooley–Tukey FFT on a power-of-two length
/// buffer. The inverse transform includes the 1/N normalisation, so
/// `fft(fft(x, Forward), Inverse) == x` up to rounding.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_1d(data: &mut [Complex], dir: Direction) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };

    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_exact_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }

    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for c in data.iter_mut() {
            *c = c.scale(inv);
        }
    }
}

/// A dense 3-D complex grid of side `n` stored in row-major `(x, y, z)`
/// order: index `(i, j, k)` lives at `i*n*n + j*n + k`.
#[derive(Debug, Clone)]
pub struct Grid3 {
    pub n: usize,
    pub data: Vec<Complex>,
}

impl Grid3 {
    pub fn zeros(n: usize) -> Self {
        assert!(n.is_power_of_two(), "grid side must be a power of two");
        Grid3 {
            n,
            data: vec![Complex::ZERO; n * n * n],
        }
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> Complex {
        self.data[self.idx(i, j, k)]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: Complex) {
        let ix = self.idx(i, j, k);
        self.data[ix] = v;
    }

    /// 3-D FFT: 1-D transforms along z, then y, then x. Lines along each
    /// axis are independent, so each pass is a parallel iteration.
    pub fn fft(&mut self, dir: Direction) {
        let n = self.n;

        // Pass 1: lines along z are contiguous.
        self.data
            .par_chunks_exact_mut(n)
            .for_each(|line| fft_1d(line, dir));

        // Pass 2: lines along y (stride n within each x-plane).
        self.data.par_chunks_exact_mut(n * n).for_each(|plane| {
            let mut line = vec![Complex::ZERO; n];
            for k in 0..n {
                for j in 0..n {
                    line[j] = plane[j * n + k];
                }
                fft_1d(&mut line, dir);
                for j in 0..n {
                    plane[j * n + k] = line[j];
                }
            }
        });

        // Pass 3: lines along x (stride n*n). Each (j, k) pair owns one y-z
        // column — a disjoint set of elements — so workers write through a
        // shared base pointer without intermediate collection.
        #[derive(Clone, Copy)]
        struct RawMut(*mut Complex);
        unsafe impl Send for RawMut {}
        unsafe impl Sync for RawMut {}
        impl RawMut {
            // Accessor so closures capture the whole `Sync` wrapper, not the
            // bare pointer field (Rust 2021 disjoint capture).
            #[inline]
            fn ptr(self) -> *mut Complex {
                self.0
            }
        }
        let plane = n * n;
        let base = RawMut(self.data.as_mut_ptr());
        (0..plane).into_par_iter().for_each(move |jk| {
            let p = base.ptr();
            let mut line = vec![Complex::ZERO; n];
            for (i, l) in line.iter_mut().enumerate() {
                // SAFETY: column `jk` (elements i*plane + jk for all i) is
                // touched by exactly one worker per the chunked partition.
                unsafe {
                    *l = *p.add(i * plane + jk);
                }
            }
            fft_1d(&mut line, dir);
            for (i, v) in line.into_iter().enumerate() {
                unsafe {
                    *p.add(i * plane + jk) = v;
                }
            }
        });
    }

    /// Total power `Σ |f|²` — useful for Parseval checks.
    pub fn total_power(&self) -> f64 {
        self.data.iter().map(|c| c.norm_sqr()).sum()
    }
}

/// Frequency (integer wavenumber) corresponding to index `i` on an `n`-point
/// transform, mapped to the symmetric range `[-n/2, n/2)`.
#[inline]
pub fn freq(i: usize, n: usize) -> i64 {
    let i = i as i64;
    let n = n as i64;
    if i < n / 2 || n == 1 {
        i
    } else {
        i - n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn fft_of_constant_is_delta() {
        let n = 16;
        let mut d = vec![Complex::new(1.0, 0.0); n];
        fft_1d(&mut d, Direction::Forward);
        assert!(approx(d[0].re, n as f64, 1e-12));
        for c in &d[1..] {
            assert!(c.norm_sqr() < 1e-20);
        }
    }

    #[test]
    fn fft_roundtrip_1d() {
        let n = 64;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut d = orig.clone();
        fft_1d(&mut d, Direction::Forward);
        fft_1d(&mut d, Direction::Inverse);
        for (a, b) in orig.iter().zip(&d) {
            assert!(approx(a.re, b.re, 1e-10) && approx(a.im, b.im, 1e-10));
        }
    }

    #[test]
    fn fft_single_mode_lands_in_right_bin() {
        let n = 32;
        let k = 5;
        let mut d: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64))
            .collect();
        fft_1d(&mut d, Direction::Forward);
        for (i, c) in d.iter().enumerate() {
            if i == k {
                assert!(approx(c.re, n as f64, 1e-10));
            } else {
                assert!(c.norm_sqr() < 1e-18, "leak at bin {i}: {c:?}");
            }
        }
    }

    #[test]
    fn fft_linear() {
        let n = 16;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i * i) as f64)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft_1d(&mut fa, Direction::Forward);
        fft_1d(&mut fb, Direction::Forward);
        fft_1d(&mut fab, Direction::Forward);
        for i in 0..n {
            let s = fa[i] + fb[i];
            assert!(approx(s.re, fab[i].re, 1e-10) && approx(s.im, fab[i].im, 1e-10));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut d = vec![Complex::ZERO; 12];
        fft_1d(&mut d, Direction::Forward);
    }

    #[test]
    fn grid3_roundtrip() {
        let n = 8;
        let mut g = Grid3::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    g.set(i, j, k, Complex::new((i + 2 * j + 3 * k) as f64, 0.0));
                }
            }
        }
        let orig = g.clone();
        g.fft(Direction::Forward);
        g.fft(Direction::Inverse);
        for (a, b) in orig.data.iter().zip(&g.data) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn grid3_parseval() {
        let n = 8;
        let mut g = Grid3::zeros(n);
        for (ix, c) in g.data.iter_mut().enumerate() {
            *c = Complex::new((ix % 7) as f64 - 3.0, 0.0);
        }
        let real_power = g.total_power();
        g.fft(Direction::Forward);
        let k_power = g.total_power() / (n * n * n) as f64;
        assert!((real_power - k_power).abs() < 1e-6 * real_power.max(1.0));
    }

    #[test]
    fn freq_mapping() {
        assert_eq!(freq(0, 8), 0);
        assert_eq!(freq(3, 8), 3);
        assert_eq!(freq(4, 8), -4);
        assert_eq!(freq(7, 8), -1);
    }
}
