//! Power-spectrum estimation — the validation side of the IC generator.
//!
//! GRAFIC's correctness claim is that its fields *have* the requested
//! spectrum; this module measures `P(k)` from a realised grid (or from a
//! particle set via NGP binning) so tests and examples can close the loop:
//! synthesize → measure → compare to the input Eisenstein–Hu curve.

use crate::fft::{freq, Complex, Direction, Grid3};

/// Binned spectrum estimate: `(k centre [h/Mpc], P(k) [(Mpc/h)³], modes)`.
#[derive(Debug, Clone)]
pub struct SpectrumEstimate {
    pub bins: Vec<(f64, f64, usize)>,
}

impl SpectrumEstimate {
    /// Interpolate the estimate at `k` (nearest non-empty bin).
    pub fn at(&self, k: f64) -> Option<f64> {
        self.bins
            .iter()
            .filter(|(_, _, n)| *n > 0)
            .min_by(|a, b| (a.0 - k).abs().partial_cmp(&(b.0 - k).abs()).unwrap())
            .map(|(_, p, _)| *p)
    }
}

/// Measure the isotropic power spectrum of a real-space field `delta` given
/// on an `n³` grid over a periodic box of size `box_size` Mpc/h.
///
/// Convention: `P(k) = ⟨|δ(k)|²⟩ V` with the forward FFT normalised by 1/N³
/// — the inverse of the synthesis convention in [`crate::field`], so a field
/// built from spectrum `P` measures back `P` (up to sample variance).
pub fn measure_spectrum(delta: &[f64], n: usize, box_size: f64, nbins: usize) -> SpectrumEstimate {
    assert_eq!(delta.len(), n * n * n, "field size mismatch");
    let mut g = Grid3::zeros(n);
    for (c, &v) in g.data.iter_mut().zip(delta) {
        *c = Complex::new(v, 0.0);
    }
    g.fft(Direction::Forward);

    let volume = box_size.powi(3);
    let kf = 2.0 * std::f64::consts::PI / box_size;
    let k_nyq = kf * (n as f64) / 2.0;
    let norm = 1.0 / (n as f64).powi(6); // |FFT|² → |δ_k|² with 1/N³ forward

    let mut power = vec![0.0f64; nbins];
    let mut count = vec![0usize; nbins];
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                if i == 0 && j == 0 && k == 0 {
                    continue;
                }
                let kv = (((freq(i, n) as f64 * kf).powi(2)
                    + (freq(j, n) as f64 * kf).powi(2)
                    + (freq(k, n) as f64 * kf).powi(2))
                .sqrt())
                .min(k_nyq * 1.7320508);
                let b = (((kv / k_nyq) * nbins as f64) as usize).min(nbins - 1);
                power[b] += g.get(i, j, k).norm_sqr() * norm * volume;
                count[b] += 1;
            }
        }
    }
    let bins = (0..nbins)
        .map(|b| {
            let kc = (b as f64 + 0.5) / nbins as f64 * k_nyq;
            let p = if count[b] > 0 {
                power[b] / count[b] as f64
            } else {
                0.0
            };
            (kc, p, count[b])
        })
        .collect();
    SpectrumEstimate { bins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaussianField;
    use crate::spectrum::{CosmoParams, PowerSpectrum};

    #[test]
    fn synthesized_field_measures_back_its_spectrum() {
        let spec = PowerSpectrum::new(CosmoParams::default());
        let n = 32;
        let box_size = 200.0;
        // Average several seeds to beat sample variance down.
        let nbins = 8;
        let mut stacked = vec![0.0f64; nbins];
        let mut counts = vec![0usize; nbins];
        let nreal = 5;
        for seed in 0..nreal {
            let f = GaussianField::synthesize(&spec, n, box_size, 100 + seed);
            let est = measure_spectrum(&f.delta, n, box_size, nbins);
            for (b, (_, p, c)) in est.bins.iter().enumerate() {
                if *c > 0 {
                    stacked[b] += p;
                    counts[b] += 1;
                }
            }
        }
        let est_k: Vec<f64> = (0..nbins)
            .map(|b| (b as f64 + 0.5) / nbins as f64 * (std::f64::consts::PI * n as f64 / box_size))
            .collect();
        let mut checked = 0;
        for b in 1..nbins - 1 {
            if counts[b] == 0 {
                continue;
            }
            let measured = stacked[b] / counts[b] as f64;
            let expected = spec.p_of_k(est_k[b]);
            // CIC-free direct grid sampling: expect agreement within ~40%
            // (bin-averaging over P(k) curvature plus sample variance).
            assert!(
                measured > 0.4 * expected && measured < 2.2 * expected,
                "bin {b} (k={:.3}): measured {measured:.1} vs expected {expected:.1}",
                est_k[b]
            );
            checked += 1;
        }
        assert!(checked >= 4, "too few populated bins ({checked})");
    }

    #[test]
    fn white_noise_is_flat() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let n = 16;
        let mut rng = StdRng::seed_from_u64(5);
        let field: Vec<f64> = (0..n * n * n).map(|_| rng.random::<f64>() - 0.5).collect();
        let est = measure_spectrum(&field, n, 100.0, 6);
        let ps: Vec<f64> = est
            .bins
            .iter()
            .filter(|(_, _, c)| *c > 10)
            .map(|(_, p, _)| *p)
            .collect();
        let mean = ps.iter().sum::<f64>() / ps.len() as f64;
        for p in &ps {
            assert!(
                (p / mean - 1.0).abs() < 0.5,
                "white-noise spectrum not flat: {p} vs mean {mean}"
            );
        }
    }

    #[test]
    fn single_mode_lands_in_right_bin() {
        let n = 32;
        let box_size = 100.0;
        let kf = 2.0 * std::f64::consts::PI / box_size;
        let m = 5; // mode number
        let mut field = vec![0.0; n * n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = i as f64 / n as f64;
                    field[(i * n + j) * n + k] = (2.0 * std::f64::consts::PI * m as f64 * x).cos();
                }
            }
        }
        let est = measure_spectrum(&field, n, box_size, 16);
        // All power should concentrate near k = m·kf.
        let k_target = m as f64 * kf;
        let (max_bin, _) = est
            .bins
            .iter()
            .enumerate()
            .max_by(|a, b| (a.1).1.partial_cmp(&(b.1).1).unwrap())
            .unwrap();
        let k_peak = est.bins[max_bin].0;
        assert!(
            (k_peak - k_target).abs() < 2.0 * kf,
            "peak at {k_peak}, expected {k_target}"
        );
    }

    #[test]
    fn estimate_at_finds_nearest_bin() {
        let est = SpectrumEstimate {
            bins: vec![(0.1, 10.0, 5), (0.2, 20.0, 0), (0.3, 30.0, 7)],
        };
        assert_eq!(est.at(0.12), Some(10.0));
        // Empty bin skipped; nearest non-empty wins.
        assert_eq!(est.at(0.21), Some(30.0));
    }
}
