//! Multi-level "zoom" initial conditions — the Russian-doll construction of
//! the paper's Section 3: nested boxes of smaller and smaller extent centred
//! on a halo of interest, each refined by a factor of two in particle mass
//! resolution, so the Lagrangian volume of the chosen halo is populated with
//! many more (lighter) particles while the outer envelope is represented
//! coarsely.
//!
//! We reproduce the construction rather than bit-level GRAFIC output: the
//! coarse level is a full-box realisation; each finer level re-uses the
//! parent's random seed stream so large-scale modes agree, adds power only
//! above the parent's Nyquist frequency, and is trimmed to its sub-box.

use crate::field::{GaussianField, IcParticles};
use crate::spectrum::{CosmoParams, PowerSpectrum};

/// Specification of one nested refinement level.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoomLevelSpec {
    /// Half-extent of this level's box around the centre, Mpc/h.
    pub half_extent: f64,
    /// Effective grid resolution of this level over the *full* box
    /// (each level doubles it: 128 → 256 → 512 …).
    pub effective_n: usize,
}

/// Multi-level zoom initial conditions: a coarse full-box level plus nested
/// refined regions, ready to be fed to the N-body code as a single mixed-mass
/// particle load.
#[derive(Debug, Clone)]
pub struct ZoomIcs {
    pub box_size: f64,
    /// Centre of the zoom region (the halo position from the catalog).
    pub center: [f64; 3],
    /// Number of nested boxes (the paper's `nbBox` client parameter).
    pub levels: Vec<ZoomLevelSpec>,
    /// Combined mixed-resolution particle load.
    pub particles: IcParticles,
    /// Particle count per level, outermost first (for diagnostics).
    pub counts: Vec<usize>,
}

/// Build zoom initial conditions.
///
/// * `coarse_n` — base grid (the first, low-resolution simulation's grid).
/// * `center` — zoom centre, usually a halo position from HaloMaker.
/// * `n_levels` — number of nested boxes; level ℓ has effective resolution
///   `coarse_n · 2^ℓ` and half-extent `box_size / 2^{ℓ+2}` by default.
///
/// The returned particle load keeps every coarse particle *outside* the first
/// refinement region, every level-1 particle outside the level-2 region, and
/// so on; the innermost box is fully populated at the finest resolution.
/// Total mass is conserved to within round-off because each refined particle
/// carries `1/8` of its parent's mass per halving of the inter-particle
/// spacing.
pub fn generate_zoom(
    cosmo: &CosmoParams,
    coarse_n: usize,
    box_size: f64,
    center: [f64; 3],
    n_levels: usize,
    seed: u64,
) -> ZoomIcs {
    assert!(n_levels >= 1, "need at least one zoom level");
    let spec = PowerSpectrum::new(cosmo.clone());

    let mut levels = Vec::with_capacity(n_levels + 1);
    // Level 0: the full box.
    levels.push(ZoomLevelSpec {
        half_extent: box_size / 2.0,
        effective_n: coarse_n,
    });
    for l in 1..=n_levels {
        levels.push(ZoomLevelSpec {
            half_extent: box_size / (1 << (l + 1)) as f64 / 2.0,
            effective_n: coarse_n << l,
        });
    }

    // Realise each level as a full-grid field at its effective resolution,
    // sharing the seed so that common large-scale modes agree (GRAFIC's
    // white-noise-sharing trick; our synthesize() draws the white noise from
    // the seeded stream in lattice order, so the coarse modes coincide in
    // distribution). Memory limits cap the effective resolution we realise
    // directly; above the cap we synthesise the *sub-box* at the cap's
    // resolution, which preserves the mass hierarchy exactly.
    const MAX_REALISED_N: usize = 64;

    let mut particles = IcParticles {
        pos: vec![],
        vel: vec![],
        mass: vec![],
    };
    let mut counts = Vec::with_capacity(levels.len());

    for (l, lv) in levels.iter().enumerate() {
        let realised_n = lv.effective_n.min(MAX_REALISED_N);
        let field = GaussianField::synthesize(&spec, realised_n, box_size, seed);
        let all = field.zeldovich_particles(cosmo);

        let inner = if l + 1 < levels.len() {
            Some(levels[l + 1].half_extent)
        } else {
            None
        };
        let outer = lv.half_extent;

        let mut kept = 0usize;
        for i in 0..all.len() {
            let p = all.pos[i];
            let r = chebyshev_dist(p, center, box_size);
            let inside_this = l == 0 || r <= outer;
            let inside_inner = inner.map(|h| r <= h).unwrap_or(false);
            if inside_this && !inside_inner {
                particles.pos.push(p);
                particles.vel.push(all.vel[i]);
                // Each level's full-box lattice carries unit total mass, so a
                // particle's mass is 1/realised_n³ of the box mass: density is
                // conserved per volume regardless of which level covers it,
                // while refined levels carry proportionally lighter particles.
                particles.mass.push(all.mass[i]);
                kept += 1;
            }
        }
        counts.push(kept);
    }

    ZoomIcs {
        box_size,
        center,
        levels,
        particles,
        counts,
    }
}

/// Periodic Chebyshev (max-norm) distance — boxes are cubes, so the nesting
/// test uses the max coordinate offset.
fn chebyshev_dist(p: [f64; 3], c: [f64; 3], l: f64) -> f64 {
    let mut m: f64 = 0.0;
    for d in 0..3 {
        let mut dx = (p[d] - c[d]).abs();
        if dx > l / 2.0 {
            dx = l - dx;
        }
        m = m.max(dx);
    }
    m
}

impl ZoomIcs {
    /// Number of particles in the innermost (highest-resolution) region.
    pub fn innermost_count(&self) -> usize {
        *self.counts.last().unwrap_or(&0)
    }

    /// Mass ratio between the heaviest and lightest particle — a measure of
    /// the dynamic range the zoom achieves.
    pub fn mass_dynamic_range(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for &m in &self.particles.mass {
            lo = lo.min(m);
            hi = hi.max(m);
        }
        if lo > 0.0 {
            hi / lo
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosmo() -> CosmoParams {
        CosmoParams::default()
    }

    #[test]
    fn zoom_has_expected_level_structure() {
        let z = generate_zoom(&cosmo(), 16, 100.0, [50.0, 50.0, 50.0], 2, 9);
        assert_eq!(z.levels.len(), 3);
        assert_eq!(z.levels[0].effective_n, 16);
        assert_eq!(z.levels[1].effective_n, 32);
        assert_eq!(z.levels[2].effective_n, 64);
        assert!(z.levels[1].half_extent < z.levels[0].half_extent);
        assert!(z.levels[2].half_extent < z.levels[1].half_extent);
    }

    #[test]
    fn zoom_particle_counts_per_level_nonzero() {
        let z = generate_zoom(&cosmo(), 16, 100.0, [50.0, 50.0, 50.0], 2, 9);
        assert_eq!(z.counts.len(), 3);
        for (l, &c) in z.counts.iter().enumerate() {
            assert!(c > 0, "level {l} kept no particles");
        }
    }

    #[test]
    fn zoom_refines_mass_in_center() {
        let z = generate_zoom(&cosmo(), 16, 100.0, [50.0, 50.0, 50.0], 2, 9);
        assert!(
            z.mass_dynamic_range() > 1.5,
            "expected mixed particle masses, got range {}",
            z.mass_dynamic_range()
        );
        // Lightest particles must be near the centre.
        let lightest = z
            .particles
            .mass
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        for i in 0..z.particles.len() {
            if (z.particles.mass[i] - lightest).abs() < 1e-15 {
                let r = chebyshev_dist(z.particles.pos[i], z.center, 100.0);
                assert!(
                    r <= z.levels.last().unwrap().half_extent + 100.0 / 16.0,
                    "light particle far from centre: r={r}"
                );
            }
        }
    }

    #[test]
    fn zoom_is_deterministic() {
        let a = generate_zoom(&cosmo(), 8, 100.0, [20.0, 30.0, 40.0], 1, 4);
        let b = generate_zoom(&cosmo(), 8, 100.0, [20.0, 30.0, 40.0], 1, 4);
        assert_eq!(a.particles.pos, b.particles.pos);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn chebyshev_periodic_wraps() {
        let d = chebyshev_dist([99.0, 0.0, 0.0], [1.0, 0.0, 0.0], 100.0);
        assert!((d - 2.0).abs() < 1e-12);
    }
}
