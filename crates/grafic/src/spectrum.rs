//! ΛCDM linear power spectrum with the Eisenstein & Hu (1998) transfer
//! function (zero-baryon-oscillation "shape" fit, adequate for generating
//! WMAP-era initial conditions as the paper's modified GRAFIC did).
//!
//! The spectrum is normalised so that the RMS linear density fluctuation in
//! 8 Mpc/h spheres equals `sigma8` at z = 0, then scaled back to the initial
//! expansion factor with the linear growth function.

/// Cosmological parameters. Defaults are WMAP-1/3-era ΛCDM, matching what a
/// 2006–2007 HORIZON run would have used.
#[derive(Debug, Clone, PartialEq)]
pub struct CosmoParams {
    /// Matter density parameter Ωm.
    pub omega_m: f64,
    /// Dark-energy density parameter ΩΛ.
    pub omega_l: f64,
    /// Baryon density parameter Ωb.
    pub omega_b: f64,
    /// Hubble parameter h = H0 / (100 km/s/Mpc).
    pub h: f64,
    /// Spectral index of the primordial spectrum.
    pub n_s: f64,
    /// σ₈ normalisation at z = 0.
    pub sigma8: f64,
    /// Initial expansion factor for the simulation (a = 1/(1+z)).
    pub a_init: f64,
}

impl Default for CosmoParams {
    fn default() -> Self {
        CosmoParams {
            omega_m: 0.27,
            omega_l: 0.73,
            omega_b: 0.045,
            h: 0.71,
            n_s: 0.95,
            sigma8: 0.8,
            a_init: 1.0 / 51.0, // z = 50
        }
    }
}

impl CosmoParams {
    /// Hubble rate H(a) in units of H0: `E(a) = sqrt(Ωm a⁻³ + Ωk a⁻² + ΩΛ)`.
    pub fn e_of_a(&self, a: f64) -> f64 {
        let omega_k = 1.0 - self.omega_m - self.omega_l;
        (self.omega_m / (a * a * a) + omega_k / (a * a) + self.omega_l).sqrt()
    }

    /// Ωm(a).
    pub fn omega_m_a(&self, a: f64) -> f64 {
        let e2 = self.e_of_a(a).powi(2);
        self.omega_m / (a * a * a * e2)
    }

    /// ΩΛ(a).
    pub fn omega_l_a(&self, a: f64) -> f64 {
        let e2 = self.e_of_a(a).powi(2);
        self.omega_l / e2
    }

    /// Linear growth factor D(a), Carroll–Press–Turner fitting form,
    /// normalised so D(1) = 1.
    pub fn growth(&self, a: f64) -> f64 {
        self.growth_unnorm(a) / self.growth_unnorm(1.0)
    }

    fn growth_unnorm(&self, a: f64) -> f64 {
        let om = self.omega_m_a(a);
        let ol = self.omega_l_a(a);
        let g = 2.5 * om / (om.powf(4.0 / 7.0) - ol + (1.0 + om / 2.0) * (1.0 + ol / 70.0));
        g * a
    }

    /// Logarithmic growth rate f = dlnD/dlna ≈ Ωm(a)^0.55 — used for
    /// Zel'dovich velocities.
    pub fn growth_rate(&self, a: f64) -> f64 {
        self.omega_m_a(a).powf(0.55)
    }
}

/// Eisenstein–Hu (1998) zero-baryon transfer function T(k); k in h/Mpc.
fn transfer_eh98(k_h: f64, p: &CosmoParams) -> f64 {
    if k_h <= 0.0 {
        return 1.0;
    }
    let theta = 2.728 / 2.7; // CMB temperature in units of 2.7 K
    let om_h2 = p.omega_m * p.h * p.h;
    let ob_h2 = p.omega_b * p.h * p.h;
    // Sound horizon fit (EH98 eq. 26).
    let s = 44.5 * (9.83 / om_h2).ln() / (1.0 + 10.0 * ob_h2.powf(0.75)).sqrt();
    // Shape-parameter suppression from baryons (EH98 eq. 30-31).
    let alpha = 1.0 - 0.328 * (431.0 * om_h2).ln() * (p.omega_b / p.omega_m)
        + 0.38 * (22.3 * om_h2).ln() * (p.omega_b / p.omega_m).powi(2);
    let k = k_h * p.h; // 1/Mpc
    let gamma_eff = p.omega_m * p.h * (alpha + (1.0 - alpha) / (1.0 + (0.43 * k * s).powi(4)));
    let q = k_h * theta * theta / gamma_eff;
    let l0 = (2.0 * std::f64::consts::E + 1.8 * q).ln();
    let c0 = 14.2 + 731.0 / (1.0 + 62.5 * q);
    l0 / (l0 + c0 * q * q)
}

/// A normalised linear matter power spectrum.
#[derive(Debug, Clone)]
pub struct PowerSpectrum {
    cosmo: CosmoParams,
    /// Amplitude A such that P(k) = A kⁿ T(k)² gives the requested σ₈.
    amplitude: f64,
}

impl PowerSpectrum {
    pub fn new(cosmo: CosmoParams) -> Self {
        let mut ps = PowerSpectrum {
            cosmo,
            amplitude: 1.0,
        };
        let s8 = ps.sigma_r(8.0);
        ps.amplitude = (ps.cosmo.sigma8 / s8).powi(2);
        ps
    }

    pub fn cosmo(&self) -> &CosmoParams {
        &self.cosmo
    }

    /// P(k) at z = 0, k in h/Mpc, P in (Mpc/h)³.
    pub fn p_of_k(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        let t = transfer_eh98(k, &self.cosmo);
        self.amplitude * k.powf(self.cosmo.n_s) * t * t
    }

    /// P(k) at expansion factor `a` (linear growth scaling D²).
    pub fn p_of_k_at(&self, k: f64, a: f64) -> f64 {
        let d = self.cosmo.growth(a);
        self.p_of_k(k) * d * d
    }

    /// RMS linear fluctuation in top-hat spheres of radius `r` Mpc/h at z=0,
    /// by direct trapezoid integration in ln k.
    pub fn sigma_r(&self, r: f64) -> f64 {
        let nstep = 2048;
        let lnk_min = (1e-4f64).ln();
        let lnk_max = (1e2f64).ln();
        let dlnk = (lnk_max - lnk_min) / nstep as f64;
        let mut acc = 0.0;
        for i in 0..=nstep {
            let lnk = lnk_min + i as f64 * dlnk;
            let k = lnk.exp();
            let x = k * r;
            // Top-hat window in k-space.
            let w = if x < 1e-4 {
                1.0 - x * x / 10.0
            } else {
                3.0 * (x.sin() - x * x.cos()) / (x * x * x)
            };
            let integrand = k * k * k * self.p_of_k(k) * w * w
                / (2.0 * std::f64::consts::PI * std::f64::consts::PI);
            let weight = if i == 0 || i == nstep { 0.5 } else { 1.0 };
            acc += weight * integrand * dlnk;
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_one_today() {
        let c = CosmoParams::default();
        assert!((c.growth(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn growth_monotone_increasing() {
        let c = CosmoParams::default();
        let mut prev = 0.0;
        for i in 1..=50 {
            let a = i as f64 / 50.0;
            let d = c.growth(a);
            assert!(d > prev, "growth not monotone at a={a}");
            prev = d;
        }
    }

    #[test]
    fn growth_matches_eds_limit_at_high_z() {
        // At very early times D(a) ∝ a (matter domination).
        let c = CosmoParams::default();
        let r1 = c.growth(0.001) / 0.001;
        let r2 = c.growth(0.002) / 0.002;
        assert!((r1 - r2).abs() / r1 < 0.01);
    }

    #[test]
    fn e_of_a_today_is_one() {
        let c = CosmoParams::default();
        assert!((c.e_of_a(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sigma8_normalisation_holds() {
        let c = CosmoParams::default();
        let ps = PowerSpectrum::new(c.clone());
        assert!((ps.sigma_r(8.0) - c.sigma8).abs() < 1e-6);
    }

    #[test]
    fn transfer_function_limits() {
        let c = CosmoParams::default();
        // T -> 1 as k -> 0.
        assert!((transfer_eh98(1e-6, &c) - 1.0).abs() < 1e-2);
        // T decreasing with k on small scales.
        assert!(transfer_eh98(1.0, &c) < transfer_eh98(0.01, &c));
        assert!(transfer_eh98(10.0, &c) < transfer_eh98(1.0, &c));
    }

    #[test]
    fn spectrum_has_turnover() {
        // P(k) rises as k^n on large scales and falls on small scales.
        let ps = PowerSpectrum::new(CosmoParams::default());
        let p_large = ps.p_of_k(1e-3);
        let p_peak = ps.p_of_k(2e-2);
        let p_small = ps.p_of_k(5.0);
        assert!(p_peak > p_large);
        assert!(p_peak > p_small);
    }

    #[test]
    fn growth_rate_between_zero_and_one() {
        let c = CosmoParams::default();
        for a in [0.02, 0.1, 0.5, 1.0] {
            let f = c.growth_rate(a);
            assert!(f > 0.0 && f <= 1.0 + 1e-9);
        }
    }
}
