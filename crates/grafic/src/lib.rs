//! # grafic — cosmological initial-conditions generator
//!
//! A Rust re-implementation of the role played by the (modified) GRAFIC code
//! in Caniou et al. 2007: synthesising Gaussian random density and velocity
//! fields consistent with a ΛCDM power spectrum, at a single resolution level
//! ("standard" initial conditions) or as a set of nested boxes of increasing
//! resolution centred on a region of interest ("zoom" initial conditions,
//! the Russian-doll construction of the paper's Section 3).
//!
//! The pipeline is:
//!
//! 1. [`spectrum`] — an Eisenstein–Hu transfer function and a ΛCDM power
//!    spectrum `P(k)`, normalised to a given `σ₈`.
//! 2. [`fft`] — an in-house radix-2 complex FFT (1-D and 3-D); no external
//!    FFT dependency is used.
//! 3. [`field`] — k-space synthesis of Gaussian random fields with the
//!    correct spectrum, and Zel'dovich displacements to turn them into
//!    particle positions and velocities.
//! 4. [`zoom`] — multi-level nested boxes sharing large-scale modes, so a
//!    refined region embeds consistently in its parent box.
//!
//! Everything is deterministic given a seed, which the middleware layer
//! relies on for reproducible experiments.

pub mod fft;
pub mod field;
pub mod measure;
pub mod spectrum;
pub mod zoom;

pub use field::{GaussianField, IcParticles};
pub use measure::{measure_spectrum, SpectrumEstimate};
pub use spectrum::{CosmoParams, PowerSpectrum};
pub use zoom::{ZoomIcs, ZoomLevelSpec};

/// Initial conditions for a single resolution level: the "standard" GRAFIC
/// output used for the first, low-resolution simulation of the paper.
#[derive(Debug, Clone)]
pub struct SingleLevelIcs {
    /// Comoving box size in Mpc/h.
    pub box_size: f64,
    /// Grid resolution per dimension (e.g. 128 for the paper's 128³ run).
    pub n: usize,
    /// Particle positions, velocities and masses.
    pub particles: IcParticles,
    /// Cosmology used for the synthesis.
    pub cosmo: CosmoParams,
    /// Seed used (for provenance).
    pub seed: u64,
}

/// Generate single-level initial conditions: an `n³` particle load in a
/// periodic box of `box_size` Mpc/h at initial expansion factor
/// `cosmo.a_init`, displaced from a uniform lattice with the Zel'dovich
/// approximation.
pub fn generate_single_level(
    cosmo: &CosmoParams,
    n: usize,
    box_size: f64,
    seed: u64,
) -> SingleLevelIcs {
    let spec = PowerSpectrum::new(cosmo.clone());
    let field = GaussianField::synthesize(&spec, n, box_size, seed);
    let particles = field.zeldovich_particles(cosmo);
    SingleLevelIcs {
        box_size,
        n,
        particles,
        cosmo: cosmo.clone(),
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_generates_n_cubed_particles() {
        let cosmo = CosmoParams::default();
        let ics = generate_single_level(&cosmo, 8, 100.0, 42);
        assert_eq!(ics.particles.len(), 512);
    }

    #[test]
    fn single_level_is_deterministic_in_seed() {
        let cosmo = CosmoParams::default();
        let a = generate_single_level(&cosmo, 8, 100.0, 7);
        let b = generate_single_level(&cosmo, 8, 100.0, 7);
        assert_eq!(a.particles.pos, b.particles.pos);
        let c = generate_single_level(&cosmo, 8, 100.0, 8);
        assert_ne!(a.particles.pos, c.particles.pos);
    }

    #[test]
    fn particles_stay_inside_box() {
        let cosmo = CosmoParams::default();
        let ics = generate_single_level(&cosmo, 8, 50.0, 1);
        for p in &ics.particles.pos {
            for d in 0..3 {
                assert!(p[d] >= 0.0 && p[d] < 50.0, "coordinate out of box: {p:?}");
            }
        }
    }
}
