//! Gaussian random field synthesis and Zel'dovich particle generation.
//!
//! The field is built directly in k-space: each independent mode receives a
//! complex Gaussian amplitude with variance `P(k) V / 2` (with the Hermitian
//! symmetry required for a real field), then an inverse FFT produces the
//! real-space overdensity δ(x). Displacement fields are obtained from δ via
//! the Zel'dovich approximation ψ(k) = i k δ(k)/k².

use crate::fft::{freq, Complex, Direction, Grid3};
use crate::spectrum::{CosmoParams, PowerSpectrum};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// A realisation of a Gaussian overdensity field on an `n³` periodic grid.
#[derive(Debug, Clone)]
pub struct GaussianField {
    pub n: usize,
    /// Box size, Mpc/h.
    pub box_size: f64,
    /// Real-space overdensity δ at z = 0 (linear theory).
    pub delta: Vec<f64>,
    /// k-space field retained for displacement computations.
    delta_k: Grid3,
}

impl GaussianField {
    /// Synthesize a field with spectrum `spec` on an `n³` grid.
    ///
    /// Mode amplitudes are drawn with the Box–Muller transform from the seed;
    /// the same `(seed, n, box_size)` triple always produces the same field.
    pub fn synthesize(spec: &PowerSpectrum, n: usize, box_size: f64, seed: u64) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "grid side must be a power of two >= 2"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let volume = box_size * box_size * box_size;
        let kf = 2.0 * std::f64::consts::PI / box_size; // fundamental mode

        let mut gk = Grid3::zeros(n);

        // Fill each mode with a Gaussian amplitude. To enforce the Hermitian
        // symmetry δ(-k) = δ(k)* we draw a full grid of white noise first,
        // FFT it (a real field's transform is automatically Hermitian), then
        // colour it by sqrt(P(k)). This is exactly GRAFIC's construction and
        // makes nested zoom levels consistent by sharing the white noise.
        let mut white = Grid3::zeros(n);
        for c in white.data.iter_mut() {
            *c = Complex::new(gauss(&mut rng), 0.0);
        }
        white.fft(Direction::Forward);

        let norm = 1.0 / (n as f64).powf(1.5); // unit-variance white noise in k-space
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let kx = freq(i, n) as f64 * kf;
                    let ky = freq(j, n) as f64 * kf;
                    let kz = freq(k, n) as f64 * kf;
                    let kk = (kx * kx + ky * ky + kz * kz).sqrt();
                    let amp = if kk == 0.0 {
                        0.0
                    } else {
                        (spec.p_of_k(kk) / volume).sqrt() * (n as f64).powi(3)
                    };
                    let w = white.get(i, j, k).scale(norm);
                    gk.set(i, j, k, w.scale(amp));
                }
            }
        }

        let mut real = gk.clone();
        real.fft(Direction::Inverse);
        let delta: Vec<f64> = real.data.iter().map(|c| c.re).collect();

        GaussianField {
            n,
            box_size,
            delta,
            delta_k: gk,
        }
    }

    /// RMS of the real-space overdensity (at z = 0 linear normalisation).
    pub fn rms(&self) -> f64 {
        let m = self.delta.iter().map(|d| d * d).sum::<f64>() / self.delta.len() as f64;
        m.sqrt()
    }

    /// Mean of δ — should be ~0 by construction (the k=0 mode is zeroed).
    pub fn mean(&self) -> f64 {
        self.delta.iter().sum::<f64>() / self.delta.len() as f64
    }

    /// Zel'dovich displacement field ψ = ∇∇⁻²δ, one vector per grid point.
    pub fn displacement(&self) -> Vec<[f64; 3]> {
        let n = self.n;
        let kf = 2.0 * std::f64::consts::PI / self.box_size;
        let mut psi = vec![[0.0f64; 3]; n * n * n];
        for axis in 0..3 {
            let mut g = Grid3::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let kv = [
                            freq(i, n) as f64 * kf,
                            freq(j, n) as f64 * kf,
                            freq(k, n) as f64 * kf,
                        ];
                        let k2 = kv[0] * kv[0] + kv[1] * kv[1] + kv[2] * kv[2];
                        if k2 == 0.0 {
                            continue;
                        }
                        let d = self.delta_k.get(i, j, k);
                        // ψ(k) = i k/k² δ(k)  →  multiply by i kᵃ/k².
                        let f = kv[axis] / k2;
                        g.set(i, j, k, Complex::new(-d.im * f, d.re * f));
                    }
                }
            }
            g.fft(Direction::Inverse);
            for (p, c) in psi.iter_mut().zip(&g.data) {
                p[axis] = c.re;
            }
        }
        psi
    }

    /// Generate particles on the lattice displaced by the Zel'dovich
    /// approximation at `cosmo.a_init`, with consistent peculiar velocities.
    ///
    /// Velocities are the canonical momenta `p = a² dx/dt` used by comoving
    /// PM codes, in Mpc/h · H0 units: with `x(t) = q + D(t)ψ` one has
    /// `dx/dt = f D H ψ`, so `p = a² H(a) f D ψ` (t in 1/H0, H = E(a)).
    pub fn zeldovich_particles(&self, cosmo: &CosmoParams) -> IcParticles {
        let n = self.n;
        let a = cosmo.a_init;
        let d = cosmo.growth(a);
        let f = cosmo.growth_rate(a);
        let hub = cosmo.e_of_a(a);
        let psi = self.displacement();
        let dx = self.box_size / n as f64;
        let npart = n * n * n;
        let mass = 1.0 / npart as f64; // total mass normalised to 1 (Ωm box)

        let mut pos = Vec::with_capacity(npart);
        let mut vel = Vec::with_capacity(npart);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let ix = (i * n + j) * n + k;
                    let q = [
                        (i as f64 + 0.5) * dx,
                        (j as f64 + 0.5) * dx,
                        (k as f64 + 0.5) * dx,
                    ];
                    let mut p = [0.0f64; 3];
                    let mut v = [0.0f64; 3];
                    for axis in 0..3 {
                        let disp = d * psi[ix][axis];
                        p[axis] = wrap(q[axis] + disp, self.box_size);
                        v[axis] = a * a * hub * f * disp;
                    }
                    pos.push(p);
                    vel.push(v);
                }
            }
        }
        IcParticles {
            pos,
            vel,
            mass: vec![mass; npart],
        }
    }
}

/// Particle initial conditions: positions (Mpc/h), velocities (code units),
/// masses (fraction of box mass).
#[derive(Debug, Clone, PartialEq)]
pub struct IcParticles {
    pub pos: Vec<[f64; 3]>,
    pub vel: Vec<[f64; 3]>,
    pub mass: Vec<f64>,
}

impl IcParticles {
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Append another particle set (used when combining zoom levels).
    pub fn extend(&mut self, other: &IcParticles) {
        self.pos.extend_from_slice(&other.pos);
        self.vel.extend_from_slice(&other.vel);
        self.mass.extend_from_slice(&other.mass);
    }
}

#[inline]
fn wrap(x: f64, l: f64) -> f64 {
    let mut x = x % l;
    if x < 0.0 {
        x += l;
    }
    x
}

/// One standard normal draw via Box–Muller.
fn gauss<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: usize, seed: u64) -> GaussianField {
        let spec = PowerSpectrum::new(CosmoParams::default());
        GaussianField::synthesize(&spec, n, 100.0, seed)
    }

    #[test]
    fn field_mean_is_zero() {
        let f = field(16, 3);
        assert!(f.mean().abs() < 1e-10, "mean = {}", f.mean());
    }

    #[test]
    fn field_rms_positive_and_reasonable() {
        let f = field(16, 3);
        let rms = f.rms();
        // For a 100 Mpc/h box sampled at 16³ the z=0 linear RMS is O(1).
        assert!(rms > 0.05 && rms < 10.0, "rms = {rms}");
    }

    #[test]
    fn field_deterministic() {
        let a = field(8, 11);
        let b = field(8, 11);
        assert_eq!(a.delta, b.delta);
    }

    #[test]
    fn different_seeds_differ() {
        let a = field(8, 1);
        let b = field(8, 2);
        assert_ne!(a.delta, b.delta);
    }

    #[test]
    fn displacement_is_divergence_of_potential() {
        // Sanity: displacement magnitudes are finite, nonzero.
        let f = field(8, 5);
        let psi = f.displacement();
        let maxd = psi
            .iter()
            .flat_map(|p| p.iter())
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(maxd > 0.0 && maxd.is_finite());
    }

    #[test]
    fn zeldovich_masses_sum_to_one() {
        let f = field(8, 5);
        let p = f.zeldovich_particles(&CosmoParams::default());
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zeldovich_velocities_track_displacement_direction() {
        let f = field(8, 5);
        let cosmo = CosmoParams::default();
        let psi = f.displacement();
        let p = f.zeldovich_particles(&cosmo);
        // v ∝ ψ with positive coefficient: the dot product of each velocity
        // with its displacement must be non-negative.
        for (v, d) in p.vel.iter().zip(&psi) {
            let dot: f64 = v.iter().zip(d.iter()).map(|(a, b)| a * b).sum();
            assert!(dot >= -1e-12);
        }
    }
}
